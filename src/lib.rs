//! Workspace root: convenience re-exports for the examples and the
//! cross-crate integration tests.
//!
//! The substance lives in the member crates:
//!
//! * [`badabing_core`] — the probe process and estimators (the paper's
//!   contribution);
//! * [`badabing_sim`] — the discrete-event dumbbell testbed;
//! * [`badabing_tcp`] / [`badabing_traffic`] — cross-traffic substrates;
//! * [`badabing_probe`] — BADABING and ZING wired into the simulator;
//! * [`badabing_wire`] — the live UDP tool's wire format (the tokio-based
//!   `badabing-live` crate itself is excluded from offline builds);
//! * [`badabing_stats`] — distributions and summaries.

pub use badabing_core as core;
pub use badabing_probe as probe;
pub use badabing_sim as sim;
pub use badabing_stats as stats;
pub use badabing_tcp as tcp;
pub use badabing_traffic as traffic;
pub use badabing_wire as wire;
