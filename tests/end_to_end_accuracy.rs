//! Cross-crate end-to-end accuracy checks: the paper's headline claims,
//! asserted against the simulator's ground truth.

use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_probe::zing::{attach_zing, zing_report, ZingConfig};
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

const PROBE_FLOW: FlowId = FlowId(0xFFFF_0000);
const ZING_FLOW: FlowId = FlowId(0xFFFF_0001);

fn cbr_dumbbell(seed: u64) -> Dumbbell {
    let mut db = Dumbbell::standard();
    let cfg = CbrEpisodeConfig {
        mean_gap_secs: 6.0,
        ..CbrEpisodeConfig::paper_default()
    };
    attach_cbr(&mut db, FlowId(1), cfg, seeded(seed, "cbr"));
    db
}

#[test]
fn badabing_tracks_frequency_within_factor_two() {
    let mut db = cbr_dumbbell(41);
    let cfg = BadabingConfig::paper_default(0.5);
    let h = BadabingHarness::attach(&mut db, cfg, 48_000, PROBE_FLOW, seeded(42, "bb"));
    db.run_for(h.horizon_secs() + 1.0);
    let truth = db.ground_truth(h.horizon_secs());
    let analysis = h.analyze(&db.sim);
    let f_true = truth.frequency();
    let f_est = analysis.frequency().expect("run is nonempty");
    assert!(f_true > 0.005, "ground truth quiet: {f_true}");
    assert!(
        (f_est / f_true) > 0.5 && (f_est / f_true) < 2.0,
        "frequency estimate {f_est} vs truth {f_true}"
    );
}

#[test]
fn badabing_duration_beats_zing_on_the_same_path() {
    // Run both tools over identical traffic; BADABING's duration estimate
    // must be closer to truth than ZING's (Table 8's claim).
    let mut db = cbr_dumbbell(43);
    let cfg = BadabingConfig::paper_default(0.5);
    let h = BadabingHarness::attach(&mut db, cfg, 48_000, PROBE_FLOW, seeded(44, "bb"));
    let (zp, zr) = attach_zing(
        &mut db,
        ZingConfig::with_load_bps(600, cfg.offered_load_bps()),
        ZING_FLOW,
        seeded(44, "zing"),
    );
    db.run_for(h.horizon_secs() + 1.0);
    let truth = db.ground_truth(h.horizon_secs());
    let d_true = truth.mean_duration_secs();
    assert!(d_true > 0.04, "expected ~68 ms episodes, got {d_true}");

    let bb = h
        .analyze(&db.sim)
        .duration_secs()
        .expect("badabing measured duration");
    let z = zing_report(&db.sim, zp, zr);
    let z_dur = if z.duration.count() > 0 {
        z.duration.mean()
    } else {
        0.0
    };

    let bb_err = (bb - d_true).abs();
    let z_err = (z_dur - d_true).abs();
    assert!(
        bb_err < z_err,
        "badabing {bb:.3}s (err {bb_err:.3}) should beat zing {z_dur:.3}s (err {z_err:.3}) against truth {d_true:.3}s"
    );
    assert!(
        bb_err / d_true < 1.0,
        "badabing duration off by more than 100%: {bb} vs {d_true}"
    );
}

#[test]
fn zing_misses_most_episode_time_under_gentle_tcp_loss() {
    // Table 1's phenomenon: during TCP loss episodes only a small excess
    // fraction of packets drop, so Poisson single-packet probes report a
    // loss frequency far below the episode frequency.
    let mut db = Dumbbell::standard();
    for f in 0..40u32 {
        let cfg = badabing_tcp::conn::TcpConfig {
            init_ssthresh: 64.0,
            ..Default::default()
        };
        badabing_tcp::node::attach_flow(
            &mut db,
            FlowId(f + 1),
            cfg,
            badabing_sim::time::SimTime::from_secs_f64(f as f64 * 0.001),
        );
    }
    let (zp, zr) = attach_zing(
        &mut db,
        ZingConfig::paper_10hz(),
        ZING_FLOW,
        seeded(45, "zing"),
    );
    db.run_for(121.0);
    let truth = db.ground_truth(120.0);
    let z = zing_report(&db.sim, zp, zr);
    assert!(
        truth.frequency() > 0.01,
        "TCP sawtooth missing: freq {}",
        truth.frequency()
    );
    assert!(
        z.frequency < truth.frequency(),
        "zing {} should under-report truth {}",
        z.frequency,
        truth.frequency()
    );
    // And its duration estimate collapses relative to the ~0.2 s truth.
    let z_dur = if z.duration.count() > 0 {
        z.duration.mean()
    } else {
        0.0
    };
    assert!(
        z_dur < truth.mean_duration_secs() / 2.0,
        "zing duration {z_dur} vs truth {}",
        truth.mean_duration_secs()
    );
}

#[test]
fn validation_flags_are_clean_on_healthy_runs() {
    let mut db = cbr_dumbbell(47);
    let cfg = BadabingConfig::paper_default(0.7).with_improved();
    let h = BadabingHarness::attach(&mut db, cfg, 24_000, PROBE_FLOW, seeded(48, "bb"));
    db.run_for(h.horizon_secs() + 1.0);
    let a = h.analyze(&db.sim);
    assert!(
        a.validation.passes(0.5),
        "healthy run flagged: {:?}",
        a.validation
    );
    assert!(a.estimates.extended_experiments > 0);
    // r̂ should be measurable and within a plausible band.
    if let Some(r) = a.estimates.r_hat() {
        assert!(r > 0.05 && r < 20.0, "r-hat {r} implausible");
    }
}
