//! Property-based tests across crate boundaries.

use badabing_core::config::BadabingConfig;
use badabing_core::detector::{CongestionDetector, ProbeObservation};
use badabing_core::estimator::Estimates;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_stats::runs::EpisodeSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An idle path yields zero loss and zero estimated frequency for any
    /// probe rate and any probe size.
    #[test]
    fn idle_path_is_always_clean(
        p in 0.05f64..1.0,
        probe_packets in 1u8..=10,
        seed in 0u64..100,
    ) {
        let mut db = Dumbbell::standard();
        let cfg = BadabingConfig {
            probe_packets,
            ..BadabingConfig::paper_default(p)
        };
        let h = BadabingHarness::attach(&mut db, cfg, 600, FlowId(900), seeded(seed, "bb"));
        db.run_for(h.horizon_secs() + 1.0);
        let a = h.analyze(&db.sim);
        prop_assert_eq!(a.detector.probes_with_loss, 0);
        if !a.log.is_empty() {
            prop_assert_eq!(a.frequency(), Some(0.0));
        }
        prop_assert_eq!(db.monitor().borrow().drops(), 0);
    }

    /// EpisodeSet invariants hold for arbitrary boolean series.
    #[test]
    fn episode_set_invariants(slots in proptest::collection::vec(any::<bool>(), 0..2000)) {
        let es = EpisodeSet::from_bools(&slots);
        // Total congested slots equals the number of true entries.
        let trues = slots.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(es.congested_slots(), trues);
        // Frequency is in [0, 1].
        prop_assert!((0.0..=1.0).contains(&es.frequency()));
        // Round trip through bools is lossless.
        prop_assert_eq!(es.to_bools(), slots);
        // Merging gaps never increases the episode count and never
        // decreases coverage.
        let merged = es.merge_gaps(2);
        prop_assert!(merged.count() <= es.count());
        prop_assert!(merged.congested_slots() >= es.congested_slots());
    }

    /// The detector marks every probe with loss, never marks a probe when
    /// no loss exists anywhere, and produces one mark per observation.
    #[test]
    fn detector_marking_invariants(
        losses in proptest::collection::vec(0u8..=3, 1..200),
        alpha in 0.0f64..0.5,
        tau in 0.0f64..0.2,
    ) {
        let obs: Vec<ProbeObservation> = losses
            .iter()
            .enumerate()
            .map(|(i, &lost)| ProbeObservation {
                experiment: i as u64,
                slot: i as u64 * 2,
                send_time_secs: i as f64 * 0.01,
                packets_sent: 3,
                packets_lost: lost,
                owd_last_secs: if lost < 3 { Some(0.15) } else { None },
                owd_max_secs: if lost < 3 { Some(0.15) } else { None },
            })
            .collect();
        let det = CongestionDetector::with_params(alpha, tau, 5);
        let (marks, report) = det.mark(&obs);
        prop_assert_eq!(marks.len(), obs.len());
        for (o, &m) in obs.iter().zip(&marks) {
            if o.packets_lost > 0 {
                prop_assert!(m, "lossy probe must be marked");
            }
        }
        if obs.iter().all(|o| o.packets_lost == 0) {
            prop_assert!(marks.iter().all(|&m| !m), "no loss anywhere → no marks");
            prop_assert_eq!(report.marked_by_delay, 0);
        }
    }

    /// Estimator outputs stay in range for arbitrary logs.
    #[test]
    fn estimates_stay_in_range(
        patterns in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..500)
    ) {
        let mut log = badabing_core::outcome::ExperimentLog::new(10_000, 0.005);
        for (i, &(a, b)) in patterns.iter().enumerate() {
            log.push(badabing_core::outcome::Outcome::basic(i as u64, i as u64 * 3, a, b));
        }
        let e = Estimates::from_log(&log);
        let f = e.frequency().expect("nonempty");
        prop_assert!((0.0..=1.0).contains(&f));
        if let Some(d) = e.duration_slots_basic() {
            // R >= S always, so the estimator is at least 1 slot.
            prop_assert!(d >= 1.0, "duration {d} below one slot");
        }
    }
}
