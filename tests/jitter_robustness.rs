//! Robustness: the detector's FIFO assumption under access-path jitter.
//!
//! §6.1's marking rule assumes FIFO queueing so that delay correlates
//! with buffer occupancy. A jittering access segment in front of the
//! bottleneck perturbs probe delays (and can reorder packets inside a
//! probe). These tests measure how much jitter the pipeline tolerates.

use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::jitter::JitterLink;
use badabing_sim::packet::FlowId;
use badabing_sim::time::SimDuration;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

fn run_with_jitter(jitter_ms: u64) -> (f64, Option<f64>, f64, Option<f64>) {
    let mut db = Dumbbell::standard();
    let cbr = CbrEpisodeConfig {
        mean_gap_secs: 6.0,
        ..CbrEpisodeConfig::paper_default()
    };
    attach_cbr(&mut db, FlowId(1), cbr, seeded(61, "cbr"));
    // Probes pass through a jitter link before the bottleneck.
    let bottleneck = db.bottleneck();
    let link = db.add_node(Box::new(JitterLink::new(
        bottleneck,
        SimDuration::from_millis(1),
        SimDuration::from_millis(jitter_ms),
        seeded(62, "jitter"),
    )));
    let cfg = BadabingConfig::paper_default(0.5);
    let h = BadabingHarness::attach_via(&mut db, cfg, 36_000, FlowId(900), link, seeded(63, "bb"));
    db.run_for(h.horizon_secs() + 1.0);
    let truth = db.ground_truth(h.horizon_secs());
    let a = h.analyze(&db.sim);
    (
        truth.frequency(),
        a.frequency(),
        truth.mean_duration_secs(),
        a.duration_secs(),
    )
}

#[test]
fn small_jitter_leaves_estimates_usable() {
    // 2 ms of jitter against a 100 ms maximum queue: well under any α
    // threshold.
    let (f_true, f_est, d_true, d_est) = run_with_jitter(2);
    let f_est = f_est.expect("nonempty run");
    assert!(f_true > 0.005);
    assert!(
        (f_est / f_true) > 0.4 && (f_est / f_true) < 2.5,
        "frequency {f_est} vs truth {f_true}"
    );
    if let Some(d) = d_est {
        assert!(
            (d / d_true) > 0.3 && (d / d_true) < 4.0,
            "duration {d} vs truth {d_true}"
        );
    }
}

#[test]
fn jitter_degrades_gracefully_not_catastrophically() {
    // Even 20 ms of jitter (20% of the queue's range) must not produce
    // wild estimates — the α threshold sits near the top of the range.
    let (f_true, f_est, _d_true, _d_est) = run_with_jitter(20);
    let f_est = f_est.expect("nonempty run");
    assert!(
        f_est < f_true * 5.0,
        "20 ms jitter should not quintuple the frequency estimate: {f_est} vs {f_true}"
    );
    assert!(f_est > 0.0, "episodes must still be detected");
}
