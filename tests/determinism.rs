//! Reproducibility: identical seeds must replay identically across the
//! whole pipeline (engine tie-breaking, RNG streams, estimator), and
//! different seeds must actually differ.

use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::web::{attach_web, WebConfig};

fn run(seed: u64) -> (u64, u64, Option<f64>, Option<f64>) {
    let mut db = Dumbbell::standard();
    attach_web(
        &mut db,
        WebConfig::paper_default(),
        1 << 16,
        seeded(seed, "web"),
    );
    let cfg = BadabingConfig::paper_default(0.5);
    let h = BadabingHarness::attach(&mut db, cfg, 6_000, FlowId(0xFFFF_0000), seeded(seed, "bb"));
    db.run_for(h.horizon_secs() + 1.0);
    let truth = db.ground_truth(h.horizon_secs());
    let a = h.analyze(&db.sim);
    (
        db.monitor().borrow().drops(),
        db.sim.dispatched(),
        a.frequency(),
        truth.episodes.first().map(|e| e.start.as_secs_f64()),
    )
}

#[test]
fn same_seed_replays_exactly() {
    let a = run(123);
    let b = run(123);
    assert_eq!(a, b, "identical seeds must produce identical runs");
}

#[test]
fn different_seeds_differ() {
    let a = run(123);
    let b = run(124);
    assert_ne!(
        (a.0, a.1),
        (b.0, b.1),
        "different seeds should not coincidentally match event-for-event"
    );
}
