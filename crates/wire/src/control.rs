//! Control-plane messages for the two-process live tool.
//!
//! The original BADABING tool ran sender and receiver as separate
//! programs on separate hosts (§6); our reimplementation's control plane
//! carries everything the two processes must agree on over the same UDP
//! path the probes use, with sender-driven retries (the sender is the
//! only side with a human attached, so it owns all timeouts):
//!
//! 1. **Handshake** — [`ControlMessage::Syn`] carries the session id and
//!    the full tool configuration ([`SessionParams`]); the receiver
//!    answers [`ControlMessage::SynAck`], or [`ControlMessage::SynNack`]
//!    when it refuses the session (e.g. a multi-session receiver at its
//!    `max_sessions` capacity — see [`RejectReason`]). The sender retries
//!    with capped exponential backoff until acknowledged, refused, or out
//!    of attempts; a NACK fails the handshake immediately instead of
//!    burning the retry budget. SYN retransmits to an already-open
//!    session are idempotent: they refresh the stored parameters and are
//!    re-acknowledged, never refused.
//! 2. **Liveness** — periodic [`ControlMessage::Heartbeat`] /
//!    [`ControlMessage::HeartbeatAck`] pairs during the run. Consecutive
//!    unanswered heartbeats abort the sender with a partial manifest; an
//!    idle watchdog on the receiver reclaims the session if the sender
//!    vanishes.
//! 3. **Teardown + report retrieval** — [`ControlMessage::Fin`] asks the
//!    receiver to finalize its log; [`ControlMessage::FinAck`] returns
//!    the log summary and chunk count; the sender then pulls
//!    [`ControlMessage::ReportChunk`]s one
//!    [`ControlMessage::ReportRequest`] at a time (request/response is
//!    the per-chunk ACK; re-requests are idempotent) and closes with a
//!    final [`ControlMessage::ReportAck`].
//!
//! # Completion and idempotency semantics
//!
//! The teardown sequence is designed so every sender-side retry is safe:
//!
//! * **FIN snapshot.** The first FIN a session sees freezes that
//!   session's log into an immutable snapshot (records, summary, chunk
//!   layout). Every later FIN retransmit re-serves the *same* snapshot —
//!   the same `total_chunks`, the same summary, byte-identical chunks —
//!   even if stray probe datagrams arrive after finalization. A sender
//!   can therefore lose any number of FIN-ACKs and retry without ever
//!   observing two different reports for one session.
//! * **Chunk acks.** There is no receiver-side per-chunk state: a
//!   [`ControlMessage::ReportRequest`] for chunk `i` is answered with the
//!   snapshot's chunk `i` however many times it is asked. The
//!   request/response pair *is* the per-chunk ACK.
//! * **Completion.** [`ControlMessage::ReportAck`] with
//!   `chunk >= total_chunks` tells the receiver the sender holds the
//!   complete report; the session is then reaped (on a multi-session
//!   receiver the process keeps serving other sessions). This holds for
//!   empty reports too: `total_chunks == 0` completes on
//!   `ReportAck { chunk: 0 }` with no chunk exchange at all. Duplicate
//!   closing acks to an already-reaped session are ignored.
//!
//! Control datagrams start with [`CONTROL_MAGIC`] (`"BDC1"`), distinct
//! from the probe magic, so both kinds can share one socket.

use crate::{DecodeError, SliceWriter};
use bytes::{Buf, BufMut, Bytes};

/// Identifies control datagrams: `"BDC1"` (BaDabing Control, version 1).
pub const CONTROL_MAGIC: u32 = 0x4244_4331;

/// Probe arrival records carried per [`ControlMessage::ReportChunk`].
///
/// Sized so a full chunk stays well under any sane MTU:
/// `8 + 32·35 = 1128` bytes of payload.
pub const RECORDS_PER_CHUNK: usize = 32;

/// Encoded size of one [`ReportRecord`].
const RECORD_BYTES: usize = 35;

/// [`ReportRecord::flags`] bit: every arrival of the probe carried a
/// kernel RX timestamp (its delays are pre-scheduler-noise precision).
pub const RECORD_FLAG_KERNEL_STAMPED: u8 = 1;

/// Common prefix of every control datagram: magic, type tag, session id.
const PREFIX_BYTES: usize = 9;

/// Upper bound on any encoded control message (a full
/// [`ControlMessage::ReportChunk`]): size one reusable encode buffer
/// with this and [`ControlMessage::encode_into`] never overflows.
pub const MAX_CONTROL_BYTES: usize = PREFIX_BYTES + 4 + 4 + 2 + RECORDS_PER_CHUNK * RECORD_BYTES;

/// The tool configuration a SYN carries, so a bare receiver can size its
/// run without out-of-band agreement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionParams {
    /// Total slots the sender will run.
    pub n_slots: u64,
    /// Slot width in nanoseconds.
    pub slot_ns: u64,
    /// Packets per probe.
    pub probe_packets: u8,
    /// Probe packet size in bytes.
    pub packet_bytes: u32,
    /// Experiment start probability `p`.
    pub p: f64,
    /// Whether the improved (§5.3) schedule is in use.
    pub improved: bool,
}

/// One probe's arrival record as shipped over the control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportRecord {
    /// Owning experiment.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Distinct packets of this probe that arrived.
    pub received: u8,
    /// Duplicated datagrams observed for this probe (saturating).
    pub duplicates: u8,
    /// Queueing delay of the last arrival, seconds.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay over the probe's arrivals, seconds.
    pub qdelay_max_secs: f64,
    /// Record metadata bits ([`RECORD_FLAG_KERNEL_STAMPED`]; the rest
    /// reserved, zero on encode).
    pub flags: u8,
}

impl ReportRecord {
    fn put(&self, buf: &mut impl BufMut) {
        buf.put_u64(self.experiment);
        buf.put_u64(self.slot);
        buf.put_u8(self.received);
        buf.put_u8(self.duplicates);
        buf.put_f64(self.qdelay_last_secs);
        buf.put_f64(self.qdelay_max_secs);
        buf.put_u8(self.flags);
    }

    fn get(data: &mut &[u8]) -> Self {
        Self {
            experiment: data.get_u64(),
            slot: data.get_u64(),
            received: data.get_u8(),
            duplicates: data.get_u8(),
            qdelay_last_secs: data.get_f64(),
            qdelay_max_secs: data.get_f64(),
            flags: data.get_u8(),
        }
    }
}

/// Why a receiver refused a [`ControlMessage::Syn`] — or, for
/// [`RejectReason::Evicted`], any control message from a session the
/// receiver has since reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The receiver's session registry is at its `max_sessions` cap.
    Capacity,
    /// Admitting the session would exceed the receiver's memory budget
    /// (and its pressure policy found nothing to evict).
    Budget,
    /// The session was evicted under memory pressure: the receiver no
    /// longer holds its state, so retrying any exchange is futile.
    Evicted,
    /// A reason this build does not know (forward compatibility).
    Other(u8),
}

impl RejectReason {
    /// Wire code for this reason.
    pub fn code(self) -> u8 {
        match self {
            RejectReason::Capacity => 1,
            RejectReason::Budget => 2,
            RejectReason::Evicted => 3,
            RejectReason::Other(code) => code,
        }
    }

    /// Reason for a wire code.
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => RejectReason::Capacity,
            2 => RejectReason::Budget,
            3 => RejectReason::Evicted,
            other => RejectReason::Other(other),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Capacity => write!(f, "at session capacity"),
            RejectReason::Budget => write!(f, "over memory budget"),
            RejectReason::Evicted => write!(f, "session evicted under memory pressure"),
            RejectReason::Other(code) => write!(f, "unknown reason {code}"),
        }
    }
}

/// Which population an estimate exchange covers.
///
/// Forward-compatible like [`RejectReason`]: scopes this build does not
/// know decode as [`EstimateScope::Other`] instead of failing, so an
/// old receiver can skip a newer peer's request (and an old sender a
/// newer reply) without tearing anything down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateScope {
    /// The one session named in the message.
    Session,
    /// Every live session on the receiver, merged.
    Fleet,
    /// A scope this build does not know (forward compatibility).
    Other(u8),
}

impl EstimateScope {
    /// Wire code for this scope.
    pub fn code(self) -> u8 {
        match self {
            EstimateScope::Session => 0,
            EstimateScope::Fleet => 1,
            EstimateScope::Other(code) => code,
        }
    }

    /// Scope for a wire code.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => EstimateScope::Session,
            1 => EstimateScope::Fleet,
            other => EstimateScope::Other(other),
        }
    }
}

/// The mergeable estimator counters as shipped over the control plane —
/// the raw sums, not the derived `F̂`/`D̂`, so any consumer can merge
/// replies from several receivers (counter addition) and derive every
/// §5 estimate itself, exactly as if it had folded the logs locally.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EstimateCounters {
    /// Total valid experiments (`M`).
    pub experiments: u64,
    /// Experiments whose first digit was 1 (`Σ zᵢ`).
    pub z_sum: u64,
    /// Two-probe experiments.
    pub basic_experiments: u64,
    /// Three-probe experiments.
    pub extended_experiments: u64,
    /// `R = #{01, 10, 11}` over two-probe experiments.
    pub r: u64,
    /// `S = #{01, 10}` over two-probe experiments.
    pub s: u64,
    /// `#{01}` alone.
    pub n01: u64,
    /// `#{10}` alone.
    pub n10: u64,
    /// `U = #{011, 110}` over three-probe experiments.
    pub u: u64,
    /// `V = #{001, 100}` over three-probe experiments.
    pub v: u64,
    /// `#{111}` over three-probe experiments.
    pub n111: u64,
    /// Records skipped as malformed (probe count outside {2, 3}).
    pub outcomes_malformed: u64,
    /// Slot width in seconds (zero when unknown).
    pub slot_secs: f64,
}

impl EstimateCounters {
    /// Encoded size on the wire.
    const BYTES: usize = 13 * 8;

    fn put(&self, buf: &mut impl BufMut) {
        buf.put_u64(self.experiments);
        buf.put_u64(self.z_sum);
        buf.put_u64(self.basic_experiments);
        buf.put_u64(self.extended_experiments);
        buf.put_u64(self.r);
        buf.put_u64(self.s);
        buf.put_u64(self.n01);
        buf.put_u64(self.n10);
        buf.put_u64(self.u);
        buf.put_u64(self.v);
        buf.put_u64(self.n111);
        buf.put_u64(self.outcomes_malformed);
        buf.put_f64(self.slot_secs);
    }

    fn get(data: &mut &[u8]) -> Self {
        Self {
            experiments: data.get_u64(),
            z_sum: data.get_u64(),
            basic_experiments: data.get_u64(),
            extended_experiments: data.get_u64(),
            r: data.get_u64(),
            s: data.get_u64(),
            n01: data.get_u64(),
            n10: data.get_u64(),
            u: data.get_u64(),
            v: data.get_u64(),
            n111: data.get_u64(),
            outcomes_malformed: data.get_u64(),
            slot_secs: data.get_f64(),
        }
    }
}

/// Delay distribution summary riding along in an
/// [`ControlMessage::EstimateReply`]: the quantiles are bucket edges of
/// the receiver's fixed log-scale sketch, so same-seed runs report
/// byte-identical values. Both quantiles are `0.0` when `samples == 0`
/// (a NaN sentinel would break equality-based idempotency checks).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelaySummary {
    /// Delay samples folded into the sketch.
    pub samples: u64,
    /// Median queueing delay, seconds.
    pub p50_secs: f64,
    /// 99th-percentile queueing delay, seconds.
    pub p99_secs: f64,
}

/// Summary of a finalized receiver log, returned in a FIN-ACK so the
/// sender can reconstruct the log's metadata without a side channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReportSummary {
    /// Probe datagrams accepted (duplicates included).
    pub packets: u64,
    /// Datagrams rejected.
    pub rejected: u64,
    /// Duplicated probe datagrams detected.
    pub duplicates: u64,
    /// Minimum raw delay observed (clock-offset estimate), nanoseconds.
    pub min_raw_delay_ns: Option<i64>,
}

/// A control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMessage {
    /// Session open request, sender → receiver.
    Syn {
        /// Session id the probes will carry.
        session: u32,
        /// The run's tool configuration.
        params: SessionParams,
    },
    /// Session accepted, receiver → sender.
    SynAck {
        /// Echoed session id.
        session: u32,
    },
    /// Session refused, receiver → sender. Tells the sender to give up
    /// immediately instead of retrying into a full registry.
    SynNack {
        /// Echoed session id.
        session: u32,
        /// Why the session was refused.
        reason: RejectReason,
    },
    /// Liveness probe, sender → receiver.
    Heartbeat {
        /// Session id.
        session: u32,
        /// Sender-chosen sequence number, echoed in the ack.
        seq: u64,
    },
    /// Liveness reply, receiver → sender.
    HeartbeatAck {
        /// Session id.
        session: u32,
        /// Echoed heartbeat sequence number.
        seq: u64,
    },
    /// Run finished; finalize the log, sender → receiver.
    Fin {
        /// Session id.
        session: u32,
        /// Probes the sender actually sent.
        probes_sent: u64,
        /// Packets the sender actually sent.
        packets_sent: u64,
    },
    /// Log finalized, receiver → sender.
    FinAck {
        /// Session id.
        session: u32,
        /// Report chunks available for retrieval.
        total_chunks: u32,
        /// Log metadata.
        summary: ReportSummary,
    },
    /// Ask for one report chunk, sender → receiver.
    ReportRequest {
        /// Session id.
        session: u32,
        /// Chunk index in `0..total_chunks`.
        chunk: u32,
    },
    /// One report chunk, receiver → sender. Re-sent verbatim on
    /// re-request, so retrieval is idempotent under loss.
    ReportChunk {
        /// Session id.
        session: u32,
        /// This chunk's index.
        chunk: u32,
        /// Total chunks in the report.
        total_chunks: u32,
        /// The records (at most [`RECORDS_PER_CHUNK`]).
        records: Vec<ReportRecord>,
    },
    /// Retrieval complete (chunk == total_chunks) or a single chunk
    /// acknowledged, sender → receiver. Lets the receiver exit as soon
    /// as the sender has everything instead of waiting out its idle
    /// watchdog.
    ReportAck {
        /// Session id.
        session: u32,
        /// Highest chunk index received plus one; `total_chunks` means
        /// the whole report arrived.
        chunk: u32,
    },
    /// Mid-run estimate query, sender/operator → receiver: read the
    /// receiver's online `F̂`/`D̂` counters without finalizing anything.
    /// Old receivers that predate this message drop it as an unknown
    /// type; the requester simply times out, nothing breaks.
    EstimateRequest {
        /// Session whose estimate is wanted (for
        /// [`EstimateScope::Fleet`], the session the requester uses as
        /// its own control identity — echoed so reply matching works).
        session: u32,
        /// Per-session or merged-fleet.
        scope: EstimateScope,
    },
    /// Online estimate snapshot, receiver → requester: the raw
    /// mergeable counters (see [`EstimateCounters`]) plus a delay
    /// summary. Old senders drop it as an unknown type.
    EstimateReply {
        /// Echoed session id.
        session: u32,
        /// Echoed scope.
        scope: EstimateScope,
        /// Live sessions merged into the counters (1 for
        /// session scope).
        sessions: u32,
        /// The mergeable §5 pattern counters.
        counters: EstimateCounters,
        /// Queueing-delay sketch summary.
        delay: DelaySummary,
    },
}

const TYPE_SYN: u8 = 1;
const TYPE_SYN_ACK: u8 = 2;
const TYPE_HEARTBEAT: u8 = 3;
const TYPE_HEARTBEAT_ACK: u8 = 4;
const TYPE_FIN: u8 = 5;
const TYPE_FIN_ACK: u8 = 6;
const TYPE_REPORT_REQUEST: u8 = 7;
const TYPE_REPORT_CHUNK: u8 = 8;
const TYPE_REPORT_ACK: u8 = 9;
const TYPE_SYN_NACK: u8 = 10;
const TYPE_ESTIMATE_REQUEST: u8 = 11;
const TYPE_ESTIMATE_REPLY: u8 = 12;

impl ControlMessage {
    /// The session id carried by any control message.
    pub fn session(&self) -> u32 {
        match *self {
            ControlMessage::Syn { session, .. }
            | ControlMessage::SynAck { session }
            | ControlMessage::SynNack { session, .. }
            | ControlMessage::Heartbeat { session, .. }
            | ControlMessage::HeartbeatAck { session, .. }
            | ControlMessage::Fin { session, .. }
            | ControlMessage::FinAck { session, .. }
            | ControlMessage::ReportRequest { session, .. }
            | ControlMessage::ReportChunk { session, .. }
            | ControlMessage::ReportAck { session, .. }
            | ControlMessage::EstimateRequest { session, .. }
            | ControlMessage::EstimateReply { session, .. } => session,
        }
    }

    /// Exact encoded size of this message in bytes.
    pub fn encoded_len(&self) -> usize {
        PREFIX_BYTES
            + match self {
                ControlMessage::Syn { .. } => 8 + 8 + 1 + 4 + 8 + 1,
                ControlMessage::SynAck { .. } => 0,
                ControlMessage::SynNack { .. } => 1,
                ControlMessage::Heartbeat { .. } | ControlMessage::HeartbeatAck { .. } => 8,
                ControlMessage::Fin { .. } => 16,
                ControlMessage::FinAck { .. } => 4 + 24 + 1 + 8,
                ControlMessage::ReportRequest { .. } | ControlMessage::ReportAck { .. } => 4,
                ControlMessage::ReportChunk { records, .. } => {
                    4 + 4 + 2 + records.len() * RECORD_BYTES
                }
                ControlMessage::EstimateRequest { .. } => 1,
                ControlMessage::EstimateReply { .. } => 1 + 4 + EstimateCounters::BYTES + 24,
            }
    }

    /// Encode into a datagram.
    ///
    /// Allocates the exact-size buffer; the zero-allocation hot path is
    /// [`ControlMessage::encode_into`], of which this is a thin wrapper.
    pub fn encode(&self) -> Bytes {
        let mut buf = vec![0u8; self.encoded_len()];
        let n = self.encode_into(&mut buf);
        debug_assert_eq!(n, buf.len());
        Bytes::from(buf)
    }

    /// Encode into a caller-provided buffer without allocating; returns
    /// the datagram length. Size the buffer with
    /// [`ControlMessage::encoded_len`] or [`MAX_CONTROL_BYTES`].
    ///
    /// # Panics
    /// Panics if `buf` is smaller than the encoded message.
    pub fn encode_into(&self, buf: &mut [u8]) -> usize {
        if let ControlMessage::ReportChunk {
            session,
            chunk,
            total_chunks,
            records,
        } = self
        {
            return encode_report_chunk_into(*session, *chunk, *total_chunks, records, buf);
        }
        let mut w = SliceWriter::new(buf);
        w.put_u32(CONTROL_MAGIC);
        match self {
            ControlMessage::Syn { session, params } => {
                w.put_u8(TYPE_SYN);
                w.put_u32(*session);
                w.put_u64(params.n_slots);
                w.put_u64(params.slot_ns);
                w.put_u8(params.probe_packets);
                w.put_u32(params.packet_bytes);
                w.put_f64(params.p);
                w.put_u8(u8::from(params.improved));
            }
            ControlMessage::SynAck { session } => {
                w.put_u8(TYPE_SYN_ACK);
                w.put_u32(*session);
            }
            ControlMessage::SynNack { session, reason } => {
                w.put_u8(TYPE_SYN_NACK);
                w.put_u32(*session);
                w.put_u8(reason.code());
            }
            ControlMessage::Heartbeat { session, seq } => {
                w.put_u8(TYPE_HEARTBEAT);
                w.put_u32(*session);
                w.put_u64(*seq);
            }
            ControlMessage::HeartbeatAck { session, seq } => {
                w.put_u8(TYPE_HEARTBEAT_ACK);
                w.put_u32(*session);
                w.put_u64(*seq);
            }
            ControlMessage::Fin {
                session,
                probes_sent,
                packets_sent,
            } => {
                w.put_u8(TYPE_FIN);
                w.put_u32(*session);
                w.put_u64(*probes_sent);
                w.put_u64(*packets_sent);
            }
            ControlMessage::FinAck {
                session,
                total_chunks,
                summary,
            } => {
                w.put_u8(TYPE_FIN_ACK);
                w.put_u32(*session);
                w.put_u32(*total_chunks);
                w.put_u64(summary.packets);
                w.put_u64(summary.rejected);
                w.put_u64(summary.duplicates);
                w.put_u8(u8::from(summary.min_raw_delay_ns.is_some()));
                w.put_i64(summary.min_raw_delay_ns.unwrap_or(0));
            }
            ControlMessage::ReportRequest { session, chunk } => {
                w.put_u8(TYPE_REPORT_REQUEST);
                w.put_u32(*session);
                w.put_u32(*chunk);
            }
            ControlMessage::ReportChunk { .. } => unreachable!("handled above"),
            ControlMessage::ReportAck { session, chunk } => {
                w.put_u8(TYPE_REPORT_ACK);
                w.put_u32(*session);
                w.put_u32(*chunk);
            }
            ControlMessage::EstimateRequest { session, scope } => {
                w.put_u8(TYPE_ESTIMATE_REQUEST);
                w.put_u32(*session);
                w.put_u8(scope.code());
            }
            ControlMessage::EstimateReply {
                session,
                scope,
                sessions,
                counters,
                delay,
            } => {
                w.put_u8(TYPE_ESTIMATE_REPLY);
                w.put_u32(*session);
                w.put_u8(scope.code());
                w.put_u32(*sessions);
                counters.put(&mut w);
                w.put_u64(delay.samples);
                w.put_f64(delay.p50_secs);
                w.put_f64(delay.p99_secs);
            }
        }
        debug_assert_eq!(w.written(), self.encoded_len());
        w.written()
    }

    /// Decode from a received datagram.
    pub fn decode(mut data: &[u8]) -> Result<Self, DecodeError> {
        let total = data.len();
        let need = |n: usize, have: usize| {
            if have < n {
                Err(DecodeError::TooShort { got: total })
            } else {
                Ok(())
            }
        };
        need(9, data.len())?;
        let magic = data.get_u32();
        if magic != CONTROL_MAGIC {
            return Err(DecodeError::BadMagic { got: magic });
        }
        let kind = data.get_u8();
        let session = data.get_u32();
        match kind {
            TYPE_SYN => {
                need(30, data.len())?;
                let n_slots = data.get_u64();
                let slot_ns = data.get_u64();
                let probe_packets = data.get_u8();
                let packet_bytes = data.get_u32();
                let p = data.get_f64();
                let improved = data.get_u8() != 0;
                if probe_packets == 0 || slot_ns == 0 || !(p > 0.0 && p <= 1.0) {
                    return Err(DecodeError::BadFields);
                }
                Ok(ControlMessage::Syn {
                    session,
                    params: SessionParams {
                        n_slots,
                        slot_ns,
                        probe_packets,
                        packet_bytes,
                        p,
                        improved,
                    },
                })
            }
            TYPE_SYN_ACK => Ok(ControlMessage::SynAck { session }),
            TYPE_SYN_NACK => {
                need(1, data.len())?;
                Ok(ControlMessage::SynNack {
                    session,
                    reason: RejectReason::from_code(data.get_u8()),
                })
            }
            TYPE_HEARTBEAT => {
                need(8, data.len())?;
                Ok(ControlMessage::Heartbeat {
                    session,
                    seq: data.get_u64(),
                })
            }
            TYPE_HEARTBEAT_ACK => {
                need(8, data.len())?;
                Ok(ControlMessage::HeartbeatAck {
                    session,
                    seq: data.get_u64(),
                })
            }
            TYPE_FIN => {
                need(16, data.len())?;
                Ok(ControlMessage::Fin {
                    session,
                    probes_sent: data.get_u64(),
                    packets_sent: data.get_u64(),
                })
            }
            TYPE_FIN_ACK => {
                need(37, data.len())?;
                let total_chunks = data.get_u32();
                let packets = data.get_u64();
                let rejected = data.get_u64();
                let duplicates = data.get_u64();
                let has_min = data.get_u8() != 0;
                let min_raw = data.get_i64();
                Ok(ControlMessage::FinAck {
                    session,
                    total_chunks,
                    summary: ReportSummary {
                        packets,
                        rejected,
                        duplicates,
                        min_raw_delay_ns: has_min.then_some(min_raw),
                    },
                })
            }
            TYPE_REPORT_REQUEST => {
                need(4, data.len())?;
                Ok(ControlMessage::ReportRequest {
                    session,
                    chunk: data.get_u32(),
                })
            }
            TYPE_REPORT_CHUNK => {
                need(10, data.len())?;
                let chunk = data.get_u32();
                let total_chunks = data.get_u32();
                let count = data.get_u16() as usize;
                if count > RECORDS_PER_CHUNK {
                    return Err(DecodeError::BadFields);
                }
                need(count * RECORD_BYTES, data.len())?;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    records.push(ReportRecord::get(&mut data));
                }
                Ok(ControlMessage::ReportChunk {
                    session,
                    chunk,
                    total_chunks,
                    records,
                })
            }
            TYPE_REPORT_ACK => {
                need(4, data.len())?;
                Ok(ControlMessage::ReportAck {
                    session,
                    chunk: data.get_u32(),
                })
            }
            TYPE_ESTIMATE_REQUEST => {
                need(1, data.len())?;
                Ok(ControlMessage::EstimateRequest {
                    session,
                    scope: EstimateScope::from_code(data.get_u8()),
                })
            }
            TYPE_ESTIMATE_REPLY => {
                need(1 + 4 + EstimateCounters::BYTES + 24, data.len())?;
                let scope = EstimateScope::from_code(data.get_u8());
                let sessions = data.get_u32();
                let counters = EstimateCounters::get(&mut data);
                let delay = DelaySummary {
                    samples: data.get_u64(),
                    p50_secs: data.get_f64(),
                    p99_secs: data.get_f64(),
                };
                Ok(ControlMessage::EstimateReply {
                    session,
                    scope,
                    sessions,
                    counters,
                    delay,
                })
            }
            got => Err(DecodeError::UnknownType { got }),
        }
    }
}

/// Encode one [`ControlMessage::ReportChunk`] straight from a window of
/// the session's record slice — no per-chunk `Vec` clone, no message
/// construction. Byte-identical to
/// `ControlMessage::ReportChunk { records: window.to_vec(), .. }.encode()`;
/// a receiver holds one `Vec<ReportRecord>` per finalized session and
/// serves any chunk, any number of times, from subslices of it.
///
/// Returns the datagram length.
///
/// # Panics
/// Panics if `records.len() > RECORDS_PER_CHUNK` or `buf` is too small
/// (size it with [`MAX_CONTROL_BYTES`]).
pub fn encode_report_chunk_into(
    session: u32,
    chunk: u32,
    total_chunks: u32,
    records: &[ReportRecord],
    buf: &mut [u8],
) -> usize {
    assert!(
        records.len() <= RECORDS_PER_CHUNK,
        "chunk carries {} records, limit is {RECORDS_PER_CHUNK}",
        records.len()
    );
    let mut w = SliceWriter::new(buf);
    w.put_u32(CONTROL_MAGIC);
    w.put_u8(TYPE_REPORT_CHUNK);
    w.put_u32(session);
    w.put_u32(chunk);
    w.put_u32(total_chunks);
    w.put_u16(records.len() as u16);
    for r in records {
        r.put(&mut w);
    }
    w.written()
}

/// Number of chunks a report of `n_records` records splits into.
pub fn chunk_count(n_records: usize) -> u32 {
    n_records.div_ceil(RECORDS_PER_CHUNK) as u32
}

/// The record window chunk `chunk` of a report covers: records
/// `[chunk·RECORDS_PER_CHUNK, (chunk+1)·RECORDS_PER_CHUNK)`, clipped to
/// the report. An out-of-range chunk index yields the **empty** window —
/// never a panic — so a serving path can answer any request
/// deterministically (the receiver replies with an empty chunk rather
/// than silence, keeping a buggy sender out of endless backoff).
///
/// This is the one home of the chunk-slicing arithmetic; the receiver's
/// serving path and the differential tests both go through it.
pub fn chunk_window(records: &[ReportRecord], chunk: u32) -> &[ReportRecord] {
    let lo = (chunk as usize)
        .saturating_mul(RECORDS_PER_CHUNK)
        .min(records.len());
    let hi = lo.saturating_add(RECORDS_PER_CHUNK).min(records.len());
    &records[lo..hi]
}

/// Split a full report into encode-ready chunks.
///
/// Convenience for tests and offline tooling: every chunk clones its
/// record window into an owned message. The receiver's serving path uses
/// [`encode_report_chunk_into`] on subslices instead.
pub fn chunk_records(session: u32, records: &[ReportRecord]) -> Vec<ControlMessage> {
    let total_chunks = chunk_count(records.len());
    records
        .chunks(RECORDS_PER_CHUNK)
        .enumerate()
        .map(|(i, window)| ControlMessage::ReportChunk {
            session,
            chunk: i as u32,
            total_chunks,
            records: window.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SessionParams {
        SessionParams {
            n_slots: 180_000,
            slot_ns: 5_000_000,
            probe_packets: 3,
            packet_bytes: 600,
            p: 0.3,
            improved: true,
        }
    }

    fn record(i: u64) -> ReportRecord {
        ReportRecord {
            experiment: i,
            slot: i * 7,
            received: 3,
            duplicates: (i % 3) as u8,
            qdelay_last_secs: 0.001 * i as f64,
            qdelay_max_secs: 0.002 * i as f64,
            flags: (i % 2) as u8 * RECORD_FLAG_KERNEL_STAMPED,
        }
    }

    fn counters() -> EstimateCounters {
        EstimateCounters {
            experiments: 1000,
            z_sum: 120,
            basic_experiments: 600,
            extended_experiments: 400,
            r: 210,
            s: 90,
            n01: 44,
            n10: 46,
            u: 30,
            v: 28,
            n111: 9,
            outcomes_malformed: 2,
            slot_secs: 0.005,
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        let messages = vec![
            ControlMessage::Syn {
                session: 7,
                params: params(),
            },
            ControlMessage::SynAck { session: 7 },
            ControlMessage::SynNack {
                session: 7,
                reason: RejectReason::Capacity,
            },
            ControlMessage::SynNack {
                session: 7,
                reason: RejectReason::Other(77),
            },
            ControlMessage::Heartbeat {
                session: 7,
                seq: 42,
            },
            ControlMessage::HeartbeatAck {
                session: 7,
                seq: 42,
            },
            ControlMessage::Fin {
                session: 7,
                probes_sent: 100,
                packets_sent: 300,
            },
            ControlMessage::FinAck {
                session: 7,
                total_chunks: 4,
                summary: ReportSummary {
                    packets: 298,
                    rejected: 3,
                    duplicates: 2,
                    min_raw_delay_ns: Some(-1_234_567),
                },
            },
            ControlMessage::FinAck {
                session: 7,
                total_chunks: 0,
                summary: ReportSummary::default(),
            },
            ControlMessage::ReportRequest {
                session: 7,
                chunk: 2,
            },
            ControlMessage::ReportChunk {
                session: 7,
                chunk: 2,
                total_chunks: 4,
                records: (0..RECORDS_PER_CHUNK as u64).map(record).collect(),
            },
            ControlMessage::ReportChunk {
                session: 7,
                chunk: 3,
                total_chunks: 4,
                records: vec![],
            },
            ControlMessage::ReportAck {
                session: 7,
                chunk: 4,
            },
            ControlMessage::EstimateRequest {
                session: 7,
                scope: EstimateScope::Session,
            },
            ControlMessage::EstimateRequest {
                session: 7,
                scope: EstimateScope::Other(0x7E),
            },
            ControlMessage::EstimateReply {
                session: 7,
                scope: EstimateScope::Fleet,
                sessions: 2048,
                counters: counters(),
                delay: DelaySummary {
                    samples: 5_000,
                    p50_secs: 0.002,
                    p99_secs: 0.07,
                },
            },
            ControlMessage::EstimateReply {
                session: 7,
                scope: EstimateScope::Session,
                sessions: 1,
                counters: EstimateCounters::default(),
                delay: DelaySummary::default(),
            },
        ];
        for msg in messages {
            let wire = msg.encode();
            let back = ControlMessage::decode(&wire).unwrap();
            assert_eq!(back, msg);
            assert_eq!(back.session(), 7);
        }
    }

    fn all_messages() -> Vec<ControlMessage> {
        vec![
            ControlMessage::Syn {
                session: 7,
                params: params(),
            },
            ControlMessage::SynAck { session: 7 },
            ControlMessage::SynNack {
                session: 7,
                reason: RejectReason::Capacity,
            },
            ControlMessage::Heartbeat {
                session: 7,
                seq: 42,
            },
            ControlMessage::HeartbeatAck {
                session: 7,
                seq: 42,
            },
            ControlMessage::Fin {
                session: 7,
                probes_sent: 100,
                packets_sent: 300,
            },
            ControlMessage::FinAck {
                session: 7,
                total_chunks: 4,
                summary: ReportSummary {
                    packets: 298,
                    rejected: 3,
                    duplicates: 2,
                    min_raw_delay_ns: Some(-1_234_567),
                },
            },
            ControlMessage::ReportRequest {
                session: 7,
                chunk: 2,
            },
            ControlMessage::ReportChunk {
                session: 7,
                chunk: 2,
                total_chunks: 4,
                records: (0..RECORDS_PER_CHUNK as u64).map(record).collect(),
            },
            ControlMessage::ReportChunk {
                session: 7,
                chunk: 3,
                total_chunks: 4,
                records: vec![],
            },
            ControlMessage::ReportAck {
                session: 7,
                chunk: 4,
            },
            ControlMessage::EstimateRequest {
                session: 7,
                scope: EstimateScope::Fleet,
            },
            ControlMessage::EstimateReply {
                session: 7,
                scope: EstimateScope::Fleet,
                sessions: 2048,
                counters: counters(),
                delay: DelaySummary {
                    samples: 5_000,
                    p50_secs: 0.002,
                    p99_secs: 0.07,
                },
            },
        ]
    }

    #[test]
    fn encode_into_matches_allocating_encode() {
        for msg in all_messages() {
            let wire = msg.encode();
            assert_eq!(wire.len(), msg.encoded_len(), "{msg:?}");
            let mut buf = [0xAAu8; MAX_CONTROL_BYTES];
            let n = msg.encode_into(&mut buf);
            assert_eq!(&buf[..n], &wire[..], "{msg:?}");
        }
    }

    #[test]
    fn max_control_bytes_bounds_every_variant() {
        for msg in all_messages() {
            assert!(msg.encoded_len() <= MAX_CONTROL_BYTES, "{msg:?}");
        }
    }

    #[test]
    fn slice_chunk_encoding_matches_cloning_path() {
        // Satellite contract: the borrow-based chunk serializer emits
        // bytes identical to the old clone-per-window path, chunk by
        // chunk, including the empty-tail and exact-multiple cases.
        for n in [0usize, 1, 31, 32, 33, 64, 69] {
            let records: Vec<ReportRecord> = (0..n as u64).map(record).collect();
            let old = chunk_records(11, &records);
            assert_eq!(old.len() as u32, chunk_count(records.len()));
            let mut buf = [0u8; MAX_CONTROL_BYTES];
            for (i, window) in records.chunks(RECORDS_PER_CHUNK).enumerate() {
                let len = encode_report_chunk_into(
                    11,
                    i as u32,
                    chunk_count(records.len()),
                    window,
                    &mut buf,
                );
                assert_eq!(&buf[..len], &old[i].encode()[..], "chunk {i} of {n}");
            }
        }
    }

    #[test]
    fn garbage_bytes_never_panic() {
        let mut x: u64 = 0x0bad_cafe_dead_beef;
        for len in 0..(MAX_CONTROL_BYTES + 40) {
            let mut data = vec![0u8; len];
            for b in &mut data {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            let _ = ControlMessage::decode(&data);
            // And with a valid magic + random tag, so we exercise the
            // per-variant field parsers, not just the magic check.
            if len >= 4 {
                data[..4].copy_from_slice(&CONTROL_MAGIC.to_be_bytes());
                let _ = ControlMessage::decode(&data);
            }
        }
    }

    #[test]
    fn every_variant_truncation_errors_cleanly() {
        for msg in all_messages() {
            let wire = msg.encode();
            for len in 0..wire.len() {
                assert!(
                    ControlMessage::decode(&wire[..len]).is_err(),
                    "{msg:?} truncated to {len} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn oversized_datagrams_decode_ignoring_trailing_bytes() {
        // UDP can deliver padded datagrams; trailing junk after a valid
        // message must not panic and must not change the decode.
        for msg in all_messages() {
            let mut wire = msg.encode().to_vec();
            wire.extend_from_slice(&[0x5A; 64]);
            assert_eq!(ControlMessage::decode(&wire).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn chunk_count_edge_cases() {
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(RECORDS_PER_CHUNK), 1);
        assert_eq!(chunk_count(RECORDS_PER_CHUNK + 1), 2);
    }

    #[test]
    fn chunk_window_covers_the_report_exactly_once() {
        let records: Vec<ReportRecord> = (0..(2 * RECORDS_PER_CHUNK as u64 + 5))
            .map(record)
            .collect();
        let total = chunk_count(records.len());
        assert_eq!(total, 3);
        let mut rebuilt = Vec::new();
        for chunk in 0..total {
            let window = chunk_window(&records, chunk);
            assert!(window.len() <= RECORDS_PER_CHUNK);
            rebuilt.extend_from_slice(window);
        }
        assert_eq!(rebuilt, records);
        assert_eq!(chunk_window(&records, 2).len(), 5);
    }

    #[test]
    fn chunk_window_out_of_range_is_empty_not_a_panic() {
        let records: Vec<ReportRecord> = (0..3).map(record).collect();
        assert!(chunk_window(&records, 1).is_empty());
        assert!(chunk_window(&records, u32::MAX).is_empty());
        assert!(chunk_window(&[], 0).is_empty());
    }

    #[test]
    fn reject_reasons_roundtrip_distinct_codes() {
        let reasons = [
            RejectReason::Capacity,
            RejectReason::Budget,
            RejectReason::Evicted,
            RejectReason::Other(200),
        ];
        for (i, a) in reasons.iter().enumerate() {
            assert_eq!(RejectReason::from_code(a.code()), *a);
            for b in &reasons[i + 1..] {
                assert_ne!(a.code(), b.code(), "{a:?} and {b:?} share a wire code");
            }
        }
    }

    #[test]
    fn estimate_scopes_roundtrip_distinct_codes() {
        let scopes = [
            EstimateScope::Session,
            EstimateScope::Fleet,
            EstimateScope::Other(0xC3),
        ];
        for (i, a) in scopes.iter().enumerate() {
            assert_eq!(EstimateScope::from_code(a.code()), *a);
            for b in &scopes[i + 1..] {
                assert_ne!(a.code(), b.code(), "{a:?} and {b:?} share a wire code");
            }
        }
    }

    /// Version safety: a peer built before the estimate messages sees
    /// them as unknown types — a clean `UnknownType` error it already
    /// ignores — never a panic or a misparse as another variant.
    #[test]
    fn estimate_messages_look_unknown_to_old_peers() {
        for tag in [TYPE_ESTIMATE_REQUEST, TYPE_ESTIMATE_REPLY] {
            assert!(
                tag > TYPE_SYN_NACK,
                "estimate tags must extend, not reuse, the pre-existing tag space"
            );
        }
    }

    #[test]
    fn probe_and_control_magics_differ() {
        assert_ne!(CONTROL_MAGIC, crate::MAGIC);
        // A control message must not decode as a probe and vice versa.
        let ctrl = ControlMessage::SynAck { session: 1 }.encode();
        assert!(matches!(
            crate::ProbeHeader::decode(&ctrl),
            Err(DecodeError::TooShort { .. } | DecodeError::BadMagic { .. })
        ));
        let probe = crate::ProbeHeader {
            session: 1,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 1,
        }
        .encode(600);
        assert!(matches!(
            ControlMessage::decode(&probe),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_never_panics_and_always_errors() {
        let full = ControlMessage::ReportChunk {
            session: 9,
            chunk: 0,
            total_chunks: 1,
            records: (0..5).map(record).collect(),
        }
        .encode();
        for len in 0..full.len() {
            assert!(
                ControlMessage::decode(&full[..len]).is_err(),
                "truncated to {len} bytes decoded successfully"
            );
        }
        assert!(ControlMessage::decode(&full).is_ok());
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut wire = ControlMessage::SynAck { session: 3 }.encode().to_vec();
        wire[4] = 0xEE;
        assert_eq!(
            ControlMessage::decode(&wire),
            Err(DecodeError::UnknownType { got: 0xEE })
        );
    }

    #[test]
    fn syn_with_invalid_params_is_rejected() {
        let mut bad = params();
        bad.probe_packets = 0;
        let wire = ControlMessage::Syn {
            session: 1,
            params: bad,
        }
        .encode();
        assert_eq!(ControlMessage::decode(&wire), Err(DecodeError::BadFields));
        let mut bad_p = params();
        bad_p.p = 1.5;
        let wire = ControlMessage::Syn {
            session: 1,
            params: bad_p,
        }
        .encode();
        assert_eq!(ControlMessage::decode(&wire), Err(DecodeError::BadFields));
    }

    #[test]
    fn oversized_chunk_count_is_rejected() {
        let mut wire = ControlMessage::ReportChunk {
            session: 1,
            chunk: 0,
            total_chunks: 1,
            records: vec![],
        }
        .encode()
        .to_vec();
        // Patch the record count field (offset 4+1+4+4+4 = 17) to an
        // impossible value.
        wire[17] = 0xFF;
        wire[18] = 0xFF;
        assert_eq!(ControlMessage::decode(&wire), Err(DecodeError::BadFields));
    }

    #[test]
    fn chunking_covers_every_record_in_order() {
        let records: Vec<ReportRecord> = (0..(RECORDS_PER_CHUNK as u64 * 2 + 5))
            .map(record)
            .collect();
        let chunks = chunk_records(11, &records);
        assert_eq!(chunks.len(), 3);
        let mut seen = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            let ControlMessage::ReportChunk {
                session,
                chunk,
                total_chunks,
                records,
            } = c
            else {
                panic!("not a chunk");
            };
            assert_eq!(*session, 11);
            assert_eq!(*chunk, i as u32);
            assert_eq!(*total_chunks, 3);
            seen.extend_from_slice(records);
        }
        assert_eq!(seen, records);
        assert!(chunk_records(11, &[]).is_empty());
    }
}
