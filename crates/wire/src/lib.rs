//! On-the-wire format for live BADABING probe packets.
//!
//! The original tool sends fixed-size UDP probes carrying timestamps and
//! sequence numbers (§4.2, §6). The live reimplementation uses a small
//! fixed header followed by zero padding up to the configured probe packet
//! size (600 bytes by default — padding is what gives the probe its
//! buffer-stressing footprint, so the wire size must be exact).
//!
//! Header layout (network byte order, 44 bytes):
//!
//! ```text
//! 0       8       16      24      32      40    42    43    44
//! | magic | session| exper | slot  | seq   | t_ns | idx | len |
//! |  u32  |  u32   |  u64  |  u64  |  u64  | u64  | u8  | u8  | (+2 pad)
//! ```
//!
//! `t_ns` is the sender's monotonic send timestamp in nanoseconds; the
//! receiver computes one-way delay against its own clock (offset removal
//! is the receiver's concern, §7's clock-synchronization discussion).
//!
//! # Example
//!
//! ```
//! use badabing_wire::ProbeHeader;
//!
//! let header = ProbeHeader {
//!     session: 7,
//!     experiment: 42,
//!     slot: 1234,
//!     seq: 99,
//!     send_ns: 1_000_000,
//!     idx: 0,
//!     probe_len: 3,
//! };
//! let datagram = header.encode(600); // padded to the probe size
//! assert_eq!(datagram.len(), 600);
//! assert_eq!(ProbeHeader::decode(&datagram).unwrap(), header);
//! ```

use bytes::{Buf, BufMut, Bytes};

pub mod control;

/// A [`BufMut`] writing into a caller-provided `&mut [u8]` instead of a
/// growable buffer, so hot-path encoders ([`ProbeHeader::encode_into`],
/// [`control::ControlMessage::encode_into`]) can reuse one preallocated
/// buffer per socket and do zero heap allocation in steady state.
///
/// Writes past the end of the slice panic; callers size the buffer from
/// [`HEADER_BYTES`] / [`control::MAX_CONTROL_BYTES`] /
/// [`ControlMessage::encoded_len`](control::ControlMessage::encoded_len).
#[derive(Debug)]
pub struct SliceWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> SliceWriter<'a> {
    /// Start writing at the beginning of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes written so far.
    pub fn written(&self) -> usize {
        self.pos
    }
}

impl BufMut for SliceWriter<'_> {
    fn put_slice(&mut self, src: &[u8]) {
        let end = self.pos + src.len();
        assert!(
            end <= self.buf.len(),
            "SliceWriter overflow: {} + {} > {}",
            self.pos,
            src.len(),
            self.buf.len()
        );
        self.buf[self.pos..end].copy_from_slice(src);
        self.pos = end;
    }
}

/// Identifies probe packets and version: the ASCII bytes `"BDG1"`
/// (BaDabinG, format version 1). Bump the trailing digit on any header
/// layout change; [`control::CONTROL_MAGIC`] (`"BDC1"`) marks
/// control-plane datagrams on the same socket.
pub const MAGIC: u32 = 0x4244_4731; // "BDG1"

/// Size of the fixed header in bytes.
pub const HEADER_BYTES: usize = 44;

/// A probe packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHeader {
    /// Random id binding a run's packets together; lets a receiver reject
    /// strays from older runs.
    pub session: u32,
    /// Experiment id.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Global packet sequence number.
    pub seq: u64,
    /// Sender monotonic send time, nanoseconds.
    pub send_ns: u64,
    /// Packet index within the probe.
    pub idx: u8,
    /// Packets in the probe.
    pub probe_len: u8,
}

/// Errors from decoding a probe packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Datagram shorter than the header.
    TooShort {
        /// Bytes actually present.
        got: usize,
    },
    /// Magic number mismatch (not a probe packet, or wrong version).
    BadMagic {
        /// The value found where the magic should be.
        got: u32,
    },
    /// Header fields are internally inconsistent.
    BadFields,
    /// Control message carries an unknown type tag.
    UnknownType {
        /// The tag found.
        got: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort { got } => {
                write!(f, "datagram too short: {got} < {HEADER_BYTES} bytes")
            }
            DecodeError::BadMagic { got } => write!(f, "bad magic {got:#010x}"),
            DecodeError::BadFields => write!(f, "inconsistent header fields"),
            DecodeError::UnknownType { got } => {
                write!(f, "unknown control message type {got:#04x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl ProbeHeader {
    /// Encode into a datagram of exactly `packet_bytes` (header + zero
    /// padding).
    ///
    /// # Panics
    /// Panics if `packet_bytes < HEADER_BYTES`.
    pub fn encode(&self, packet_bytes: usize) -> Bytes {
        let mut buf = vec![0u8; packet_bytes];
        self.encode_into(&mut buf);
        Bytes::from(buf)
    }

    /// Encode into a caller-provided buffer without allocating: the
    /// header goes at the front, the rest of `buf` is zeroed as padding
    /// (the whole slice is the datagram). Returns the datagram length,
    /// always `buf.len()`. This is the steady-state TX path; [`encode`]
    /// (which allocates a fresh [`Bytes`]) is a thin wrapper over it.
    ///
    /// [`encode`]: ProbeHeader::encode
    ///
    /// # Panics
    /// Panics if `buf.len() < HEADER_BYTES`.
    pub fn encode_into(&self, buf: &mut [u8]) -> usize {
        assert!(
            buf.len() >= HEADER_BYTES,
            "packet size {} below header size {HEADER_BYTES}",
            buf.len()
        );
        let mut w = SliceWriter::new(buf);
        w.put_u32(MAGIC);
        w.put_u32(self.session);
        w.put_u64(self.experiment);
        w.put_u64(self.slot);
        w.put_u64(self.seq);
        w.put_u64(self.send_ns);
        w.put_u8(self.idx);
        w.put_u8(self.probe_len);
        w.put_u16(0); // reserved / alignment
        debug_assert_eq!(w.written(), HEADER_BYTES);
        buf[HEADER_BYTES..].fill(0);
        buf.len()
    }

    /// Decode from a received datagram.
    pub fn decode(mut data: &[u8]) -> Result<Self, DecodeError> {
        if data.len() < HEADER_BYTES {
            return Err(DecodeError::TooShort { got: data.len() });
        }
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic { got: magic });
        }
        let session = data.get_u32();
        let experiment = data.get_u64();
        let slot = data.get_u64();
        let seq = data.get_u64();
        let send_ns = data.get_u64();
        let idx = data.get_u8();
        let probe_len = data.get_u8();
        let _reserved = data.get_u16();
        if probe_len == 0 || idx >= probe_len {
            return Err(DecodeError::BadFields);
        }
        Ok(Self {
            session,
            experiment,
            slot,
            seq,
            send_ns,
            idx,
            probe_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ProbeHeader {
        ProbeHeader {
            session: 0xDEAD_BEEF,
            experiment: 12_345,
            slot: 678_901,
            seq: 42,
            send_ns: 1_234_567_890_123,
            idx: 1,
            probe_len: 3,
        }
    }

    #[test]
    fn roundtrip() {
        let h = header();
        let wire = h.encode(600);
        assert_eq!(wire.len(), 600);
        let back = ProbeHeader::decode(&wire).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn minimum_size_roundtrip() {
        let h = header();
        let wire = h.encode(HEADER_BYTES);
        assert_eq!(wire.len(), HEADER_BYTES);
        assert_eq!(ProbeHeader::decode(&wire).unwrap(), h);
    }

    #[test]
    fn padding_is_zero() {
        let wire = header().encode(128);
        assert!(wire[HEADER_BYTES..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "below header size")]
    fn rejects_tiny_packets() {
        let _ = header().encode(10);
    }

    #[test]
    fn short_datagram_fails() {
        let wire = header().encode(600);
        assert_eq!(
            ProbeHeader::decode(&wire[..20]),
            Err(DecodeError::TooShort { got: 20 })
        );
        assert_eq!(
            ProbeHeader::decode(&[]),
            Err(DecodeError::TooShort { got: 0 })
        );
    }

    #[test]
    fn bad_magic_fails() {
        let mut wire = header().encode(600).to_vec();
        wire[0] ^= 0xFF;
        assert!(matches!(
            ProbeHeader::decode(&wire),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_fields_fail() {
        let mut h = header();
        h.idx = 3; // == probe_len
        let wire = h.encode(600);
        assert_eq!(ProbeHeader::decode(&wire), Err(DecodeError::BadFields));
        let mut h2 = header();
        h2.probe_len = 0;
        h2.idx = 0;
        let wire2 = h2.encode(600);
        assert_eq!(ProbeHeader::decode(&wire2), Err(DecodeError::BadFields));
    }

    #[test]
    fn encode_into_matches_allocating_encode() {
        let h = header();
        for size in [HEADER_BYTES, 64, 600] {
            // Fill with junk so stale bytes would show up as a diff.
            let mut buf = vec![0xAA; size];
            let n = h.encode_into(&mut buf);
            assert_eq!(n, size);
            assert_eq!(&buf[..], &h.encode(size)[..]);
        }
    }

    #[test]
    #[should_panic(expected = "below header size")]
    fn encode_into_rejects_tiny_buffers() {
        let mut buf = [0u8; 10];
        let _ = header().encode_into(&mut buf);
    }

    #[test]
    fn garbage_bytes_never_panic() {
        // A deterministic junk generator: every decode must return a
        // clean error or a valid header, never panic.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for len in 0..200 {
            let mut data = vec![0u8; len];
            for b in &mut data {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            let _ = ProbeHeader::decode(&data);
        }
    }

    #[test]
    fn oversized_datagram_ignores_trailing_bytes() {
        let h = header();
        let mut wire = h.encode(600).to_vec();
        wire.extend_from_slice(&[0xFF; 300]);
        assert_eq!(ProbeHeader::decode(&wire).unwrap(), h);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeError::TooShort { got: 5 };
        assert!(e.to_string().contains('5'));
        let e = DecodeError::BadMagic { got: 0xABCD };
        assert!(e.to_string().contains("0x0000abcd"));
    }
}
