//! Property-style decode tests: the wire format must round-trip every
//! representable header and reject every truncated or corrupted datagram
//! without panicking. These pin the header layout so the doc comment in
//! `lib.rs` cannot drift from the implementation unnoticed.

use badabing_wire::control::{ControlMessage, ReportRecord, SessionParams};
use badabing_wire::{DecodeError, ProbeHeader, HEADER_BYTES, MAGIC};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any in-range header round-trips through any legal packet size.
    #[test]
    fn probe_header_roundtrips(
        session in any::<u32>(),
        experiment in any::<u64>(),
        slot in any::<u64>(),
        seq in any::<u64>(),
        send_ns in any::<u64>(),
        idx in 0u8..8,
        extra_len in 0u8..8,
        pad in 0usize..600,
    ) {
        let header = ProbeHeader {
            session,
            experiment,
            slot,
            seq,
            send_ns,
            idx,
            probe_len: idx + extra_len + 1, // always > idx
        };
        let wire = header.encode(HEADER_BYTES + pad);
        prop_assert_eq!(wire.len(), HEADER_BYTES + pad);
        prop_assert_eq!(ProbeHeader::decode(&wire), Ok(header));
    }

    /// Every strict prefix of a valid datagram fails with `TooShort`
    /// (never a panic, never a bogus success).
    #[test]
    fn truncated_probe_datagrams_fail_cleanly(cut in 0usize..HEADER_BYTES) {
        let header = ProbeHeader {
            session: 1,
            experiment: 2,
            slot: 3,
            seq: 4,
            send_ns: 5,
            idx: 0,
            probe_len: 3,
        };
        let wire = header.encode(600);
        prop_assert_eq!(
            ProbeHeader::decode(&wire[..cut]),
            Err(DecodeError::TooShort { got: cut })
        );
    }

    /// Arbitrary bytes either decode to a self-consistent header or
    /// error; they never panic. A success implies the magic matched and
    /// the field invariants hold.
    #[test]
    fn garbage_probe_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(h) = ProbeHeader::decode(&bytes) {
            prop_assert!(h.probe_len > 0 && h.idx < h.probe_len);
            prop_assert_eq!(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]), MAGIC);
        }
    }

    /// Corrupting any single byte of the fixed header either still
    /// decodes (the corruption hit a don't-care bit pattern of the same
    /// field domain) or errors cleanly — and corrupting the magic always
    /// errors.
    #[test]
    fn single_byte_corruption_is_contained(pos in 0usize..HEADER_BYTES, flip in 1u8..=255) {
        let header = ProbeHeader {
            session: 77,
            experiment: 8,
            slot: 9,
            seq: 10,
            send_ns: 11,
            idx: 1,
            probe_len: 3,
        };
        let mut wire = header.encode(64).to_vec();
        wire[pos] ^= flip;
        let result = ProbeHeader::decode(&wire);
        if pos < 4 {
            prop_assert!(matches!(result, Err(DecodeError::BadMagic { .. })));
        } else if let Ok(h) = result {
            prop_assert!(h.probe_len > 0 && h.idx < h.probe_len);
        }
    }

    /// Control messages round-trip for arbitrary field values.
    #[test]
    fn control_messages_roundtrip(
        session in any::<u32>(),
        seq in any::<u64>(),
        n_slots in 1u64..u64::MAX,
        slot_ns in 1u64..u64::MAX,
        probe_packets in 1u8..=255,
        packet_bytes in any::<u32>(),
        p_milli in 1u32..=1000,
        chunk in any::<u32>(),
        n_records in 0usize..=8,
    ) {
        let params = SessionParams {
            n_slots,
            slot_ns,
            probe_packets,
            packet_bytes,
            p: f64::from(p_milli) / 1000.0,
            improved: seq.is_multiple_of(2),
        };
        let records: Vec<ReportRecord> = (0..n_records as u64)
            .map(|i| ReportRecord {
                experiment: i ^ seq,
                slot: i.wrapping_mul(31),
                received: (i % 4) as u8,
                duplicates: (i % 2) as u8,
                qdelay_last_secs: i as f64 * 1e-4,
                qdelay_max_secs: i as f64 * 2e-4,
                flags: (i % 2) as u8,
            })
            .collect();
        let messages = [
            ControlMessage::Syn { session, params },
            ControlMessage::Heartbeat { session, seq },
            ControlMessage::ReportChunk {
                session,
                chunk,
                total_chunks: chunk.saturating_add(1),
                records,
            },
        ];
        for msg in messages {
            let wire = msg.encode();
            prop_assert_eq!(ControlMessage::decode(&wire), Ok(msg));
        }
    }

    /// Garbage control input never panics; successes are well-formed.
    #[test]
    fn garbage_control_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ControlMessage::decode(&bytes);
    }
}
