//! Self-similarity diagnostics: the variance-time plot.
//!
//! The paper's framing rests on traffic whose burstiness persists across
//! time scales (Leland et al.). The classic check is the variance-time
//! plot: aggregate a rate series over blocks of `m` samples; for a
//! self-similar process the variance of the block means decays as
//! `m^(2H-2)` with Hurst parameter `H > 0.5`, while short-range-dependent
//! traffic decays as `1/m` (`H = 0.5`). [`hurst_variance_time`] fits that
//! slope — used by tests to verify the ON/OFF aggregate really is bursty
//! at many scales and by workload studies to characterize a trace.

/// Variance of block means at each aggregation scale `m` (in samples).
/// Scales that do not fit at least two blocks are skipped.
pub fn variance_time(series: &[f64], scales: &[usize]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &m in scales {
        if m == 0 || series.len() / m < 2 {
            continue;
        }
        let means: Vec<f64> = series
            .chunks_exact(m)
            .map(|c| c.iter().sum::<f64>() / m as f64)
            .collect();
        let n = means.len() as f64;
        let mean = means.iter().sum::<f64>() / n;
        let var = means.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        out.push((m, var));
    }
    out
}

/// Estimate the Hurst parameter from the variance-time slope:
/// `log Var(m) = c + (2H - 2) log m`, fit by least squares over
/// logarithmically spaced scales. Returns `None` when the series is too
/// short (or degenerate) to fit.
pub fn hurst_variance_time(series: &[f64]) -> Option<f64> {
    if series.len() < 64 {
        return None;
    }
    // Log-spaced scales from 1 to len/8.
    let max_m = series.len() / 8;
    let mut scales = Vec::new();
    let mut m = 1usize;
    while m <= max_m {
        scales.push(m);
        m = (m * 2).max(m + 1);
    }
    let vt = variance_time(series, &scales);
    let pts: Vec<(f64, f64)> = vt
        .into_iter()
        .filter(|&(_, v)| v > 0.0)
        .map(|(m, v)| ((m as f64).ln(), v.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    // Least-squares slope.
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some((slope + 2.0) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Pareto, Sample};
    use crate::rng::seeded;
    use rand::RngExt;

    #[test]
    fn variance_time_halves_for_iid() {
        // IID: Var(m) = Var(1)/m exactly in expectation.
        let mut rng = seeded(1, "vt");
        let series: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>()).collect();
        let vt = variance_time(&series, &[1, 10, 100]);
        let v1 = vt[0].1;
        let v10 = vt[1].1;
        let v100 = vt[2].1;
        assert!((v1 / v10 / 10.0 - 1.0).abs() < 0.2, "ratio {}", v1 / v10);
        assert!((v1 / v100 / 100.0 - 1.0).abs() < 0.4, "ratio {}", v1 / v100);
    }

    #[test]
    fn white_noise_has_hurst_half() {
        let mut rng = seeded(2, "hurst-wn");
        let series: Vec<f64> = (0..200_000).map(|_| rng.random::<f64>()).collect();
        let h = hurst_variance_time(&series).unwrap();
        assert!((h - 0.5).abs() < 0.06, "H = {h}");
    }

    #[test]
    fn pareto_onoff_has_hurst_above_half() {
        // Binary ON/OFF with Pareto(α = 1.4) run lengths: theory says
        // H = (3 − α)/2 = 0.8.
        let mut rng = seeded(3, "hurst-oo");
        let dur = Pareto::new(2.0, 1.4).with_cap(200_000.0);
        let mut series = Vec::with_capacity(2_000_000);
        let mut on = false;
        while series.len() < 2_000_000 {
            let len = dur.sample(&mut rng).round() as usize;
            let v = if on { 1.0 } else { 0.0 };
            series.extend(std::iter::repeat_n(v, len.max(1)));
            on = !on;
        }
        let h = hurst_variance_time(&series).unwrap();
        assert!(h > 0.65, "H = {h} should reflect long-range dependence");
        assert!(h < 1.05, "H = {h} out of range");
    }

    #[test]
    fn short_series_returns_none() {
        assert_eq!(hurst_variance_time(&[1.0; 10]), None);
        assert_eq!(hurst_variance_time(&[]), None);
    }

    #[test]
    fn constant_series_returns_none() {
        let series = vec![5.0; 10_000];
        assert_eq!(
            hurst_variance_time(&series),
            None,
            "zero variance cannot be fit"
        );
    }
}
