//! Streaming summary statistics (Welford's algorithm).
//!
//! Every table in the paper reports a mean and, for durations, a standard
//! deviation; the experiment harness accumulates those with [`Summary`]
//! rather than buffering raw samples.

use serde::{Deserialize, Serialize};

/// Single-pass summary of a stream of `f64` samples: count, mean, variance
/// (via Welford's numerically stable recurrence), min and max.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty (convenient for report tables where an
    /// empty cell is printed as zero, mirroring the paper's "0 (0)" entries).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); `0.0` for fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n-1`); `0.0` for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// Compute the `q`-quantile (`0 <= q <= 1`) of a slice by sorting a copy and
/// interpolating linearly between order statistics.
///
/// Returns `None` for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_reports_zeros() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }

    #[test]
    fn merge_equals_pooled() {
        let xs = [1.0, 2.0, 3.0, 10.0, -4.0, 6.5];
        let ys = [0.5, 0.25, 8.0, 3.0];
        let mut a = Summary::from_slice(&xs);
        let b = Summary::from_slice(&ys);
        a.merge(&b);
        let mut pooled: Vec<f64> = xs.to_vec();
        pooled.extend_from_slice(&ys);
        let p = Summary::from_slice(&pooled);
        assert_eq!(a.count(), p.count());
        assert!((a.mean() - p.mean()).abs() < 1e-12);
        assert!((a.variance() - p.variance()).abs() < 1e-12);
        assert_eq!(a.min(), p.min());
        assert_eq!(a.max(), p.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a = Summary::from_slice(&xs);
        a.merge(&Summary::new());
        assert_eq!(a.count(), 3);
        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&xs));
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_on_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&xs, 0.5), Some(5.0));
    }
}
