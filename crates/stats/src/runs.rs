//! Run-length and episode utilities.
//!
//! The paper's loss characteristics are defined over *episodes*: maximal
//! runs of congested time slots (§3, §5). Both the ground-truth extractor
//! (which sees the router's full state) and the tool-side interpreters
//! (which see probe outcomes) reduce a boolean series to episodes, so the
//! machinery lives here.

use serde::{Deserialize, Serialize};

/// A maximal run of `true` slots: `[start, end)` in slot indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// First slot of the episode (inclusive).
    pub start: u64,
    /// One past the last slot of the episode (exclusive).
    pub end: u64,
}

impl Episode {
    /// Number of slots covered by the episode.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the episode covers no slots (never produced by extraction,
    /// but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// The set of episodes extracted from a boolean slot series, along with the
/// total number of slots it was extracted from.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpisodeSet {
    episodes: Vec<Episode>,
    total_slots: u64,
}

impl EpisodeSet {
    /// Extract maximal runs of `true` from a slot series.
    pub fn from_bools(slots: &[bool]) -> Self {
        let mut episodes = Vec::new();
        let mut start: Option<u64> = None;
        for (i, &c) in slots.iter().enumerate() {
            match (c, start) {
                (true, None) => start = Some(i as u64),
                (false, Some(s)) => {
                    episodes.push(Episode {
                        start: s,
                        end: i as u64,
                    });
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            episodes.push(Episode {
                start: s,
                end: slots.len() as u64,
            });
        }
        Self {
            episodes,
            total_slots: slots.len() as u64,
        }
    }

    /// Build directly from episode bounds (must be sorted & non-overlapping).
    ///
    /// # Panics
    /// Panics if the invariants are violated.
    pub fn from_episodes(episodes: Vec<Episode>, total_slots: u64) -> Self {
        let mut prev_end = 0u64;
        for e in &episodes {
            assert!(e.start >= prev_end, "episodes must be sorted and disjoint");
            assert!(e.end > e.start, "episodes must be non-empty");
            assert!(e.end <= total_slots, "episode beyond series end");
            prev_end = e.end;
        }
        Self {
            episodes,
            total_slots,
        }
    }

    /// The extracted episodes, in order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Number of slots in the underlying series.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Number of episodes (the paper's `B`).
    pub fn count(&self) -> u64 {
        self.episodes.len() as u64
    }

    /// Total congested slots (the paper's `A = Σ k·j_k`).
    pub fn congested_slots(&self) -> u64 {
        self.episodes.iter().map(Episode::len).sum()
    }

    /// Episode *frequency*: fraction of slots that are congested, `A / N`.
    ///
    /// This is the paper's `F`, the quantity the unbiased estimator
    /// `F̂ = Σ zᵢ / M` targets. Returns 0 for an empty series.
    pub fn frequency(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.congested_slots() as f64 / self.total_slots as f64
        }
    }

    /// Mean episode duration in slots, `D = A / B`; 0 when no episodes.
    pub fn mean_duration_slots(&self) -> f64 {
        if self.episodes.is_empty() {
            0.0
        } else {
            self.congested_slots() as f64 / self.episodes.len() as f64
        }
    }

    /// Mean episode duration in seconds for a given slot width.
    pub fn mean_duration_secs(&self, slot_width_secs: f64) -> f64 {
        self.mean_duration_slots() * slot_width_secs
    }

    /// Standard deviation of episode durations in seconds.
    pub fn std_duration_secs(&self, slot_width_secs: f64) -> f64 {
        if self.episodes.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_duration_slots();
        let var = self
            .episodes
            .iter()
            .map(|e| {
                let d = e.len() as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.episodes.len() as f64;
        var.sqrt() * slot_width_secs
    }

    /// Merge episodes separated by gaps of at most `max_gap` slots.
    ///
    /// The paper's episode definition (§3) allows "transient periods during
    /// which packet loss ceases" inside one episode; the ground-truth
    /// extractor uses this to bridge sub-RTT lulls between drops.
    pub fn merge_gaps(&self, max_gap: u64) -> Self {
        let mut merged: Vec<Episode> = Vec::with_capacity(self.episodes.len());
        for &e in &self.episodes {
            match merged.last_mut() {
                Some(last) if e.start - last.end <= max_gap => last.end = e.end,
                _ => merged.push(e),
            }
        }
        Self {
            episodes: merged,
            total_slots: self.total_slots,
        }
    }

    /// Drop episodes shorter than `min_len` slots.
    pub fn filter_min_len(&self, min_len: u64) -> Self {
        Self {
            episodes: self
                .episodes
                .iter()
                .copied()
                .filter(|e| e.len() >= min_len)
                .collect(),
            total_slots: self.total_slots,
        }
    }

    /// Whether slot `i` falls inside any episode (binary search).
    pub fn contains_slot(&self, i: u64) -> bool {
        self.episodes
            .binary_search_by(|e| {
                if e.end <= i {
                    std::cmp::Ordering::Less
                } else if e.start > i {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Render back to a boolean slot series.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut v = vec![false; self.total_slots as usize];
        for e in &self.episodes {
            for s in e.start..e.end {
                v[s as usize] = true;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_simple_runs() {
        let slots = [false, true, true, false, true, false, false, true];
        let es = EpisodeSet::from_bools(&slots);
        assert_eq!(
            es.episodes(),
            &[
                Episode { start: 1, end: 3 },
                Episode { start: 4, end: 5 },
                Episode { start: 7, end: 8 },
            ]
        );
        assert_eq!(es.count(), 3);
        assert_eq!(es.congested_slots(), 4);
        assert!((es.frequency() - 0.5).abs() < 1e-12);
        assert!((es.mean_duration_slots() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_reaching_series_end_is_closed() {
        let es = EpisodeSet::from_bools(&[true, true]);
        assert_eq!(es.episodes(), &[Episode { start: 0, end: 2 }]);
    }

    #[test]
    fn empty_and_all_false_series() {
        assert_eq!(EpisodeSet::from_bools(&[]).count(), 0);
        assert_eq!(EpisodeSet::from_bools(&[]).frequency(), 0.0);
        let es = EpisodeSet::from_bools(&[false; 10]);
        assert_eq!(es.count(), 0);
        assert_eq!(es.mean_duration_slots(), 0.0);
    }

    #[test]
    fn merge_gaps_bridges_small_lulls() {
        let slots = [true, false, true, false, false, false, true];
        let es = EpisodeSet::from_bools(&slots).merge_gaps(1);
        assert_eq!(
            es.episodes(),
            &[Episode { start: 0, end: 3 }, Episode { start: 6, end: 7 }]
        );
        let all = EpisodeSet::from_bools(&slots).merge_gaps(3);
        assert_eq!(all.episodes(), &[Episode { start: 0, end: 7 }]);
    }

    #[test]
    fn merge_gaps_zero_only_joins_adjacent() {
        let slots = [true, false, true];
        let es = EpisodeSet::from_bools(&slots).merge_gaps(0);
        assert_eq!(es.count(), 2);
    }

    #[test]
    fn filter_min_len_drops_singletons() {
        let slots = [true, false, true, true, false, true];
        let es = EpisodeSet::from_bools(&slots).filter_min_len(2);
        assert_eq!(es.episodes(), &[Episode { start: 2, end: 4 }]);
    }

    #[test]
    fn contains_slot_agrees_with_bools() {
        let slots = [false, true, true, false, true, false];
        let es = EpisodeSet::from_bools(&slots);
        for (i, &b) in slots.iter().enumerate() {
            assert_eq!(es.contains_slot(i as u64), b, "slot {i}");
        }
        assert!(!es.contains_slot(100));
    }

    #[test]
    fn roundtrip_via_bools() {
        let slots = [
            false, true, true, false, false, true, true, true, false, true,
        ];
        let es = EpisodeSet::from_bools(&slots);
        assert_eq!(es.to_bools(), slots);
    }

    #[test]
    fn std_duration_zero_for_uniform_lengths() {
        let slots = [true, true, false, true, true, false];
        let es = EpisodeSet::from_bools(&slots);
        assert_eq!(es.std_duration_secs(0.005), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn from_episodes_rejects_overlap() {
        let _ = EpisodeSet::from_episodes(
            vec![Episode { start: 0, end: 5 }, Episode { start: 3, end: 6 }],
            10,
        );
    }
}
