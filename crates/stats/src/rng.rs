//! Seeded random-number-generator helpers.
//!
//! Experiments in this repository involve several independent stochastic
//! processes (cross traffic, probe scheduling, session arrivals, ...). To
//! keep runs reproducible *and* to keep the processes statistically
//! independent of one another, each process derives its own [`StdRng`] from
//! the experiment master seed plus a distinct stream label via
//! [`seeded`]. Changing the master seed re-randomizes every process; adding
//! a new process does not perturb existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a deterministic [`StdRng`] from a master seed and a stream label.
///
/// The label keeps independent model components (traffic, probes, ...) on
/// independent random streams. Internally this uses SplitMix64 over the
/// combined words, which is more than adequate for seeding purposes.
pub fn seeded(master: u64, stream: &str) -> StdRng {
    let mut h = master ^ 0x9e37_79b9_7f4a_7c15;
    for b in stream.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    let mut seed = [0u8; 32];
    let mut s = h;
    for chunk in seed.chunks_mut(8) {
        s = splitmix64(s);
        chunk.copy_from_slice(&s.to_le_bytes());
    }
    StdRng::from_seed(seed)
}

/// One round of the SplitMix64 mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = seeded(7, "traffic");
        let mut b = seeded(7, "traffic");
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = seeded(7, "traffic");
        let mut b = seeded(7, "probes");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_master_seeds_diverge() {
        let mut a = seeded(7, "traffic");
        let mut b = seeded(8, "traffic");
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn empty_label_is_valid() {
        let mut a = seeded(1, "");
        let _ = a.random::<u64>();
    }
}
