//! Statistical building blocks for the BADABING reproduction.
//!
//! This crate is deliberately free of any networking or simulation types: it
//! provides the probability distributions used to construct workloads
//! (exponential inter-arrival times, Pareto file sizes, geometric probe
//! schedules), streaming summary statistics used to report results, and
//! run-length / episode utilities shared by the ground-truth extractor and
//! the estimators.
//!
//! Everything is deterministic given a seed; all randomness flows through
//! [`rand::Rng`] instances created by [`rng::seeded`] so that every
//! experiment in the repository is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use badabing_stats::{EpisodeSet, Summary};
//!
//! // Episode extraction from a congestion-indicator series:
//! let slots = [false, true, true, false, false, true, false];
//! let episodes = EpisodeSet::from_bools(&slots);
//! assert_eq!(episodes.count(), 2);
//! assert_eq!(episodes.congested_slots(), 3);
//! assert_eq!(episodes.mean_duration_slots(), 1.5);
//!
//! // Streaming summaries:
//! let s = Summary::from_slice(&[2.0, 4.0, 6.0]);
//! assert_eq!(s.mean(), 4.0);
//! assert!((s.std_dev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
//! ```

pub mod dist;
pub mod histogram;
pub mod rng;
pub mod runs;
pub mod selfsim;
pub mod summary;
pub mod timeseries;

pub use dist::{Exponential, Geometric, Pareto, Uniform};
pub use histogram::{DelaySketch, Histogram, SKETCH_BOUNDS_SECS};
pub use runs::{Episode, EpisodeSet};
pub use summary::Summary;
pub use timeseries::SlotSeries;
