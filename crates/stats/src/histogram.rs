//! Fixed-range linear histograms.
//!
//! Used for delay distributions in reports (e.g. the one-way-delay
//! profile of probe traffic, which §6.1's OWDmax thresholding reasons
//! about). Linear buckets over a known range are the right tool here —
//! queueing delay is bounded by the buffer's drain time.

use serde::{Deserialize, Serialize};

/// A histogram with `n` equal-width buckets over `[lo, hi)`, plus
/// underflow/overflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `n` buckets.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `n > 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        assert!(n > 0, "need at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `(low_edge, high_edge, count)` per bucket.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            (
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                c,
            )
        })
    }

    /// Approximate `q`-quantile by interpolating within the bucket where
    /// the cumulative count crosses `q·total`. Under/overflow samples are
    /// pinned to the range edges. `None` when empty.
    ///
    /// # Panics
    /// Panics unless `0 <= q <= 1`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if cum >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return Some(self.lo + (i as f64 + frac) * width);
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the ranges or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.hi - other.hi).abs() < 1e-12,
            "range mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.0, 0.1, 0.26, 0.5, 0.74, 0.75, 0.99] {
            h.push(x);
        }
        assert_eq!(h.buckets(), &[2, 1, 2, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), &[0, 0]);
    }

    #[test]
    fn rows_expose_edges() {
        let mut h = Histogram::new(0.0, 0.1, 2);
        h.push(0.06);
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].0 - 0.0).abs() < 1e-12 && (rows[0].1 - 0.05).abs() < 1e-12);
        assert_eq!(rows[1].2, 1);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 1.5, "median {med}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 1.5, "p90 {p90}");
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.push(0.25);
        b.push(0.75);
        b.push(-1.0);
        a.merge(&b);
        assert_eq!(a.buckets(), &[1, 1]);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "bucket count mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }
}
