//! Fixed-range linear histograms.
//!
//! Used for delay distributions in reports (e.g. the one-way-delay
//! profile of probe traffic, which §6.1's OWDmax thresholding reasons
//! about). Linear buckets over a known range are the right tool here —
//! queueing delay is bounded by the buffer's drain time.

use serde::{Deserialize, Serialize};

/// A histogram with `n` equal-width buckets over `[lo, hi)`, plus
/// underflow/overflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `n` buckets.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `n > 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        assert!(n > 0, "need at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `(low_edge, high_edge, count)` per bucket.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            (
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                c,
            )
        })
    }

    /// Approximate `q`-quantile by interpolating within the bucket where
    /// the cumulative count crosses `q·total`. Under/overflow samples are
    /// pinned to the range edges. `None` when empty or when `q` is
    /// outside `[0, 1]` (including NaN) — quantile requests can now
    /// arrive from remote peers via the control plane, so a bad `q`
    /// must not panic the process that holds the data.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if cum >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return Some(self.lo + (i as f64 + frac) * width);
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the ranges or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.hi - other.hi).abs() < 1e-12,
            "range mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

/// Bucket upper edges for [`DelaySketch`], in seconds: a 1–2–4–7
/// log-scale grid from 1 µs to 30 s, matching the latency buckets the
/// metrics crate uses so sketch quantiles and metrics histograms line
/// up row for row.
pub const SKETCH_BOUNDS_SECS: [f64; 30] = [
    1e-6, 2e-6, 4e-6, 7e-6, 1e-5, 2e-5, 4e-5, 7e-5, 1e-4, 2e-4, 4e-4, 7e-4, 1e-3, 2e-3, 4e-3, 7e-3,
    1e-2, 2e-2, 4e-2, 7e-2, 1e-1, 2e-1, 4e-1, 7e-1, 1.0, 2.0, 4.0, 7.0, 10.0, 30.0,
];

/// A fixed-bucket log-scale quantile sketch for delay samples.
///
/// Unlike [`Histogram`], whose geometry is chosen per run, every
/// `DelaySketch` shares the one [`SKETCH_BOUNDS_SECS`] grid — which is
/// what makes it *mergeable*: [`Self::merge`] is element-wise counter
/// addition (associative and commutative by construction), so a fleet
/// aggregator can combine per-session sketches in any order and read
/// the same quantiles as one sketch fed every sample. Quantiles are
/// deterministic (a pure function of the counts) and resolve to bucket
/// upper edges, so same-seed runs report byte-identical values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelaySketch {
    /// `buckets[i]` counts samples `≤ SKETCH_BOUNDS_SECS[i]` (and above
    /// the previous bound); the final slot counts overflow.
    buckets: [u64; 31],
    count: u64,
}

impl DelaySketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delay sample in seconds. Negative and non-finite
    /// values (clock skew artifacts, corrupted input) clamp into the
    /// first bucket rather than being dropped, so `count` always equals
    /// the number of pushes.
    pub fn push(&mut self, secs: f64) {
        let idx = SKETCH_BOUNDS_SECS.partition_point(|&b| secs > b);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts (last slot is overflow beyond the top bound).
    pub fn buckets(&self) -> &[u64; 31] {
        &self.buckets
    }

    /// Fold another sketch in: element-wise addition.
    pub fn merge(&mut self, other: &DelaySketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The `q`-quantile as the upper edge of the bucket where the
    /// cumulative count reaches `⌈q·total⌉`. Overflow samples report
    /// the top bound. `None` when empty or `q` outside `[0, 1]`
    /// (including NaN) — never a panic, since `q` can come from a
    /// remote peer.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) || self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SKETCH_BOUNDS_SECS[i.min(SKETCH_BOUNDS_SECS.len() - 1)]);
            }
        }
        unreachable!("count equals the bucket sum")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for &x in &[0.0, 0.1, 0.26, 0.5, 0.74, 0.75, 0.99] {
            h.push(x);
        }
        assert_eq!(h.buckets(), &[2, 1, 2, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), &[0, 0]);
    }

    #[test]
    fn rows_expose_edges() {
        let mut h = Histogram::new(0.0, 0.1, 2);
        h.push(0.06);
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].0 - 0.0).abs() < 1e-12 && (rows[0].1 - 0.05).abs() < 1e-12);
        assert_eq!(rows[1].2, 1);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 1.5, "median {med}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 1.5, "p90 {p90}");
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.push(0.25);
        b.push(0.75);
        b.push(-1.0);
        a.merge(&b);
        assert_eq!(a.buckets(), &[1, 1]);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "bucket count mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }

    /// Regression: out-of-range `q` used to assert. A remote peer can
    /// now drive quantile requests, so it must be `None` instead.
    #[test]
    fn out_of_range_quantile_is_none_not_panic() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(f64::NAN), None);
        assert!(h.quantile(0.5).is_some(), "in-range q still works");
    }

    #[test]
    fn sketch_buckets_by_log_grid() {
        let mut s = DelaySketch::new();
        s.push(0.5e-6); // ≤ 1 µs → bucket 0
        s.push(1e-6); // boundary is inclusive → bucket 0
        s.push(3e-3); // (2 ms, 4 ms] → bucket 14
        s.push(100.0); // beyond 30 s → overflow
        s.push(-1.0); // clamps into the first bucket
        s.push(f64::NAN); // likewise
        assert_eq!(s.count(), 6);
        assert_eq!(s.buckets()[0], 4);
        assert_eq!(s.buckets()[14], 1);
        assert_eq!(s.buckets()[30], 1);
    }

    #[test]
    fn sketch_quantiles_resolve_to_bucket_edges() {
        let mut s = DelaySketch::new();
        assert_eq!(s.quantile(0.5), None, "empty sketch");
        for _ in 0..90 {
            s.push(1.5e-3); // → 2 ms bucket
        }
        for _ in 0..10 {
            s.push(5e-2); // → 70 ms bucket
        }
        assert_eq!(s.quantile(0.0), Some(2e-3));
        assert_eq!(s.quantile(0.5), Some(2e-3));
        assert_eq!(s.quantile(0.9), Some(2e-3));
        assert_eq!(s.quantile(0.99), Some(7e-2));
        assert_eq!(s.quantile(1.0), Some(7e-2));
        assert_eq!(s.quantile(1.5), None);
        assert_eq!(s.quantile(f64::NAN), None);
        // Overflow reports the top bound.
        let mut o = DelaySketch::new();
        o.push(1e9);
        assert_eq!(o.quantile(0.5), Some(30.0));
    }

    /// Satellite property: merging sketches must be indistinguishable
    /// from pushing every sample into one histogram, at arbitrary
    /// split points of a seeded random stream.
    #[test]
    fn sketch_merge_equals_single_histogram() {
        let samples: Vec<f64> = {
            let mut x = 0x5EEDu64;
            (0..500)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // Span the grid: ~1 µs to ~30 s, log-uniform-ish.
                    1e-6 * 10f64.powf(((x >> 40) % 15_360) as f64 / 2048.0)
                })
                .collect()
        };
        let mut whole = DelaySketch::new();
        for &s in &samples {
            whole.push(s);
        }
        for cut in [0, 1, 125, 250, 499, 500] {
            let (mut a, mut b) = (DelaySketch::new(), DelaySketch::new());
            for &s in &samples[..cut] {
                a.push(s);
            }
            for &s in &samples[cut..] {
                b.push(s);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split at {cut}");
        }
        // Commutativity at one split.
        let (mut a, mut b) = (DelaySketch::new(), DelaySketch::new());
        for &s in &samples[..200] {
            a.push(s);
        }
        for &s in &samples[200..] {
            b.push(s);
        }
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ba, whole);
    }
}
