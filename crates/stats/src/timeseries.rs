//! Uniform-slot time series.
//!
//! The probe process discretizes time into fixed-width slots (§5.1: the slot
//! width need only be finer than the congestion dynamics of interest;
//! BADABING uses 5 ms). [`SlotSeries`] accumulates per-slot values — queue
//! delay maxima, drop counts, congestion indicators — from events stamped in
//! continuous time.

use serde::{Deserialize, Serialize};

/// A fixed-width-slot series of `f64` values over `[0, n_slots * width)`.
///
/// Values are combined per slot with *max* by default (appropriate for
/// "worst queueing delay seen during the slot") or with explicit adders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotSeries {
    width_secs: f64,
    values: Vec<f64>,
}

impl SlotSeries {
    /// Create a series of `n_slots` slots of `width_secs` seconds each,
    /// initialized to zero.
    ///
    /// # Panics
    /// Panics unless `width_secs > 0`.
    pub fn new(n_slots: usize, width_secs: f64) -> Self {
        assert!(width_secs > 0.0, "slot width must be positive");
        Self {
            width_secs,
            values: vec![0.0; n_slots],
        }
    }

    /// Wrap an already-computed per-slot vector (e.g. a streaming fold
    /// that maintained slot maxima online) as a series.
    ///
    /// # Panics
    /// Panics unless `width_secs > 0`.
    pub fn from_values(width_secs: f64, values: Vec<f64>) -> Self {
        assert!(width_secs > 0.0, "slot width must be positive");
        Self { width_secs, values }
    }

    /// Slot width in seconds.
    pub fn width_secs(&self) -> f64 {
        self.width_secs
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The slot index containing time `t` (seconds), or `None` if out of
    /// range.
    pub fn slot_of(&self, t: f64) -> Option<usize> {
        if t < 0.0 {
            return None;
        }
        let i = (t / self.width_secs) as usize;
        if i < self.values.len() {
            Some(i)
        } else {
            None
        }
    }

    /// Start time of slot `i` in seconds.
    pub fn slot_start(&self, i: usize) -> f64 {
        i as f64 * self.width_secs
    }

    /// Record `v` at time `t`, keeping the per-slot maximum. Out-of-range
    /// times are ignored (events after the observation window).
    pub fn record_max(&mut self, t: f64, v: f64) {
        if let Some(i) = self.slot_of(t) {
            if v > self.values[i] {
                self.values[i] = v;
            }
        }
    }

    /// Add `v` into the slot containing `t` (for per-slot counts).
    pub fn record_add(&mut self, t: f64, v: f64) {
        if let Some(i) = self.slot_of(t) {
            self.values[i] += v;
        }
    }

    /// Raw per-slot values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Threshold into a boolean congestion-indicator series.
    pub fn above(&self, threshold: f64) -> Vec<bool> {
        self.values.iter().map(|&v| v > threshold).collect()
    }

    /// Downsample by taking the max of each group of `factor` slots —
    /// used when printing long queue-length series as compact figures.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn downsample_max(&self, factor: usize) -> SlotSeries {
        assert!(factor > 0, "factor must be positive");
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        SlotSeries {
            width_secs: self.width_secs * factor as f64,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_mapping_is_half_open() {
        let s = SlotSeries::new(10, 0.005);
        assert_eq!(s.slot_of(0.0), Some(0));
        assert_eq!(s.slot_of(0.0049999), Some(0));
        assert_eq!(s.slot_of(0.005), Some(1));
        assert_eq!(s.slot_of(0.0499), Some(9));
        assert_eq!(s.slot_of(0.05), None);
        assert_eq!(s.slot_of(-0.001), None);
    }

    #[test]
    fn record_max_keeps_largest() {
        let mut s = SlotSeries::new(2, 1.0);
        s.record_max(0.5, 3.0);
        s.record_max(0.7, 1.0);
        s.record_max(1.2, 2.0);
        assert_eq!(s.values(), &[3.0, 2.0]);
    }

    #[test]
    fn record_add_accumulates() {
        let mut s = SlotSeries::new(2, 1.0);
        s.record_add(0.1, 1.0);
        s.record_add(0.9, 1.0);
        s.record_add(1.5, 4.0);
        assert_eq!(s.values(), &[2.0, 4.0]);
    }

    #[test]
    fn out_of_range_records_are_ignored() {
        let mut s = SlotSeries::new(2, 1.0);
        s.record_max(5.0, 9.0);
        s.record_add(-1.0, 9.0);
        assert_eq!(s.values(), &[0.0, 0.0]);
    }

    #[test]
    fn threshold_to_bools() {
        let mut s = SlotSeries::new(3, 1.0);
        s.record_max(0.0, 0.5);
        s.record_max(1.0, 1.5);
        assert_eq!(s.above(1.0), vec![false, true, false]);
    }

    #[test]
    fn downsample_takes_group_max() {
        let mut s = SlotSeries::new(5, 1.0);
        for (i, v) in [1.0, 5.0, 2.0, 0.0, 7.0].into_iter().enumerate() {
            s.record_max(i as f64 + 0.5, v);
        }
        let d = s.downsample_max(2);
        assert_eq!(d.values(), &[5.0, 2.0, 7.0]);
        assert_eq!(d.width_secs(), 2.0);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn slot_start_times() {
        let s = SlotSeries::new(4, 0.25);
        assert_eq!(s.slot_start(0), 0.0);
        assert_eq!(s.slot_start(3), 0.75);
    }
}
