//! Probability distributions used by the workload generators and probers.
//!
//! The paper's experiments only need a handful of distributions:
//!
//! * [`Exponential`] — Poisson probe inter-send times (ZING) and exponential
//!   spacing between CBR loss episodes.
//! * [`Pareto`] — heavy-tailed file sizes for the Harpoon-like web workload.
//! * [`Geometric`] — the gap between BADABING basic experiments (a Bernoulli
//!   trial per slot is equivalent to geometric inter-experiment gaps, which
//!   is how a sender can schedule experiments without iterating empty slots).
//! * [`Uniform`] — jitter and random choices between episode durations.
//!
//! They are implemented by inverse-CDF transform over `rand`'s uniform
//! source rather than pulling in `rand_distr`, keeping the dependency
//! footprint to the pre-approved crate list.

use rand::{Rng, RngExt};

/// A sampling distribution over `f64`.
pub trait Sample {
    /// Draw one variate using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The theoretical mean of the distribution, if finite.
    fn mean(&self) -> Option<f64>;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create an exponential distribution with the given rate (events per
    /// unit time).
    ///
    /// # Panics
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn with_rate(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "rate must be positive, got {lambda}"
        );
        Self { lambda }
    }

    /// Create an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        Self { lambda: 1.0 / mean }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -ln(U)/lambda. `random::<f64>()` is in [0,1); use
        // 1-U to map to (0,1] so ln never sees zero.
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Pareto (type I) distribution with scale `xm > 0` and shape `alpha > 0`.
///
/// Used for heavy-tailed web object sizes. For `alpha <= 1` the mean is
/// infinite; the Harpoon-like generator uses `alpha` slightly above 1 (the
/// classic 1.2 for web transfers) together with a hard cap to keep single
/// experiments bounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
    /// Optional truncation: values are resampled into `[xm, cap]` by
    /// clamping (cheap and adequate for workload generation).
    cap: Option<f64>,
}

impl Pareto {
    /// Create a Pareto distribution with scale `xm` and shape `alpha`.
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(
            xm.is_finite() && xm > 0.0,
            "scale must be positive, got {xm}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "shape must be positive, got {alpha}"
        );
        Self {
            xm,
            alpha,
            cap: None,
        }
    }

    /// Clamp samples to at most `cap`.
    ///
    /// # Panics
    /// Panics if `cap < xm`.
    pub fn with_cap(mut self, cap: f64) -> Self {
        assert!(cap >= self.xm, "cap {cap} must be >= scale {}", self.xm);
        self.cap = Some(cap);
        self
    }

    /// The scale (minimum value) parameter.
    pub fn scale(&self) -> f64 {
        self.xm
    }

    /// The shape parameter.
    pub fn shape(&self) -> f64 {
        self.alpha
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let v = self.xm / (1.0 - u).powf(1.0 / self.alpha);
        match self.cap {
            Some(cap) => v.min(cap),
            None => v,
        }
    }

    fn mean(&self) -> Option<f64> {
        // Mean of the *untruncated* distribution; None when infinite.
        if self.alpha > 1.0 {
            Some(self.alpha * self.xm / (self.alpha - 1.0))
        } else {
            None
        }
    }
}

/// Geometric distribution on `{1, 2, 3, ...}`: the number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// BADABING starts a basic experiment in each time slot independently with
/// probability `p`; the gap from one experiment start to the next is
/// geometric, which lets a sender jump directly between experiment slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Create a geometric distribution with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "probability must be in (0, 1], got {p}"
        );
        Self { p }
    }

    /// The per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw the number of trials to first success (>= 1).
    pub fn sample_trials<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inverse CDF: ceil(ln(1-U)/ln(1-p)).
        let u: f64 = rng.random();
        let k = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil();
        if k < 1.0 {
            1
        } else if k >= u64::MAX as f64 {
            u64::MAX
        } else {
            k as u64
        }
    }
}

impl Sample for Geometric {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_trials(rng) as f64
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.p)
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        Self { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.random_range(self.lo..self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some((self.lo + self.hi) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::summary::Summary;

    fn sample_mean<D: Sample>(d: &D, n: usize, stream: &str) -> f64 {
        let mut rng = seeded(1234, stream);
        let mut s = Summary::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng));
        }
        s.mean()
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(10.0);
        let m = sample_mean(&d, 200_000, "exp");
        assert!((m - 10.0).abs() < 0.15, "mean was {m}");
    }

    #[test]
    fn exponential_rate_and_mean_agree() {
        let a = Exponential::with_rate(4.0);
        let b = Exponential::with_mean(0.25);
        assert!((a.rate() - b.rate()).abs() < 1e-12);
        assert_eq!(a.mean(), Some(0.25));
    }

    #[test]
    fn exponential_samples_are_positive() {
        let d = Exponential::with_rate(1000.0);
        let mut rng = seeded(5, "exp-pos");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::with_rate(0.0);
    }

    #[test]
    fn pareto_mean_matches_when_finite() {
        let d = Pareto::new(1.0, 2.5);
        let expect = 2.5 / 1.5;
        let m = sample_mean(&d, 400_000, "pareto");
        assert!((m - expect).abs() < 0.05, "mean was {m}, expected {expect}");
    }

    #[test]
    fn pareto_infinite_mean_is_none() {
        assert_eq!(Pareto::new(1.0, 1.0).mean(), None);
        assert!(Pareto::new(1.0, 1.0001).mean().is_some());
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let d = Pareto::new(2.0, 1.2).with_cap(100.0);
        let mut rng = seeded(99, "pareto-cap");
        for _ in 0..50_000 {
            let v = d.sample(&mut rng);
            assert!((2.0..=100.0).contains(&v), "sample {v} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn pareto_rejects_cap_below_scale() {
        let _ = Pareto::new(10.0, 1.5).with_cap(1.0);
    }

    #[test]
    fn geometric_mean_matches() {
        let d = Geometric::new(0.1);
        let m = sample_mean(&d, 200_000, "geom");
        assert!((m - 10.0).abs() < 0.12, "mean was {m}");
    }

    #[test]
    fn geometric_p_one_is_always_one_trial() {
        let d = Geometric::new(1.0);
        let mut rng = seeded(3, "geom1");
        for _ in 0..100 {
            assert_eq!(d.sample_trials(&mut rng), 1);
        }
    }

    #[test]
    fn geometric_samples_at_least_one() {
        let d = Geometric::new(0.9);
        let mut rng = seeded(3, "geom-min");
        for _ in 0..10_000 {
            assert!(d.sample_trials(&mut rng) >= 1);
        }
    }

    #[test]
    fn uniform_mean_matches() {
        let d = Uniform::new(-3.0, 5.0);
        let m = sample_mean(&d, 100_000, "uni");
        assert!((m - 1.0).abs() < 0.05, "mean was {m}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = Uniform::new(0.05, 0.15);
        let mut rng = seeded(11, "uni-range");
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((0.05..0.15).contains(&v));
        }
    }
}
