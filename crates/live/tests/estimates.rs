//! The online-estimator differential suite: the receiver's streaming
//! `Estimates` fold must equal `Estimates::from_log` over the fetched
//! report **bit for bit** — the FIN differential contract — on real UDP
//! loopback and through seeded FaultNet loss, where same-seed reruns
//! must also serialize byte-identically. Plus the fleet contract: a
//! fleet-scope `EstimateRequest` answers with exactly the merge of the
//! per-session counters, and the sender's heartbeat thread can poll a
//! mid-run snapshot without disturbing the run.

use badabing_core::config::BadabingConfig;
use badabing_core::estimator::Estimates;
use badabing_live::analyze::loss_log_from_records;
use badabing_live::control::{ControlClient, ControlConfig, EstimateReport};
use badabing_live::faultnet::{FaultNet, LinkFaults};
use badabing_live::persist::EstimateFile;
use badabing_live::provider::Provider;
use badabing_live::receiver::{start_server, ServerConfig};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use badabing_wire::control::{EstimateScope, SessionParams};
use badabing_wire::ProbeHeader;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

const TRAIN: u8 = 3;
const PACKET_BYTES: usize = 256;

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

fn params(n_slots: u64) -> SessionParams {
    SessionParams {
        n_slots,
        slot_ns: 5_000_000,
        probe_packets: TRAIN,
        packet_bytes: PACKET_BYTES as u32,
        p: 0.3,
        improved: true,
    }
}

fn probe(session: u32, experiment: u64, slot: u64, seq: u64, idx: u8) -> [u8; PACKET_BYTES] {
    let mut buf = [0u8; PACKET_BYTES];
    ProbeHeader {
        session,
        experiment,
        slot,
        seq,
        send_ns: 0,
        idx,
        probe_len: TRAIN,
    }
    .encode_into(&mut buf);
    buf
}

/// A hand-crafted burst covering the estimator's input space: clean
/// two-probe experiments, congested first/second slots (short trains),
/// an incomplete experiment (one slot never sent), out-of-order slots,
/// an exact duplicate datagram, and three three-probe experiments with
/// `000`, `010`, and `100` patterns. Returns the datagrams in send
/// order. Needs `n_slots >= 64`.
fn crafted_burst(session: u32) -> Vec<[u8; PACKET_BYTES]> {
    let mut out: Vec<[u8; PACKET_BYTES]> = Vec::new();
    let mut seq = 0u64;
    let mut push = |out: &mut Vec<[u8; PACKET_BYTES]>, exp: u64, slot: u64, idx: u8| {
        out.push(probe(session, exp, slot, seq, idx));
        seq += 1;
    };
    for j in 0..24u64 {
        if j == 11 {
            // Incomplete: the second slot never arrives, so the online
            // fold must never emit (and must not retain) an outcome.
            for idx in 0..TRAIN {
                push(&mut out, j, 2 * j, idx);
            }
            continue;
        }
        let slots: [u64; 2] = if j == 13 {
            // Whole-slot reordering: the later slot arrives first.
            [2 * j + 1, 2 * j]
        } else {
            [2 * j, 2 * j + 1]
        };
        for (k, &slot) in slots.iter().enumerate() {
            // Short trains (2 of 3 packets) mark the slot congested.
            let congested = (k == 0 && j % 5 == 0) || (k == 1 && j % 7 == 0);
            let sent = if congested { TRAIN - 1 } else { TRAIN };
            for idx in 0..sent {
                push(&mut out, j, slot, idx);
            }
        }
        if j == 17 {
            // An exact duplicate (same seq, same idx): dedup must keep
            // it out of the counters on both sides.
            let dup = *out.last().unwrap();
            out.push(dup);
        }
    }
    // Three-probe experiments: 000 (clean), 010, 100.
    for (e, short) in [(24u64, None), (25, Some(1usize)), (26, Some(0))] {
        for k in 0..3u64 {
            let sent = if short == Some(k as usize) {
                TRAIN - 1
            } else {
                TRAIN
            };
            for idx in 0..sent {
                push(&mut out, e, 48 + (e - 24) * 4 + k, idx);
            }
        }
    }
    out
}

/// Heartbeat behind the burst: the ack only comes back once the
/// receiver has drained every probe queued ahead of it on its socket.
fn drain(client: &ControlClient, session: u32) {
    let mut acked = false;
    for hb in 1..=8 {
        if client
            .heartbeat(session, hb, Duration::from_millis(500))
            .expect("heartbeat io")
        {
            acked = true;
            break;
        }
    }
    assert!(acked, "post-burst heartbeat never acked");
}

/// The reference fold the online estimator is tested against.
fn fold_report(records: &[badabing_wire::control::ReportRecord], p: &SessionParams) -> Estimates {
    Estimates::from_log(&loss_log_from_records(
        records,
        TRAIN,
        p.n_slots,
        p.slot_ns as f64 / 1e9,
    ))
}

#[test]
fn online_estimate_matches_report_fold_on_udp_loopback() {
    let server = start_server(ServerConfig::any(local0(), 4)).unwrap();
    let target = server.local_addr();
    let session = 0xB1;
    let client = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    let p = params(64);
    client.handshake(session, p).unwrap();

    let sock = UdpSocket::bind(local0()).unwrap();
    let burst = crafted_burst(session);
    for pkt in &burst {
        sock.send_to(pkt, target).unwrap();
    }
    drain(&client, session);

    let est = client
        .fetch_estimate(session, EstimateScope::Session)
        .expect("mid-run estimate");
    assert_eq!(est.scope, EstimateScope::Session);
    assert_eq!(est.sessions, 1);

    let (summary, records) = client
        .fetch_report(session, burst.len() as u64, burst.len() as u64)
        .expect("report fetch");
    let expected = fold_report(&records, &p);
    assert_eq!(
        est.estimates, expected,
        "online fold must equal the report fold bit for bit"
    );

    // The crafted burst's structure must survive end to end: 23
    // complete two-probe experiments (one incomplete), 3 three-probe
    // experiments, congestion present, duplicates deduplicated.
    assert_eq!(expected.basic_experiments, 23);
    assert_eq!(expected.extended_experiments, 3);
    assert_eq!(expected.experiments, 26);
    assert!(expected.z_sum > 0, "short trains must read as congested");
    assert_eq!(expected.v, 1, "the 100 pattern lands in V");
    assert_eq!(expected.outcomes_malformed, 0);
    assert_eq!(summary.duplicates, 1, "the duplicate datagram is counted");
    // Every accepted (non-duplicate) pre-FIN packet feeds the sketch.
    assert_eq!(est.delay_samples, summary.packets);

    server.stop();
}

/// One crafted session over a lossy seeded link; returns the mid-run
/// estimate, the reference fold over the fetched report, and the bytes
/// `--estimate-out` would write.
fn lossy_run(seed: u64) -> (EstimateReport, Estimates, Vec<u8>) {
    const RECV: &str = "10.0.0.1:9000";
    const PROBE_SRC: &str = "10.0.0.2:7000";
    let net = FaultNet::new(seed);
    net.set_faults(
        addr(PROBE_SRC),
        addr(RECV),
        LinkFaults::uniform_loss(0.10).with_reordering(0.25, Duration::from_millis(1)),
    );
    let provider = Provider::Fault(net.clone());
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        ..ServerConfig::any(addr(RECV), 4)
    })
    .unwrap();

    let mut cfg = ControlConfig::new(addr(RECV));
    cfg.provider = provider;
    cfg.bind = Some(addr("10.0.0.2:7001"));
    let client = ControlClient::connect(cfg, None).unwrap();
    let session = 0xFA7;
    let p = params(64);
    client.handshake(session, p).unwrap();

    let sock = net.bind(addr(PROBE_SRC)).unwrap();
    let burst = crafted_burst(session);
    for pkt in &burst {
        sock.send_to(pkt, addr(RECV)).unwrap();
    }
    drain(&client, session);

    let est = client
        .fetch_estimate(session, EstimateScope::Session)
        .expect("mid-run estimate");
    let (_, records) = client
        .fetch_report(session, burst.len() as u64, burst.len() as u64)
        .expect("report fetch");
    let expected = fold_report(&records, &p);
    server.stop();

    let path = std::env::temp_dir().join(format!(
        "badabing-estimates-{}-{seed}.json",
        std::process::id()
    ));
    EstimateFile::new(&est).save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    (est, expected, bytes)
}

#[test]
fn online_estimate_matches_report_fold_through_probe_loss_and_reruns_identically() {
    let (est_a, expected_a, bytes_a) = lossy_run(21);
    assert_eq!(
        est_a.estimates, expected_a,
        "online fold must equal the report fold through genuine loss"
    );
    // 10% packet loss must actually shape the counters: whole-packet
    // shortfalls read as congestion (seed-deterministic, so this holds
    // on every rerun or fails on every rerun).
    assert!(est_a.estimates.z_sum > 0 || est_a.estimates.s > 0 || est_a.estimates.v > 0);

    let (est_b, expected_b, bytes_b) = lossy_run(21);
    assert_eq!(est_b.estimates, expected_b);
    assert_eq!(est_a.estimates, est_b.estimates, "same seed, same counters");
    assert_eq!(
        bytes_a, bytes_b,
        "same seed must serialize a byte-identical estimate snapshot"
    );
}

#[test]
fn fleet_estimate_is_the_merge_of_session_estimates() {
    let server = start_server(ServerConfig::any(local0(), 4)).unwrap();
    let target = server.local_addr();
    let p = params(64);

    let c1 = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    c1.handshake(31, p).unwrap();
    let c2 = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    c2.handshake(32, p).unwrap();

    let sock = UdpSocket::bind(local0()).unwrap();
    for pkt in &crafted_burst(31) {
        sock.send_to(pkt, target).unwrap();
    }
    // Session 32 sees a different population: four clean experiments.
    for j in 0..4u64 {
        for k in 0..2u64 {
            for idx in 0..TRAIN {
                let pkt = probe(32, j, 2 * j + k, (j * 2 + k) * 3 + u64::from(idx), idx);
                sock.send_to(&pkt, target).unwrap();
            }
        }
    }
    drain(&c1, 31);
    drain(&c2, 32);

    let e1 = c1.fetch_estimate(31, EstimateScope::Session).unwrap();
    let e2 = c2.fetch_estimate(32, EstimateScope::Session).unwrap();
    let fleet = c1.fetch_estimate(31, EstimateScope::Fleet).unwrap();

    assert_eq!(fleet.scope, EstimateScope::Fleet);
    assert_eq!(fleet.sessions, 2);
    let mut merged = e1.estimates;
    merged.merge(&e2.estimates);
    assert_eq!(
        fleet.estimates, merged,
        "fleet counters must be exactly the merge of the session counters"
    );
    assert_eq!(fleet.delay_samples, e1.delay_samples + e2.delay_samples);
    assert_eq!(e2.estimates.experiments, 4);
    assert_eq!(e2.estimates.z_sum, 0, "clean session saw no congestion");

    server.stop();
}

#[test]
fn sender_heartbeat_thread_polls_mid_run_estimates() {
    const RECV: &str = "10.0.0.1:9000";
    let net = FaultNet::new(3);
    let provider = Provider::Fault(net.clone());
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::any(addr(RECV), 4)
    })
    .unwrap();

    let tool = BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    };
    let mut control = ControlConfig::new(addr(RECV));
    control.bind = Some(addr("10.0.0.2:7001"));
    control.drain = Duration::from_millis(100);
    let metrics = Arc::new(Registry::new("estimates-midrun"));
    let cfg = SenderConfig {
        tool,
        bind: addr("10.0.0.2:7000"),
        control: Some(control),
        provider,
        metrics: Some(metrics.clone()),
        estimate_every: Some(Duration::from_millis(200)),
        ..SenderConfig::new(tool, 400, addr(RECV), 0xE5)
    };
    let outcome = run_sender(cfg, seeded(3, "estimates-midrun")).unwrap();
    assert!(outcome.completed, "{:?}", outcome.diagnostics);

    let est = outcome
        .mid_run_estimate
        .expect("a 2 s run polled every 200 ms must capture a snapshot");
    assert_eq!(est.scope, EstimateScope::Session);
    assert_eq!(est.sessions, 1);
    assert!(
        est.estimates.experiments > 0,
        "by the last poll some experiments must have assembled"
    );
    assert!(metrics.counter("estimates_fetched").get() > 0);

    // The mid-run snapshot can never claim more experiments than the
    // final report holds.
    let records = outcome.receiver_log.expect("report fetched").to_records();
    let p = params(400);
    let fin = fold_report(&records, &p);
    assert!(est.estimates.experiments <= fin.experiments);

    server.stop();
}
