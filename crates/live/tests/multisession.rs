//! Multi-session receiver tests: one server process serving many
//! concurrent sender sessions over loopback.
//!
//! The stress test is the acceptance gate for the session registry:
//! eight senders with distinct sessions, schedules, and run lengths all
//! talk to the same receiver socket; every fetched report must contain
//! exactly its own probes (no cross-session contamination), and sessions
//! completing at different times must not disturb each other or the
//! serve loop. The smaller tests pin the registry edges: capacity
//! rejection, idle reaping freeing capacity, and unknown-session probes.

use badabing_core::config::BadabingConfig;
use badabing_live::control::{ControlClient, ControlConfig, ControlError};
use badabing_live::receiver::{start_server, ServerConfig, SessionEnd};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use badabing_wire::control::{RejectReason, SessionParams};
use badabing_wire::ProbeHeader;
use std::collections::BTreeSet;
use std::net::{SocketAddr, UdpSocket};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn fast_tool() -> BadabingConfig {
    BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    }
}

fn params() -> SessionParams {
    SessionParams {
        n_slots: 100,
        slot_ns: 5_000_000,
        probe_packets: 3,
        packet_bytes: 600,
        p: 0.3,
        improved: false,
    }
}

/// Where CI picks up the per-session receiver metrics artifact.
const METRICS_ARTIFACT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/metrics/live_multisession.json"
);

#[test]
fn eight_concurrent_senders_share_one_receiver() {
    const SENDERS: u32 = 8;
    let metrics = Arc::new(Registry::new("live_multisession"));
    let server = start_server(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(local0(), 16)
    })
    .unwrap();
    let target = server.local_addr();

    // Eight sessions with distinct seeds (distinct schedules) and
    // staggered run lengths, so completions land at different times
    // while other sessions are still probing.
    let senders: Vec<_> = (0..SENDERS)
        .map(|i| {
            let session = 101 + i;
            let n_slots = 240 + 40 * u64::from(i); // 1.2 s … 2.6 s
            let tool = fast_tool();
            let mut control = ControlConfig::new(target);
            control.drain = Duration::from_millis(100);
            let cfg = SenderConfig {
                tool,
                control: Some(control),
                ..SenderConfig::new(tool, n_slots, target, session)
            };
            std::thread::spawn(move || run_sender(cfg, seeded(u64::from(i), "multi")))
        })
        .collect();

    let outcomes: Vec<_> = senders
        .into_iter()
        .map(|t| t.join().unwrap().unwrap())
        .collect();

    // Completing all eight sessions must not have terminated the server.
    assert!(
        !server.is_finished(),
        "an any-policy server must outlive session completions"
    );

    for outcome in &outcomes {
        let session = outcome.manifest.session;
        assert!(outcome.completed, "session {session} did not complete");
        assert_eq!(
            outcome.diagnostics,
            Vec::<String>::new(),
            "session {session}"
        );
        let fetched = outcome
            .receiver_log
            .as_ref()
            .unwrap_or_else(|| panic!("session {session} fetched no report"));

        // No cross-session contamination: the fetched report's key set
        // is exactly this sender's manifest (clean loopback loses
        // nothing, so the sets must match bidirectionally), and the
        // record count matches the manifest's probe count.
        let sent_keys: BTreeSet<(u64, u64)> = outcome
            .manifest
            .sent
            .iter()
            .map(|p| (p.experiment, p.slot))
            .collect();
        let fetched_keys: BTreeSet<(u64, u64)> = fetched.arrivals.keys().copied().collect();
        assert_eq!(
            fetched_keys, sent_keys,
            "session {session}: fetched records differ from its own manifest"
        );
        assert_eq!(fetched.arrivals.len(), outcome.manifest.sent.len());
        assert_eq!(
            fetched.packets, outcome.manifest.packets_sent,
            "session {session}: packet accounting disagrees"
        );
        assert_eq!(fetched.duplicates, 0);

        // Per-session metrics carry the same accounting.
        assert_eq!(
            metrics
                .counter(&format!("session_{session}_packets_accepted"))
                .get(),
            outcome.manifest.packets_sent,
            "session {session} metrics"
        );
    }

    // Distinct schedules actually exercised multiplexing: at least two
    // senders must differ in what they sent.
    let distinct: BTreeSet<usize> = outcomes.iter().map(|o| o.manifest.sent.len()).collect();
    assert!(distinct.len() > 1, "staggered runs should differ in size");

    // The closing ReportAck is fire-and-forget on the sender side, so
    // the last session's completion can still be in flight when its
    // sender returns; give the server a bounded moment to process it.
    let deadline = Instant::now() + Duration::from_secs(3);
    while metrics.counter("sessions_completed").get() < u64::from(SENDERS)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }

    let report = server.stop();
    assert_eq!(report.sessions.len(), SENDERS as usize);
    assert!(report
        .sessions
        .iter()
        .all(|o| o.end == SessionEnd::Completed));
    let ids: BTreeSet<u32> = report.sessions.iter().map(|o| o.session).collect();
    assert_eq!(ids, (101..101 + SENDERS).collect::<BTreeSet<u32>>());
    assert_eq!(report.rejected, 0, "no stray traffic in this test");
    assert_eq!(report.syns_rejected, 0);
    assert_eq!(metrics.counter("sessions_opened").get(), u64::from(SENDERS));
    assert_eq!(
        metrics.counter("sessions_completed").get(),
        u64::from(SENDERS)
    );

    // Publish the per-session receiver metrics for the CI artifact.
    metrics
        .save(Path::new(METRICS_ARTIFACT))
        .expect("write metrics artifact");
}

#[test]
fn syns_past_capacity_are_rejected_fast() {
    let server = start_server(ServerConfig::any(local0(), 1)).unwrap();
    let addr = server.local_addr();

    let first = ControlClient::connect(ControlConfig::new(addr), None).unwrap();
    first
        .handshake(1, params())
        .expect("first session admitted");

    // The registry is full: the second SYN must fail fast with an
    // explicit capacity NACK, not burn the whole retry budget.
    let second = ControlClient::connect(ControlConfig::new(addr), None).unwrap();
    let started = Instant::now();
    let err = second.handshake(2, params()).unwrap_err();
    assert!(
        matches!(
            err,
            ControlError::Rejected {
                reason: RejectReason::Capacity
            }
        ),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "NACK must short-circuit the backoff schedule"
    );

    // A SYN retransmit for the *admitted* session stays idempotent.
    first.handshake(1, params()).expect("re-SYN is re-acked");

    let report = server.stop();
    assert_eq!(report.syns_rejected, 1);
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].session, 1);
    assert_eq!(report.sessions[0].end, SessionEnd::Stopped);
}

#[test]
fn idle_reaping_frees_capacity_without_killing_the_server() {
    let server = start_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::any(local0(), 1)
    })
    .unwrap();
    let addr = server.local_addr();

    let first = ControlClient::connect(ControlConfig::new(addr), None).unwrap();
    first
        .handshake(7, params())
        .expect("first session admitted");

    // Go silent past the idle timeout: the session is reaped, the
    // server keeps running, and its capacity slot opens up.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        !server.is_finished(),
        "reaping a session must not stop the serve loop"
    );

    let second = ControlClient::connect(ControlConfig::new(addr), None).unwrap();
    second
        .handshake(8, params())
        .expect("capacity freed by the idle reap");

    let report = server.stop();
    assert_eq!(report.sessions.len(), 2);
    let by_id = |id: u32| {
        report
            .sessions
            .iter()
            .find(|o| o.session == id)
            .unwrap_or_else(|| panic!("session {id} missing from report"))
    };
    assert_eq!(by_id(7).end, SessionEnd::IdleTimeout);
    assert_eq!(by_id(8).end, SessionEnd::Stopped);
}

#[test]
fn probes_for_unregistered_sessions_are_rejected() {
    let server = start_server(ServerConfig::any(local0(), 4)).unwrap();
    let addr = server.local_addr();

    let client = ControlClient::connect(ControlConfig::new(addr), None).unwrap();
    client.handshake(42, params()).expect("session admitted");

    let sock = UdpSocket::bind(local0()).unwrap();
    let probe = |session: u32, seq: u64| ProbeHeader {
        session,
        experiment: 0,
        slot: seq,
        seq,
        send_ns: 0,
        idx: 0,
        probe_len: 1,
    };
    // Registered session: accepted. Unregistered: rejected — under the
    // any policy, probes do not open sessions (the SYN is the only
    // door in), so a stray or stale sender cannot resurrect state.
    sock.send_to(&probe(42, 0).encode(64), addr).unwrap();
    sock.send_to(&probe(42, 1).encode(64), addr).unwrap();
    sock.send_to(&probe(999, 0).encode(64), addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let report = server.stop();
    assert_eq!(report.rejected, 1, "unknown-session probe rejected");
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].session, 42);
    assert_eq!(report.sessions[0].log.packets, 2);
}
