//! End-to-end live runs on loopback: sender → (emulator | impairment
//! proxy) → receiver, analyzed through the shared `badabing-core`
//! pipeline, plus the two-process control-plane scenarios (handshake
//! under synthetic control loss, receiver death mid-run).
//!
//! These tests exercise real sockets and real timers, so the assertions
//! are deliberately coarse (presence of loss, sane magnitudes) rather
//! than exact estimates — the precise statistical checks live in the
//! deterministic simulator tests.

use badabing_core::config::BadabingConfig;
use badabing_live::analyze::analyze_run;
use badabing_live::control::ControlConfig;
use badabing_live::emulator::{Emulator, EmulatorConfig};
use badabing_live::receiver::{start_receiver, ReceiverConfig};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_stats::rng::seeded;
use rand::RngExt;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn fast_tool() -> BadabingConfig {
    BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    }
}

/// A bidirectional UDP proxy that drops each datagram (either direction)
/// with probability `loss`. The first peer to send through it is treated
/// as the client; datagrams from anyone else flow back to that client.
/// The thread leaks (it polls on a read timeout) — fine for a test
/// process.
fn lossy_proxy(target: SocketAddr, loss: f64, seed: u64) -> SocketAddr {
    let sock = UdpSocket::bind(local0()).unwrap();
    let addr = sock.local_addr().unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    std::thread::spawn(move || {
        let mut rng = seeded(seed, "lossy-proxy");
        let mut client: Option<SocketAddr> = None;
        let mut buf = [0u8; 4096];
        loop {
            let Ok((len, src)) = sock.recv_from(&mut buf) else {
                continue;
            };
            if rng.random_bool(loss) {
                continue;
            }
            if src == target {
                if let Some(c) = client {
                    let _ = sock.send_to(&buf[..len], c);
                }
            } else {
                client = Some(src);
                let _ = sock.send_to(&buf[..len], target);
            }
        }
    });
    addr
}

/// A one-way proxy that duplicates and reorders probe datagrams on a
/// deterministic pattern: every 7th datagram is held back one step
/// (reordering with its successor) and every 5th is sent twice.
fn dup_reorder_proxy(target: SocketAddr) -> SocketAddr {
    let sock = UdpSocket::bind(local0()).unwrap();
    let addr = sock.local_addr().unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    std::thread::spawn(move || {
        let mut held: Option<Vec<u8>> = None;
        let mut i = 0u64;
        let mut buf = [0u8; 4096];
        loop {
            let Ok((len, _)) = sock.recv_from(&mut buf) else {
                continue;
            };
            let data = buf[..len].to_vec();
            i += 1;
            if i % 7 == 3 && held.is_none() {
                held = Some(data);
                continue;
            }
            let _ = sock.send_to(&data, target);
            if i.is_multiple_of(5) {
                let _ = sock.send_to(&data, target); // duplicate
            }
            if let Some(h) = held.take() {
                let _ = sock.send_to(&h, target); // released late: reorder
            }
        }
    });
    addr
}

#[test]
fn clean_path_reports_no_congestion() {
    let session = 0xA1;
    let receiver = start_receiver(ReceiverConfig::new(local0(), session)).unwrap();
    let tool = fast_tool();
    let cfg = SenderConfig {
        tool,
        ..SenderConfig::new(tool, 600 /* 3 s */, receiver.local_addr(), session)
    };
    let outcome = run_sender(cfg, seeded(1, "clean")).unwrap();
    assert!(outcome.completed);
    std::thread::sleep(Duration::from_millis(300));
    let log = receiver.stop();
    assert_eq!(log.rejected, 0);
    assert_eq!(log.duplicates, 0);
    let analysis = analyze_run(&tool, &outcome.manifest, &log);
    assert_eq!(
        analysis.packets_lost, 0,
        "loopback without emulator loses nothing"
    );
    assert_eq!(analysis.frequency(), Some(0.0));
    assert!(analysis.validation.passes(0.25));
    assert!(
        analysis.log.len() > 200,
        "experiments: {}",
        analysis.log.len()
    );
}

#[test]
fn emulated_bottleneck_produces_loss_episodes() {
    let session = 0xB2;
    let receiver = start_receiver(ReceiverConfig::new(local0(), session)).unwrap();
    let emu_cfg = EmulatorConfig {
        rate_bps: 10_000_000,
        buffer_bytes: 125_000,      // 100 ms at 10 Mb/s
        episode_mean_gap_secs: 1.0, // dense episodes for a short test
        episode_loss_secs: 0.120,
        burst_factor: 4.0,
        ..EmulatorConfig::loopback_default(local0(), receiver.local_addr())
    };
    let emulator = Emulator::start(emu_cfg, seeded(2, "emu")).unwrap();
    let tool = fast_tool();
    let cfg = SenderConfig {
        tool,
        ..SenderConfig::new(tool, 1_600 /* 8 s */, emulator.local_addr(), session)
    };
    let outcome = run_sender(cfg, seeded(3, "probe")).unwrap();
    std::thread::sleep(Duration::from_millis(500));
    let stats = emulator.stop();
    let log = receiver.stop();
    assert!(stats.episodes >= 2, "scripted episodes: {}", stats.episodes);
    assert!(stats.dropped > 0, "emulator dropped nothing");

    let analysis = analyze_run(&tool, &outcome.manifest, &log);
    assert!(analysis.packets_lost > 0);
    let f = analysis.frequency().expect("nonempty run");
    assert!(f > 0.0, "estimated frequency should be positive");
    // Sanity ceiling: episodes cover well under half the run.
    assert!(f < 0.5, "estimated frequency {f} implausibly high");
    if let Some(d) = analysis.duration_secs() {
        assert!(d > 0.0 && d < 1.0, "duration estimate {d} out of range");
    }
}

#[test]
fn control_plane_runs_the_full_session() {
    // The two-process workflow end to end: handshake, heartbeats, FIN,
    // chunked report retrieval. The receiver exits on its own once the
    // sender acknowledges the full report — no out-of-band coordination.
    let session = 0xC3;
    let receiver = start_receiver(ReceiverConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        ..ReceiverConfig::new(local0(), session)
    })
    .unwrap();
    let tool = fast_tool();
    let mut control = ControlConfig::new(receiver.local_addr());
    control.drain = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        control: Some(control),
        ..SenderConfig::new(tool, 400 /* 2 s */, receiver.local_addr(), session)
    };
    let outcome = run_sender(cfg, seeded(4, "ctl")).unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.diagnostics, Vec::<String>::new());
    let fetched = outcome.receiver_log.expect("control plane fetches the log");
    assert!(fetched.handshake.is_none(), "summary carries no params");

    // Session-complete exit: join() must return promptly, well before
    // the 10 s idle watchdog.
    let started = Instant::now();
    let local = receiver.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "receiver should exit via ReportAck, not the watchdog"
    );
    assert_eq!(local.handshake.map(|p| p.n_slots), Some(400));

    // The fetched report and the receiver's own log agree.
    assert_eq!(fetched.packets, local.packets);
    assert_eq!(fetched.duplicates, local.duplicates);
    assert_eq!(fetched.arrivals.len(), local.arrivals.len());
    for (key, rec) in &local.arrivals {
        let f = fetched
            .arrivals
            .get(key)
            .expect("record present in fetched report");
        assert_eq!(f.received, rec.received);
    }

    // And analysis off the *fetched* log sees the clean path.
    let analysis = analyze_run(&tool, &outcome.manifest, &fetched);
    assert_eq!(analysis.packets_lost, 0);
    assert_eq!(analysis.frequency(), Some(0.0));
}

#[test]
fn handshake_survives_heavy_control_loss() {
    // 30% loss in each direction on the control channel (probes run
    // clean). Per-request failure odds with 12 attempts are ~1e-4, so
    // backoff retries must carry the handshake, FIN, and every report
    // chunk through. Heartbeats cross the same lossy path — give them a
    // deep miss budget so liveness noise cannot abort the run.
    let session = 0xD4;
    let receiver = start_receiver(ReceiverConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        ..ReceiverConfig::new(local0(), session)
    })
    .unwrap();
    let proxy = lossy_proxy(receiver.local_addr(), 0.30, 77);
    let tool = fast_tool();
    let mut control = ControlConfig::new(proxy);
    control.heartbeat_misses = 10;
    control.drain = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        control: Some(control),
        ..SenderConfig::new(tool, 400 /* 2 s */, receiver.local_addr(), session)
    };
    let outcome = run_sender(cfg, seeded(5, "lossy-ctl")).unwrap();
    assert!(outcome.completed, "diagnostics: {:?}", outcome.diagnostics);
    let fetched = outcome
        .receiver_log
        .expect("report retrieval survives 30% loss");
    assert!(fetched.packets > 0);
    let analysis = analyze_run(&tool, &outcome.manifest, &fetched);
    assert_eq!(analysis.packets_lost, 0, "probe path was clean");
    let _ = receiver.stop();
}

#[test]
fn receiver_death_mid_run_degrades_to_partial_manifest() {
    let session = 0xE5;
    let receiver = start_receiver(ReceiverConfig::new(local0(), session)).unwrap();
    let target = receiver.local_addr();
    let tool = fast_tool();
    let mut control = ControlConfig::new(target);
    control.heartbeat_interval = Duration::from_millis(100);
    control.heartbeat_misses = 3;
    let cfg = SenderConfig {
        tool,
        control: Some(control),
        ..SenderConfig::new(tool, 4_000 /* nominally 20 s */, target, session)
    };
    let sender = std::thread::spawn(move || run_sender(cfg, seeded(6, "death")));

    // Let the run establish itself, then kill the receiver.
    std::thread::sleep(Duration::from_millis(700));
    let _ = receiver.stop();
    let killed_at = Instant::now();

    let outcome = sender.join().unwrap().unwrap();
    let detected_in = killed_at.elapsed();
    // Watchdog budget: 3 misses × 100 ms heartbeats plus scheduling
    // slack — nowhere near the 19 s of schedule that remained.
    assert!(
        detected_in < Duration::from_secs(5),
        "sender took {detected_in:?} to abort after receiver death"
    );
    assert!(!outcome.completed, "run must be marked incomplete");
    assert!(
        outcome.receiver_log.is_none(),
        "no report from a dead receiver"
    );
    assert!(
        !outcome.diagnostics.is_empty(),
        "a partial run must carry a diagnostic"
    );
    assert!(
        outcome.diagnostics[0].contains("partial"),
        "{:?}",
        outcome.diagnostics
    );
    let manifest = &outcome.manifest;
    assert!(
        !manifest.sent.is_empty(),
        "probes before the kill are retained"
    );
    // The schedule had ~20 s to go; a completed run would have sent far
    // more probes than fit in the first ~1.5 s.
    let max_slot = manifest.sent.iter().map(|s| s.slot).max().unwrap();
    assert!(
        max_slot < 1_500,
        "sender kept probing after abort (slot {max_slot})"
    );
}

#[test]
fn report_survives_idle_timeout_shorter_than_drain() {
    // Regression: the sender used to stop its heartbeat thread *before*
    // the drain sleep, so with a receiver idle timeout shorter than the
    // drain the receiver's watchdog reclaimed the session before FIN
    // arrived and an otherwise-complete report was lost. Liveness must
    // keep flowing until report retrieval starts.
    let session = 0xA7;
    let receiver = start_receiver(ReceiverConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..ReceiverConfig::new(local0(), session)
    })
    .unwrap();
    let tool = fast_tool();
    let mut control = ControlConfig::new(receiver.local_addr());
    control.drain = Duration::from_millis(900); // 3× the idle timeout
    control.heartbeat_interval = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        control: Some(control),
        ..SenderConfig::new(tool, 200 /* 1 s */, receiver.local_addr(), session)
    };
    let outcome = run_sender(cfg, seeded(8, "drain")).unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.diagnostics, Vec::<String>::new());
    let fetched = outcome
        .receiver_log
        .expect("heartbeats must keep the session alive through the drain wait");
    assert_eq!(fetched.packets, outcome.manifest.packets_sent);

    // The receiver exits via the closing ReportAck, not its watchdog.
    let started = Instant::now();
    let local = receiver.join();
    assert!(started.elapsed() < Duration::from_secs(5));
    assert_eq!(local.packets, fetched.packets);
}

#[test]
fn zero_record_session_completes_cleanly() {
    // Every probe vanishes (sent into a socket nobody reads); only the
    // control plane reaches the receiver. FIN → FinAck(total_chunks = 0)
    // → closing ReportAck must complete the session with an empty record
    // set — the `chunk >= total_chunks` completion edge at zero chunks —
    // rather than wedging the receiver until its watchdog.
    let session = 0xB8;
    let receiver = start_receiver(ReceiverConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        ..ReceiverConfig::new(local0(), session)
    })
    .unwrap();
    let blackhole = UdpSocket::bind(local0()).unwrap(); // bound, never read
    let tool = fast_tool();
    let mut control = ControlConfig::new(receiver.local_addr());
    control.drain = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        control: Some(control),
        ..SenderConfig::new(
            tool,
            200, /* 1 s */
            blackhole.local_addr().unwrap(),
            session,
        )
    };
    let outcome = run_sender(cfg, seeded(9, "blackhole")).unwrap();
    assert!(outcome.completed, "diagnostics: {:?}", outcome.diagnostics);
    let fetched = outcome
        .receiver_log
        .expect("an empty report must still be retrievable");
    assert_eq!(fetched.packets, 0);
    assert!(fetched.arrivals.is_empty(), "no probe ever arrived");

    let started = Instant::now();
    let local = receiver.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "receiver must exit via the closing ReportAck, not the watchdog"
    );
    assert!(local.arrivals.is_empty());

    // Loss accounting off the manifest alone: everything sent was lost.
    let analysis = analyze_run(&tool, &outcome.manifest, &fetched);
    assert_eq!(analysis.packets_lost, outcome.manifest.packets_sent);
}

#[test]
fn duplicated_and_reordered_datagrams_leave_loss_accounting_unchanged() {
    // The impairment proxy duplicates every 5th datagram and reorders
    // every 7th with its successor, but drops nothing. Dedup by
    // (seq, idx) must keep the loss accounting identical to a clean
    // path: zero loss, zero estimated frequency.
    let session = 0xF6;
    let receiver = start_receiver(ReceiverConfig::new(local0(), session)).unwrap();
    let proxy = dup_reorder_proxy(receiver.local_addr());
    let tool = fast_tool();
    let cfg = SenderConfig {
        tool,
        ..SenderConfig::new(tool, 600 /* 3 s */, proxy, session)
    };
    let outcome = run_sender(cfg, seeded(7, "dupes")).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let log = receiver.stop();

    assert!(log.duplicates > 0, "proxy injected duplicates");
    assert_eq!(
        log.packets, outcome.manifest.packets_sent,
        "every distinct packet arrived"
    );
    // No arrival record exceeds its probe length despite the duplicates.
    for rec in log.arrivals.values() {
        assert!(rec.received <= tool.probe_packets);
    }
    let analysis = analyze_run(&tool, &outcome.manifest, &log);
    assert_eq!(
        analysis.packets_lost, 0,
        "duplicates/reordering must not be mistaken for (or mask) loss"
    );
    assert_eq!(analysis.frequency(), Some(0.0));
}
