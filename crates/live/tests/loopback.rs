//! End-to-end live run on loopback: sender → bottleneck emulator →
//! receiver, analyzed through the shared `badabing-core` pipeline.
//!
//! These tests exercise real sockets and real timers, so the assertions
//! are deliberately coarse (presence of loss, sane magnitudes) rather
//! than exact estimates — the precise statistical checks live in the
//! deterministic simulator tests.

use badabing_core::config::BadabingConfig;
use badabing_live::analyze::analyze_run;
use badabing_live::emulator::{Emulator, EmulatorConfig};
use badabing_live::receiver::{start_receiver, ReceiverConfig};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_stats::rng::seeded;
use std::net::SocketAddr;

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn clean_path_reports_no_congestion() {
    let session = 0xA1;
    let receiver = start_receiver(ReceiverConfig { bind: local0(), session }).await.unwrap();
    let tool = BadabingConfig { slot_secs: 0.005, ..BadabingConfig::paper_default(0.5) };
    let cfg = SenderConfig {
        tool,
        n_slots: 600, // 3 s
        target: receiver.local_addr(),
        bind: local0(),
        session,
    };
    let manifest = run_sender(cfg, seeded(1, "clean")).await.unwrap();
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    let log = receiver.stop().await;
    assert_eq!(log.rejected, 0);
    let analysis = analyze_run(&tool, &manifest, &log);
    assert_eq!(analysis.packets_lost, 0, "loopback without emulator loses nothing");
    assert_eq!(analysis.frequency(), Some(0.0));
    assert!(analysis.validation.passes(0.25));
    assert!(analysis.log.len() > 200, "experiments: {}", analysis.log.len());
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn emulated_bottleneck_produces_loss_episodes() {
    let session = 0xB2;
    let receiver = start_receiver(ReceiverConfig { bind: local0(), session }).await.unwrap();
    let emu_cfg = EmulatorConfig {
        rate_bps: 10_000_000,
        buffer_bytes: 125_000,          // 100 ms at 10 Mb/s
        episode_mean_gap_secs: 1.0,     // dense episodes for a short test
        episode_loss_secs: 0.120,
        burst_factor: 4.0,
        bind: local0(),
        target: receiver.local_addr(),
    };
    let emulator = Emulator::start(emu_cfg, seeded(2, "emu")).await.unwrap();
    let tool = BadabingConfig { slot_secs: 0.005, ..BadabingConfig::paper_default(0.5) };
    let cfg = SenderConfig {
        tool,
        n_slots: 1_600, // 8 s
        target: emulator.local_addr(),
        bind: local0(),
        session,
    };
    let manifest = run_sender(cfg, seeded(3, "probe")).await.unwrap();
    tokio::time::sleep(std::time::Duration::from_millis(500)).await;
    let stats = emulator.stop().await;
    let log = receiver.stop().await;
    assert!(stats.episodes >= 2, "scripted episodes: {}", stats.episodes);
    assert!(stats.dropped > 0, "emulator dropped nothing");

    let analysis = analyze_run(&tool, &manifest, &log);
    assert!(analysis.packets_lost > 0);
    let f = analysis.frequency().expect("nonempty run");
    assert!(f > 0.0, "estimated frequency should be positive");
    // Sanity ceiling: episodes cover well under half the run.
    assert!(f < 0.5, "estimated frequency {f} implausibly high");
    if let Some(d) = analysis.duration_secs() {
        assert!(d > 0.0 && d < 1.0, "duration estimate {d} out of range");
    }
}
