//! The FaultNet-backed integration suite: full control-plane sessions
//! (handshake, heartbeats, probe trains, FIN + chunked report fetch)
//! over the seeded in-process virtual network — no real sockets, no
//! real timers, so the whole suite runs in milliseconds of wall time
//! and every fault scenario reproduces from its seed.
//!
//! The real-UDP variants of these scenarios survive as smoke tests in
//! `loopback.rs` / `multisession.rs`; this file is the required CI
//! gate. The acceptance test pins the determinism contract: two runs
//! with the same seed produce *byte-identical* manifests and report
//! chunks, even with 30% control-plane loss and reordering.

use badabing_core::config::BadabingConfig;
use badabing_live::control::{ControlClient, ControlConfig, ControlError};
use badabing_live::faultnet::{FaultNet, LinkFaults};
use badabing_live::persist::ManifestFile;
use badabing_live::provider::Provider;
use badabing_live::receiver::{start_server, ReceiverLog, ServerConfig};
use badabing_live::sender::{run_sender, SenderConfig, SenderOutcome};
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use badabing_wire::control::{
    chunk_count, encode_report_chunk_into, RejectReason, SessionParams, MAX_CONTROL_BYTES,
    RECORDS_PER_CHUNK,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

/// Fixed virtual topology so fault links can be configured up front.
const RECV: &str = "10.0.0.1:9000";
const PROBE_SRC: &str = "10.0.0.2:7000";
const CTL_SRC: &str = "10.0.0.2:7001";
const SESSION: u32 = 0xFA;

fn fast_tool() -> BadabingConfig {
    BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    }
}

struct Run {
    outcome: SenderOutcome,
    /// Real elapsed time of the sender run (virtual runs must be fast).
    wall: Duration,
    metrics: Arc<Registry>,
}

/// One complete control-plane session over a fresh `FaultNet` seeded
/// with `seed`. `configure` installs link faults before any traffic.
fn run_session(seed: u64, n_slots: u64, configure: fn(&Arc<FaultNet>)) -> Run {
    let net = FaultNet::new(seed);
    configure(&net);
    let provider = Provider::Fault(net.clone());
    let metrics = Arc::new(Registry::new("faultnet-run"));
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        idle_timeout: Some(Duration::from_secs(10)),
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(addr(RECV), 4)
    })
    .unwrap();
    let tool = fast_tool();
    let mut control = ControlConfig::new(addr(RECV));
    control.bind = Some(addr(CTL_SRC));
    control.drain = Duration::from_millis(100);
    // Lossy-link scenarios miss isolated heartbeats routinely; only a
    // long silent streak should abort.
    control.heartbeat_misses = 10;
    let cfg = SenderConfig {
        tool,
        bind: addr(PROBE_SRC),
        control: Some(control),
        provider,
        ..SenderConfig::new(tool, n_slots, addr(RECV), SESSION)
    };
    let started = Instant::now();
    let outcome = run_sender(cfg, seeded(seed, "faultnet-run")).unwrap();
    let wall = started.elapsed();
    server.stop();
    Run {
        outcome,
        wall,
        metrics,
    }
}

/// The exact wire bytes of every report chunk the receiver serves for
/// this log (same encoder, same deterministic record order).
fn report_chunk_bytes(log: &ReceiverLog) -> Vec<Vec<u8>> {
    let records = log.to_records();
    let total = chunk_count(records.len());
    records
        .chunks(RECORDS_PER_CHUNK)
        .enumerate()
        .map(|(i, window)| {
            let mut buf = [0u8; MAX_CONTROL_BYTES];
            let n = encode_report_chunk_into(SESSION, i as u32, total, window, &mut buf);
            buf[..n].to_vec()
        })
        .collect()
}

fn no_faults(_net: &Arc<FaultNet>) {}

#[test]
fn full_session_completes_on_a_clean_virtual_net() {
    let run = run_session(1, 400, no_faults);
    let outcome = run.outcome;
    assert!(outcome.completed, "{:?}", outcome.diagnostics);
    assert!(outcome.diagnostics.is_empty(), "{:?}", outcome.diagnostics);
    let log = outcome.receiver_log.expect("control plane fetches report");
    let manifest = outcome.manifest;
    assert!(!manifest.sent.is_empty());
    assert_eq!(manifest.packets_refused, 0);
    // Clean links lose nothing and duplicate nothing.
    assert_eq!(log.packets, manifest.packets_sent);
    assert_eq!(log.duplicates, 0);
    assert_eq!(log.arrivals.len(), manifest.sent.len());
    for probe in &manifest.sent {
        let rec = log
            .arrivals
            .get(&(probe.experiment, probe.slot))
            .unwrap_or_else(|| panic!("probe ({}, {}) missing", probe.experiment, probe.slot));
        assert_eq!(rec.received, probe.packets);
    }
    // 2 s of virtual schedule must not cost 2 s of wall time.
    assert!(
        run.wall < Duration::from_secs(1),
        "virtual run took {:?} of wall time",
        run.wall
    );
}

/// Both control-plane directions lose 30% of datagrams and reorder a
/// quarter of the rest.
fn lossy_control(net: &Arc<FaultNet>) {
    let lossy = LinkFaults::uniform_loss(0.30).with_reordering(0.25, Duration::from_millis(2));
    net.set_faults(addr(CTL_SRC), addr(RECV), lossy.clone());
    net.set_faults(addr(RECV), addr(CTL_SRC), lossy);
}

/// The acceptance gate: the full control plane completes through 30%
/// control loss + reordering in well under a second of wall time, and
/// two runs from the same seed are byte-identical — manifests and
/// report chunks both.
#[test]
fn lossy_control_plane_completes_fast_and_deterministically() {
    let a = run_session(11, 400, lossy_control);
    let b = run_session(11, 400, lossy_control);

    for (name, run) in [("first", &a), ("second", &b)] {
        assert!(
            run.outcome.completed,
            "{name} run aborted: {:?}",
            run.outcome.diagnostics
        );
        assert!(
            run.outcome.receiver_log.is_some(),
            "{name} run lost its report: {:?}",
            run.outcome.diagnostics
        );
        assert!(
            run.wall < Duration::from_secs(1),
            "{name} run took {:?} of wall time",
            run.wall
        );
    }

    // Byte-identical manifests, asserted on the serialized files the
    // tool actually writes.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("badabing-faultnet-{pid}-a.json"));
    let path_b = dir.join(format!("badabing-faultnet-{pid}-b.json"));
    ManifestFile::new(fast_tool(), &a.outcome.manifest)
        .save(&path_a)
        .unwrap();
    ManifestFile::new(fast_tool(), &b.outcome.manifest)
        .save(&path_b)
        .unwrap();
    let bytes_a = std::fs::read(&path_a).unwrap();
    let bytes_b = std::fs::read(&path_b).unwrap();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "same seed must give identical manifests");

    // Byte-identical report chunks (the exact datagrams the receiver
    // serves for the FIN-frozen snapshot).
    let chunks_a = report_chunk_bytes(a.outcome.receiver_log.as_ref().unwrap());
    let chunks_b = report_chunk_bytes(b.outcome.receiver_log.as_ref().unwrap());
    assert!(!chunks_a.is_empty(), "run produced an empty report");
    assert_eq!(
        chunks_a, chunks_b,
        "same seed must give identical report chunks"
    );
}

/// Gilbert–Elliott loss bursts, duplication, and reordering on the
/// probe path only.
fn faulty_probe_link(net: &Arc<FaultNet>) {
    net.set_faults(
        addr(PROBE_SRC),
        addr(RECV),
        LinkFaults::gilbert_elliott(0.05, 0.30, 1.0)
            .with_duplication(0.10)
            .with_reordering(0.20, Duration::from_millis(2)),
    );
}

#[test]
fn probe_link_faults_surface_as_loss_and_deduplicated_duplicates() {
    let run = run_session(7, 400, faulty_probe_link);
    let outcome = run.outcome;
    assert!(outcome.completed, "{:?}", outcome.diagnostics);
    let log = outcome.receiver_log.expect("report fetched");
    let manifest = outcome.manifest;
    assert_eq!(manifest.packets_refused, 0, "virtual sends never refuse");
    assert!(
        log.packets < manifest.packets_sent,
        "loss bursts must lose packets: {} of {} arrived",
        log.packets,
        manifest.packets_sent
    );
    assert!(log.packets > 0, "exit probability keeps the link usable");
    assert!(
        log.duplicates > 0,
        "10% duplication over {} packets must surface",
        manifest.packets_sent
    );
    // Dedup holds under duplication + reordering: no arrival record can
    // claim more packets than its probe carried.
    for (&(experiment, slot), rec) in &log.arrivals {
        let probe = manifest
            .sent
            .iter()
            .find(|p| p.experiment == experiment && p.slot == slot)
            .unwrap_or_else(|| panic!("unknown probe ({experiment}, {slot}) in report"));
        assert!(
            rec.received <= probe.packets,
            "probe ({experiment}, {slot}): {} received of {} sent",
            rec.received,
            probe.packets
        );
    }
}

/// An MTU bottleneck on the probe path: every 600-byte probe is clipped.
fn clipped_probe_link(net: &Arc<FaultNet>) {
    net.set_faults(
        addr(PROBE_SRC),
        addr(RECV),
        LinkFaults::default().with_mtu(100),
    );
}

#[test]
fn mtu_clipped_probes_are_dropped_and_counted_not_decoded() {
    let run = run_session(3, 200, clipped_probe_link);
    let outcome = run.outcome;
    assert!(outcome.completed, "{:?}", outcome.diagnostics);
    let log = outcome.receiver_log.expect("report fetched");
    // Every probe datagram arrived clipped: dropped before decode, so
    // the report is empty and the truncation counter carries the story.
    assert_eq!(log.packets, 0, "clipped datagrams must not be decoded");
    assert!(log.arrivals.is_empty());
    let truncated = run.metrics.counter("packets_truncated").get();
    assert_eq!(
        truncated, outcome.manifest.packets_sent,
        "every sent probe datagram must be counted as truncated"
    );
}

#[test]
fn session_capacity_is_enforced_over_faultnet() {
    let net = FaultNet::new(5);
    let provider = Provider::Fault(net.clone());
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        ..ServerConfig::any(addr(RECV), 1)
    })
    .unwrap();
    let params = SessionParams {
        n_slots: 100,
        slot_ns: 5_000_000,
        probe_packets: 3,
        packet_bytes: 600,
        p: 0.3,
        improved: false,
    };
    let client = |bind: &str| {
        let mut cfg = ControlConfig::new(addr(RECV));
        cfg.provider = provider.clone();
        cfg.bind = Some(addr(bind));
        ControlClient::connect(cfg, None).unwrap()
    };
    client("10.0.0.2:7001")
        .handshake(41, params)
        .expect("first session fits");
    let err = client("10.0.0.3:7001")
        .handshake(42, params)
        .expect_err("second session must be refused");
    match err {
        ControlError::Rejected {
            reason: RejectReason::Capacity,
        } => {}
        other => panic!("expected a capacity NACK, got {other}"),
    }
    server.stop();
}

#[test]
fn two_sessions_share_one_server_over_faultnet() {
    let net = FaultNet::new(9);
    let provider = Provider::Fault(net.clone());
    let metrics = Arc::new(Registry::new("faultnet-multi"));
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        idle_timeout: Some(Duration::from_secs(10)),
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(addr(RECV), 4)
    })
    .unwrap();
    let senders: Vec<_> = [(21u32, "10.0.0.2", 300u64), (22, "10.0.0.3", 400)]
        .into_iter()
        .map(|(session, host, n_slots)| {
            let provider = provider.clone();
            let net = net.clone();
            // Hold virtual time until the sender thread is actually
            // running, so the other session cannot burn its timeouts
            // against a thread the OS has not scheduled yet.
            let ticket = net.reserve();
            std::thread::spawn(move || {
                net.adopt(ticket);
                let tool = fast_tool();
                let mut control = ControlConfig::new(addr(RECV));
                control.bind = Some(addr(&format!("{host}:7001")));
                control.drain = Duration::from_millis(100);
                let cfg = SenderConfig {
                    tool,
                    bind: addr(&format!("{host}:7000")),
                    control: Some(control),
                    provider,
                    ..SenderConfig::new(tool, n_slots, addr(RECV), session)
                };
                (
                    session,
                    run_sender(cfg, seeded(u64::from(session), "faultnet-multi")).unwrap(),
                )
            })
        })
        .collect();
    for handle in senders {
        let (session, outcome) = net.unenrolled(|| handle.join()).unwrap();
        assert!(
            outcome.completed,
            "session {session}: {:?}",
            outcome.diagnostics
        );
        let log = outcome.receiver_log.expect("report fetched");
        // Each report contains exactly its own probes — no cross-session
        // contamination through the shared registry.
        assert_eq!(log.packets, outcome.manifest.packets_sent);
        assert_eq!(log.duplicates, 0);
        assert_eq!(log.arrivals.len(), outcome.manifest.sent.len());
    }
    server.stop();
}
