//! Fleet-era receiver tests: the event-driven readiness loop, the
//! memory budgets with their admission/eviction policy, and the
//! control-plane lifecycle regressions that the fleet rewrite must pin:
//!
//! * a slow chunked report fetch must keep its session alive through a
//!   short idle timeout (every control message refreshes the idle
//!   deadline — a reap mid-fetch strands the sender);
//! * an out-of-range or pre-FIN `ReportRequest` gets a deterministic
//!   empty-chunk reply, never silence;
//! * under global-budget pressure, new sessions are either refused with
//!   [`RejectReason::Budget`] or admitted by evicting the longest-idle
//!   session, whose sender then sees [`RejectReason::Evicted`] on its
//!   next control exchange;
//! * the forced epoll and forced timeout loops both serve complete
//!   sessions end to end over real UDP.

use badabing_core::config::BadabingConfig;
use badabing_live::control::{ControlClient, ControlConfig, ControlError};
use badabing_live::event_loop::PollMode;
use badabing_live::faultnet::{FaultNet, LinkFaults};
use badabing_live::provider::Provider;
use badabing_live::receiver::{start_server, PressurePolicy, ServerConfig, SessionEnd};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use badabing_wire::control::{ControlMessage, RejectReason, SessionParams};
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

fn fast_tool() -> BadabingConfig {
    BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    }
}

/// Announces a run big enough that its budget-capped projected
/// reservation is ~24 MB — two of them cannot fit a 40 MB global
/// budget, which is what the pressure tests arrange.
fn big_params() -> SessionParams {
    SessionParams {
        n_slots: 100_000,
        slot_ns: 5_000_000,
        probe_packets: 3,
        packet_bytes: 600,
        p: 0.3,
        improved: true,
    }
}

/// Satellite regression: a chunked report fetch over slow links must
/// not lose its session to a short idle watchdog mid-fetch. Each link
/// adds 50 ms one way, the idle timeout is 250 ms, and the report spans
/// many chunks — the session only survives because *every* control
/// message (FIN retransmits, each ReportRequest, the closing acks)
/// refreshes `last_activity`. A receiver that only refreshed on probes
/// or heartbeats would reap the session between chunks and strand the
/// sender.
#[test]
fn chunked_fetch_survives_short_idle_timeout_on_slow_links() {
    const RECV: &str = "10.0.0.1:9000";
    const PROBE_SRC: &str = "10.0.0.2:7000";
    const CTL_SRC: &str = "10.0.0.2:7001";

    let net = FaultNet::new(77);
    // Slow but reliable control links: every exchange costs a 100 ms
    // round trip against a 250 ms idle timeout.
    let slow = LinkFaults {
        latency: Duration::from_millis(50),
        ..LinkFaults::default()
    };
    net.set_faults(addr(CTL_SRC), addr(RECV), slow.clone());
    net.set_faults(addr(RECV), addr(CTL_SRC), slow);
    let provider = Provider::Fault(net.clone());

    let metrics = Arc::new(Registry::new("fleet-slow-fetch"));
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        idle_timeout: Some(Duration::from_millis(250)),
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(addr(RECV), 4)
    })
    .unwrap();

    let tool = fast_tool();
    let mut control = ControlConfig::new(addr(RECV));
    control.bind = Some(addr(CTL_SRC));
    control.drain = Duration::from_millis(100);
    // One retry period must cover the 100 ms control RTT, or every
    // exchange needlessly retransmits before its reply can arrive.
    control.retry_base = Duration::from_millis(150);
    let cfg = SenderConfig {
        tool,
        bind: addr(PROBE_SRC),
        control: Some(control),
        provider,
        ..SenderConfig::new(tool, 400, addr(RECV), 0xF1)
    };
    let outcome = run_sender(cfg, seeded(77, "slow-fetch")).unwrap();

    assert!(
        outcome.completed,
        "session reaped mid-fetch: {:?}",
        outcome.diagnostics
    );
    let log = outcome.receiver_log.expect("report fetched");
    assert!(
        log.arrivals.len() > 64,
        "report too small to need multiple chunks: {} records",
        log.arrivals.len()
    );

    // The closing ReportAck is fire-and-forget and still rides the
    // 50 ms virtual link; wait for the server to mark the session
    // complete before tearing it down. The wait must run unenrolled,
    // or this thread's busy token freezes virtual time and the ack
    // never delivers.
    let completed = metrics.counter("sessions_completed");
    net.unenrolled(|| {
        let deadline = Instant::now() + Duration::from_secs(5);
        while completed.get() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
    });

    let report = server.stop();
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(
        report.sessions[0].end,
        SessionEnd::Completed,
        "the fetch's own control traffic must keep the session alive"
    );
}

/// Satellite regression: a `ReportRequest` from a live session always
/// gets a deterministic reply. Before the fix the receiver answered
/// out-of-range chunk indices — and any request before FIN — with
/// silence, so the sender burned its entire retry/backoff schedule per
/// chunk before learning anything.
#[test]
fn report_requests_never_go_unanswered() {
    let server = start_server(ServerConfig::any(local0(), 4)).unwrap();
    let target = server.local_addr();
    let session = 0xE3;

    let client = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    client.handshake(session, big_params()).unwrap();

    let sock = UdpSocket::bind(local0()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut buf = [0u8; 2048];
    let mut exchange = |msg: ControlMessage| -> Option<ControlMessage> {
        sock.send_to(&msg.encode(), target).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            let Ok((len, _)) = sock.recv_from(&mut buf) else {
                return None;
            };
            if let Ok(reply) = ControlMessage::decode(&buf[..len]) {
                if reply.session() == session {
                    return Some(reply);
                }
            }
        }
        None
    };

    // Before any FIN there is no snapshot: the reply is an empty chunk
    // with `total_chunks: 0`, not silence.
    let reply = exchange(ControlMessage::ReportRequest { session, chunk: 0 })
        .expect("pre-FIN report request must be answered");
    match reply {
        ControlMessage::ReportChunk {
            chunk,
            total_chunks,
            records,
            ..
        } => {
            assert_eq!(chunk, 0);
            assert_eq!(total_chunks, 0, "no snapshot exists before FIN");
            assert!(records.is_empty());
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Finalize (no probes: a legitimate empty report).
    let fin = exchange(ControlMessage::Fin {
        session,
        probes_sent: 0,
        packets_sent: 0,
    })
    .expect("FIN must be acked");
    let total = match fin {
        ControlMessage::FinAck { total_chunks, .. } => total_chunks,
        other => panic!("unexpected reply {other:?}"),
    };

    // An out-of-range index (sender bug, corrupted datagram) gets an
    // empty chunk echoing the *true* total, byte-deterministic.
    let hostile = total + 7;
    let reply = exchange(ControlMessage::ReportRequest {
        session,
        chunk: hostile,
    })
    .expect("out-of-range report request must be answered");
    match reply {
        ControlMessage::ReportChunk {
            chunk,
            total_chunks,
            records,
            ..
        } => {
            assert_eq!(chunk, hostile);
            assert_eq!(total_chunks, total, "reply must echo the real chunk count");
            assert!(records.is_empty());
        }
        other => panic!("unexpected reply {other:?}"),
    }

    let report = server.stop();
    assert_eq!(report.chunk_nacks, 2, "both oddball requests counted");
}

/// Budget admission, reject policy: once the global budget cannot cover
/// a new session's projected reservation, its SYN fails fast with an
/// explicit `Budget` NACK.
#[test]
fn syns_over_the_global_budget_are_rejected_fast() {
    let metrics = Arc::new(Registry::new("budget-reject"));
    let server = start_server(ServerConfig {
        global_budget_bytes: Some(40 << 20),
        on_pressure: PressurePolicy::Reject,
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(local0(), 16)
    })
    .unwrap();
    let target = server.local_addr();

    let first = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    first.handshake(1, big_params()).expect("fits the budget");

    let second = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    let started = Instant::now();
    let err = second.handshake(2, big_params()).unwrap_err();
    assert!(
        matches!(
            err,
            ControlError::Rejected {
                reason: RejectReason::Budget
            }
        ),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "budget NACK must short-circuit the backoff schedule"
    );

    let report = server.stop();
    assert_eq!(report.budget_rejects, 1);
    assert_eq!(report.syns_rejected, 1, "budget rejects count as refusals");
    assert_eq!(report.sessions_evicted, 0);
    assert_eq!(report.sessions.len(), 1);
    assert!(report.mem_peak_bytes > 0, "admission settles the charge");
    assert_eq!(metrics.counter("syns_budget_rejected").get(), 1);
}

/// Budget admission, eviction policy: the longest-idle session is
/// evicted to make room, its end is reported as `Evicted`, and its
/// sender's next control exchange fails fast with `Evicted` (served
/// from the tombstone ring) instead of timing out.
#[test]
fn budget_pressure_evicts_the_longest_idle_session() {
    let metrics = Arc::new(Registry::new("budget-evict"));
    let server = start_server(ServerConfig {
        global_budget_bytes: Some(40 << 20),
        on_pressure: PressurePolicy::EvictIdle,
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(local0(), 16)
    })
    .unwrap();
    let target = server.local_addr();

    let first = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    first.handshake(11, big_params()).expect("fits the budget");

    // The second SYN cannot fit alongside the first: admission evicts
    // session 11 (the only — hence longest-idle — session) instead of
    // refusing.
    let second = ControlClient::connect(ControlConfig::new(target), None).unwrap();
    second
        .handshake(12, big_params())
        .expect("eviction must make room for the new session");

    // The evicted session's sender is told explicitly on its next
    // exchange — a heartbeat miss first (no ack is coming)…
    assert!(
        !first
            .heartbeat(11, 1, Duration::from_millis(500))
            .expect("heartbeat io"),
        "an evicted session must not be ackable"
    );
    // …and a hard `Rejected { Evicted }` on any requested exchange.
    let started = Instant::now();
    let err = first.fetch_report(11, 0, 0).unwrap_err();
    assert!(
        matches!(
            err,
            ControlError::Rejected {
                reason: RejectReason::Evicted
            }
        ),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "eviction NACK must short-circuit the backoff schedule"
    );

    let report = server.stop();
    assert_eq!(report.sessions_evicted, 1);
    assert_eq!(report.budget_rejects, 0, "eviction made room, no refusal");
    let by_id = |id: u32| {
        report
            .sessions
            .iter()
            .find(|o| o.session == id)
            .unwrap_or_else(|| panic!("session {id} missing from report"))
    };
    assert_eq!(by_id(11).end, SessionEnd::Evicted);
    assert_eq!(by_id(12).end, SessionEnd::Stopped);
    assert_eq!(metrics.counter("sessions_evicted").get(), 1);
}

/// A full end-to-end session must complete under both forced poll
/// modes: the epoll readiness loop (Linux) and the portable timeout
/// fallback. `Auto` picks between them, so forcing each pins both
/// implementations, not just the default.
fn full_session_under(poll: PollMode, session: u32, seed: u64) {
    let metrics = Arc::new(Registry::new("poll-mode"));
    let server = start_server(ServerConfig {
        poll,
        idle_timeout: Some(Duration::from_secs(10)),
        metrics: Some(metrics.clone()),
        ..ServerConfig::any(local0(), 4)
    })
    .unwrap();
    let tool = fast_tool();
    let mut control = ControlConfig::new(server.local_addr());
    control.drain = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        control: Some(control),
        ..SenderConfig::new(tool, 400, server.local_addr(), session)
    };
    let outcome = run_sender(cfg, seeded(seed, "poll-mode")).unwrap();
    assert!(
        outcome.completed,
        "session under {poll:?} failed: {:?}",
        outcome.diagnostics
    );
    assert!(outcome.receiver_log.is_some());
    // The closing ReportAck is fire-and-forget: give the server a
    // bounded moment to process it before collecting the report.
    let deadline = Instant::now() + Duration::from_secs(3);
    while metrics.counter("sessions_completed").get() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = server.stop();
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].end, SessionEnd::Completed);
}

#[cfg(target_os = "linux")]
#[test]
fn epoll_loop_serves_a_full_session() {
    full_session_under(PollMode::Epoll, 0xA1, 31);
}

#[test]
fn timeout_loop_serves_a_full_session() {
    full_session_under(PollMode::Timeout, 0xA2, 32);
}

/// Forcing epoll on a virtual-network socket is a configuration error,
/// reported synchronously from `start_server` — not a silent fallback
/// and not a dead serve thread.
#[test]
fn forced_epoll_on_a_virtual_socket_fails_fast() {
    let net = FaultNet::new(1);
    match start_server(ServerConfig {
        provider: Provider::Fault(net),
        poll: PollMode::Epoll,
        ..ServerConfig::any(addr("10.0.0.9:9000"), 4)
    }) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::Unsupported),
        Ok(_) => panic!("forced epoll on a virtual socket must fail at startup"),
    }
}
