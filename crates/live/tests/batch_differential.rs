//! Differential test for the batched datapath: the same seeded run over
//! loopback must produce the same *accounting* whether both ends use the
//! batched (`recvmmsg`/`sendmmsg`) path or the portable
//! one-datagram-per-syscall fallback.
//!
//! Wall-clock timing (and hence the delay fields) legitimately differs
//! between two live runs, so this test pins down everything that must
//! not: the probe plan, the per-probe arrival keys, the received and
//! duplicate counts, and the loss accounting. The *byte-identical*
//! contract for one arrival sequence fed through both ingest groupings
//! lives in the receiver's unit tests, where timestamps are synthetic.

use badabing_core::config::BadabingConfig;
use badabing_live::batch_io::IoMode;
use badabing_live::control::ControlConfig;
use badabing_live::provider::Provider;
use badabing_live::receiver::{start_server, ReceiverLog, ServerConfig};
use badabing_live::sender::{run_sender, SenderConfig, SenderManifest};
use badabing_stats::rng::seeded;
use std::net::SocketAddr;
use std::time::Duration;

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn fast_tool() -> BadabingConfig {
    BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    }
}

/// One complete control-plane session over loopback with both ends
/// forced to `io`; returns the sender manifest and the report the
/// control plane fetched.
fn run_mode(io: IoMode, session: u32) -> (SenderManifest, ReceiverLog) {
    let server = start_server(ServerConfig {
        provider: Provider::udp(io),
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::any(local0(), 4)
    })
    .unwrap();
    let tool = fast_tool();
    let mut control = ControlConfig::new(server.local_addr());
    control.drain = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        provider: Provider::udp(io),
        control: Some(control),
        ..SenderConfig::new(tool, 400 /* 2 s */, server.local_addr(), session)
    };
    // Same seed in both modes: identical schedule, identical probes.
    let outcome = run_sender(cfg, seeded(99, "differential")).unwrap();
    assert!(outcome.completed, "mode {io:?}: run aborted");
    let log = outcome
        .receiver_log
        .expect("control plane fetches the report");
    server.stop();
    (outcome.manifest, log)
}

#[test]
fn batched_and_fallback_paths_agree_end_to_end() {
    let (m_fall, log_fall) = run_mode(IoMode::Fallback, 0xD1);
    let (m_batch, log_batch) = run_mode(IoMode::Batched, 0xD2);

    // The probe plan is a pure function of the seed: identical streams
    // of (experiment, slot, packets) regardless of I/O mode.
    assert_eq!(m_fall.sent.len(), m_batch.sent.len());
    for (a, b) in m_fall.sent.iter().zip(&m_batch.sent) {
        assert_eq!(
            (a.experiment, a.slot, a.packets),
            (b.experiment, b.slot, b.packets)
        );
    }
    assert_eq!(m_fall.packets_sent, m_batch.packets_sent);
    assert_eq!(m_fall.packets_refused, 0);
    assert_eq!(m_batch.packets_refused, 0);

    // Loopback is lossless: both reports must hold every probe, with
    // identical keys and counts.
    assert_eq!(log_fall.packets, m_fall.packets_sent);
    assert_eq!(log_batch.packets, m_batch.packets_sent);
    assert_eq!(log_fall.duplicates, 0);
    assert_eq!(log_batch.duplicates, 0);
    assert_eq!(log_fall.arrivals.len(), log_batch.arrivals.len());
    for (key, rec) in &log_fall.arrivals {
        let other = log_batch
            .arrivals
            .get(key)
            .unwrap_or_else(|| panic!("probe {key:?} missing from batched run"));
        assert_eq!(rec.received, other.received, "probe {key:?}");
        assert_eq!(rec.duplicates, other.duplicates, "probe {key:?}");
    }
}
