//! Differential test for the batched datapath: the same seeded run over
//! loopback must produce the same *accounting* whether both ends use the
//! batched (`recvmmsg`/`sendmmsg`) path or the portable
//! one-datagram-per-syscall fallback.
//!
//! Wall-clock timing (and hence the delay fields) legitimately differs
//! between two live runs, so this test pins down everything that must
//! not: the probe plan, the per-probe arrival keys, the received and
//! duplicate counts, and the loss accounting. The *byte-identical*
//! contract for one arrival sequence fed through both ingest groupings
//! lives in the receiver's unit tests, where timestamps are synthetic.

use badabing_core::config::BadabingConfig;
use badabing_live::batch_io::IoMode;
use badabing_live::control::ControlConfig;
use badabing_live::kernel_offload_caps;
use badabing_live::provider::Provider;
use badabing_live::receiver::{start_server, ReceiverLog, ServerConfig};
use badabing_live::sender::{run_sender, SenderConfig, SenderManifest};
use badabing_stats::rng::seeded;
use std::net::SocketAddr;
use std::time::Duration;

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn fast_tool() -> BadabingConfig {
    BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    }
}

/// One complete control-plane session over loopback with both ends
/// forced to `io`; returns the sender manifest and the report the
/// control plane fetched.
fn run_mode(io: IoMode, session: u32) -> (SenderManifest, ReceiverLog) {
    let server = start_server(ServerConfig {
        provider: Provider::udp(io),
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::any(local0(), 4)
    })
    .unwrap();
    let tool = fast_tool();
    let mut control = ControlConfig::new(server.local_addr());
    control.drain = Duration::from_millis(100);
    let cfg = SenderConfig {
        tool,
        provider: Provider::udp(io),
        control: Some(control),
        ..SenderConfig::new(tool, 400 /* 2 s */, server.local_addr(), session)
    };
    // Same seed in both modes: identical schedule, identical probes.
    let outcome = run_sender(cfg, seeded(99, "differential")).unwrap();
    assert!(outcome.completed, "mode {io:?}: run aborted");
    let log = outcome
        .receiver_log
        .expect("control plane fetches the report");
    server.stop();
    (outcome.manifest, log)
}

/// Everything that must not depend on the I/O mode: same probe plan,
/// same send accounting, lossless loopback delivery, and identical
/// per-probe keys/counts in both reports.
fn assert_modes_agree(
    a_name: &str,
    (m_a, log_a): &(SenderManifest, ReceiverLog),
    b_name: &str,
    (m_b, log_b): &(SenderManifest, ReceiverLog),
) {
    // The probe plan is a pure function of the seed: identical streams
    // of (experiment, slot, packets) regardless of I/O mode.
    assert_eq!(m_a.sent.len(), m_b.sent.len());
    for (a, b) in m_a.sent.iter().zip(&m_b.sent) {
        assert_eq!(
            (a.experiment, a.slot, a.packets),
            (b.experiment, b.slot, b.packets)
        );
    }
    assert_eq!(m_a.packets_sent, m_b.packets_sent);
    assert_eq!(m_a.packets_refused, 0, "{a_name}");
    assert_eq!(m_b.packets_refused, 0, "{b_name}");

    // Loopback is lossless: both reports must hold every probe, with
    // identical keys and counts.
    assert_eq!(log_a.packets, m_a.packets_sent, "{a_name}");
    assert_eq!(log_b.packets, m_b.packets_sent, "{b_name}");
    assert_eq!(log_a.duplicates, 0, "{a_name}");
    assert_eq!(log_b.duplicates, 0, "{b_name}");
    assert_eq!(log_a.arrivals.len(), log_b.arrivals.len());
    for (key, rec) in &log_a.arrivals {
        let other = log_b
            .arrivals
            .get(key)
            .unwrap_or_else(|| panic!("probe {key:?} missing from {b_name} run"));
        assert_eq!(rec.received, other.received, "probe {key:?}");
        assert_eq!(rec.duplicates, other.duplicates, "probe {key:?}");
    }
}

#[test]
fn batched_and_fallback_paths_agree_end_to_end() {
    let fall = run_mode(IoMode::Fallback, 0xD1);
    let batch = run_mode(IoMode::Batched, 0xD2);
    assert_modes_agree("fallback", &fall, "batched", &batch);
}

/// The offload tier must be invisible to the accounting: a GSO (and,
/// where the kernel supports it, GSO+GRO) session produces the same
/// probe keys and counts as a batched one. Timestamps legitimately
/// differ — the offload rows stamp in the kernel — so only keys and
/// counts are compared. Skips (passes trivially) on kernels without
/// `UDP_SEGMENT`/`UDP_GRO`.
#[test]
fn offload_paths_agree_with_batched_end_to_end() {
    let caps = kernel_offload_caps();
    if !caps.gso_ready() {
        eprintln!("skipping: kernel has no UDP_SEGMENT");
        return;
    }
    let batch = run_mode(IoMode::Batched, 0xE1);
    let gso = run_mode(IoMode::Gso, 0xE2);
    assert_modes_agree("batched", &batch, "gso", &gso);
    if caps.gro_ready() {
        let gro = run_mode(IoMode::GsoGro, 0xE3);
        assert_modes_agree("batched", &batch, "gso+gro", &gro);
    } else {
        eprintln!("kernel has no UDP_GRO: gso+gro leg skipped");
    }
}
