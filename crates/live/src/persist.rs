//! JSON persistence for the CLI workflow.
//!
//! The standalone binaries exchange results through files: the sender
//! writes a manifest (what was sent, plus the tool configuration), the
//! receiver writes its arrival log, and `badabing-report` joins the two.
//! The receiver alone cannot account for probes whose every packet was
//! lost — nothing arrives to decode — which is why the manifest is part
//! of the protocol rather than an optimization.
//!
//! Encoding is the dependency-free JSON codec from `badabing-metrics`
//! (this workspace builds offline; there is no serde_json to lean on).

use crate::control::EstimateReport;
use crate::receiver::{ArrivalRecord, ReceiverLog};
use crate::sender::{SenderManifest, SentProbeInfo};
use badabing_core::config::BadabingConfig;
use badabing_core::estimator::Estimates;
use badabing_metrics::json::Value;
use badabing_wire::control::EstimateScope;
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Serialized form of a sender run: manifest plus the tool configuration
/// needed to analyze it.
#[derive(Debug, Clone)]
pub struct ManifestFile {
    /// Tool parameters the run used (α, τ, slot width, ...).
    pub tool: BadabingConfig,
    /// Session id.
    pub session: u32,
    /// Total slots (`N`).
    pub n_slots: u64,
    /// Slot width in seconds.
    pub slot_secs: f64,
    /// Packets transmitted (successful sends only).
    pub packets_sent: u64,
    /// Packets skipped on refused sends (absent in older files).
    pub packets_refused: u64,
    /// Every probe sent.
    pub probes: Vec<ProbeEntry>,
}

/// One sent probe (flattened for stable JSON).
#[derive(Debug, Clone, Copy)]
pub struct ProbeEntry {
    /// Experiment id.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Send time, seconds from the sender's anchor.
    pub send_time_secs: f64,
    /// Packets in the probe.
    pub packets: u8,
}

/// Serialized form of a receiver run.
#[derive(Debug, Clone)]
pub struct ReceiverFile {
    /// Packets accepted.
    pub packets: u64,
    /// Datagrams rejected.
    pub rejected: u64,
    /// Duplicated probe datagrams detected.
    pub duplicates: u64,
    /// Clock-offset estimate used (minimum raw delay, ns).
    pub min_raw_delay_ns: Option<i64>,
    /// Per-probe arrival records.
    pub arrivals: Vec<ArrivalEntry>,
}

/// One probe's arrival record (flattened map entry).
#[derive(Debug, Clone, Copy)]
pub struct ArrivalEntry {
    /// Experiment id.
    pub experiment: u64,
    /// Slot.
    pub slot: u64,
    /// Packets received.
    pub received: u8,
    /// Duplicated datagrams seen for this probe.
    pub duplicates: u8,
    /// Queueing delay of the last arrival, seconds.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay, seconds.
    pub qdelay_max_secs: f64,
    /// Whether every arrival carried a kernel RX timestamp.
    pub kernel_stamped: bool,
}

fn tool_to_value(tool: &BadabingConfig) -> Value {
    Value::obj(vec![
        ("slot_secs", Value::Num(tool.slot_secs)),
        ("p", Value::Num(tool.p)),
        ("probe_packets", Value::Num(f64::from(tool.probe_packets))),
        ("packet_bytes", Value::Num(f64::from(tool.packet_bytes))),
        (
            "intra_probe_gap_secs",
            Value::Num(tool.intra_probe_gap_secs),
        ),
        ("alpha", Value::Num(tool.alpha)),
        ("tau_secs", Value::Num(tool.tau_secs)),
        ("improved", Value::Bool(tool.improved)),
        ("owd_window", Value::Num(tool.owd_window as f64)),
    ])
}

fn tool_from_value(v: &Value) -> io::Result<BadabingConfig> {
    Ok(BadabingConfig {
        slot_secs: req_f64(v, "slot_secs")?,
        p: req_f64(v, "p")?,
        probe_packets: req_u64(v, "probe_packets")? as u8,
        packet_bytes: req_u64(v, "packet_bytes")? as u32,
        intra_probe_gap_secs: req_f64(v, "intra_probe_gap_secs")?,
        alpha: req_f64(v, "alpha")?,
        tau_secs: req_f64(v, "tau_secs")?,
        improved: req_bool(v, "improved")?,
        owd_window: req_u64(v, "owd_window")? as usize,
    })
}

impl ManifestFile {
    /// Build from an in-memory manifest and the tool configuration.
    pub fn new(tool: BadabingConfig, manifest: &SenderManifest) -> Self {
        Self {
            tool,
            session: manifest.session,
            n_slots: manifest.n_slots,
            slot_secs: manifest.slot_secs,
            packets_sent: manifest.packets_sent,
            packets_refused: manifest.packets_refused,
            probes: manifest
                .sent
                .iter()
                .map(|s| ProbeEntry {
                    experiment: s.experiment,
                    slot: s.slot,
                    send_time_secs: s.send_time_secs,
                    packets: s.packets,
                })
                .collect(),
        }
    }

    /// Reconstruct the in-memory manifest.
    pub fn to_manifest(&self) -> SenderManifest {
        SenderManifest {
            session: self.session,
            packets_sent: self.packets_sent,
            packets_refused: self.packets_refused,
            n_slots: self.n_slots,
            slot_secs: self.slot_secs,
            sent: self
                .probes
                .iter()
                .map(|p| SentProbeInfo {
                    experiment: p.experiment,
                    slot: p.slot,
                    send_time_secs: p.send_time_secs,
                    packets: p.packets,
                })
                .collect(),
        }
    }

    fn to_value(&self) -> Value {
        let probes = self
            .probes
            .iter()
            .map(|p| {
                Value::obj(vec![
                    ("experiment", num_u64(p.experiment)),
                    ("slot", num_u64(p.slot)),
                    ("send_time_secs", Value::Num(p.send_time_secs)),
                    ("packets", Value::Num(f64::from(p.packets))),
                ])
            })
            .collect();
        Value::obj(vec![
            ("tool", tool_to_value(&self.tool)),
            ("session", num_u64(u64::from(self.session))),
            ("n_slots", num_u64(self.n_slots)),
            ("slot_secs", Value::Num(self.slot_secs)),
            ("packets_sent", num_u64(self.packets_sent)),
            ("packets_refused", num_u64(self.packets_refused)),
            ("probes", Value::Arr(probes)),
        ])
    }

    fn from_value(v: &Value) -> io::Result<Self> {
        let probes = req_arr(v, "probes")?
            .iter()
            .map(|p| {
                Ok(ProbeEntry {
                    experiment: req_u64(p, "experiment")?,
                    slot: req_u64(p, "slot")?,
                    send_time_secs: req_f64(p, "send_time_secs")?,
                    packets: req_u64(p, "packets")? as u8,
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Self {
            tool: tool_from_value(field(v, "tool")?)?,
            session: req_u64(v, "session")? as u32,
            n_slots: req_u64(v, "n_slots")?,
            slot_secs: req_f64(v, "slot_secs")?,
            packets_sent: req_u64(v, "packets_sent")?,
            // Absent in manifests written before refused sends were
            // tracked; default to zero.
            packets_refused: v
                .get("packets_refused")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            probes,
        })
    }

    /// Write as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_json(path, &self.to_value())
    }

    /// Read from JSON.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_value(&read_json(path)?)
    }
}

impl ReceiverFile {
    /// Build from an in-memory log.
    pub fn new(log: &ReceiverLog) -> Self {
        let mut arrivals: Vec<ArrivalEntry> = log
            .arrivals
            .iter()
            .map(|(&(experiment, slot), r)| ArrivalEntry {
                experiment,
                slot,
                received: r.received,
                duplicates: r.duplicates,
                qdelay_last_secs: r.qdelay_last_secs,
                qdelay_max_secs: r.qdelay_max_secs,
                kernel_stamped: r.kernel_stamped,
            })
            .collect();
        arrivals.sort_by_key(|a| (a.experiment, a.slot));
        Self {
            packets: log.packets,
            rejected: log.rejected,
            duplicates: log.duplicates,
            min_raw_delay_ns: log.min_raw_delay_ns,
            arrivals,
        }
    }

    /// Reconstruct the in-memory log.
    pub fn to_log(&self) -> ReceiverLog {
        let mut arrivals = HashMap::new();
        for a in &self.arrivals {
            arrivals.insert(
                (a.experiment, a.slot),
                ArrivalRecord {
                    received: a.received,
                    duplicates: a.duplicates,
                    qdelay_last_secs: a.qdelay_last_secs,
                    qdelay_max_secs: a.qdelay_max_secs,
                    kernel_stamped: a.kernel_stamped,
                },
            );
        }
        ReceiverLog {
            arrivals,
            packets: self.packets,
            rejected: self.rejected,
            duplicates: self.duplicates,
            min_raw_delay_ns: self.min_raw_delay_ns,
            handshake: None,
        }
    }

    fn to_value(&self) -> Value {
        let arrivals = self
            .arrivals
            .iter()
            .map(|a| {
                Value::obj(vec![
                    ("experiment", num_u64(a.experiment)),
                    ("slot", num_u64(a.slot)),
                    ("received", Value::Num(f64::from(a.received))),
                    ("duplicates", Value::Num(f64::from(a.duplicates))),
                    ("qdelay_last_secs", Value::Num(a.qdelay_last_secs)),
                    ("qdelay_max_secs", Value::Num(a.qdelay_max_secs)),
                    ("kernel_stamped", Value::Bool(a.kernel_stamped)),
                ])
            })
            .collect();
        Value::obj(vec![
            ("packets", num_u64(self.packets)),
            ("rejected", num_u64(self.rejected)),
            ("duplicates", num_u64(self.duplicates)),
            (
                "min_raw_delay_ns",
                self.min_raw_delay_ns
                    .map_or(Value::Null, |ns| Value::Num(ns as f64)),
            ),
            ("arrivals", Value::Arr(arrivals)),
        ])
    }

    fn from_value(v: &Value) -> io::Result<Self> {
        let arrivals = req_arr(v, "arrivals")?
            .iter()
            .map(|a| {
                Ok(ArrivalEntry {
                    experiment: req_u64(a, "experiment")?,
                    slot: req_u64(a, "slot")?,
                    received: req_u64(a, "received")? as u8,
                    // Absent in pre-dedup logs; default to zero.
                    duplicates: a.get("duplicates").and_then(Value::as_u64).unwrap_or(0) as u8,
                    qdelay_last_secs: req_f64(a, "qdelay_last_secs")?,
                    qdelay_max_secs: req_f64(a, "qdelay_max_secs")?,
                    // Absent in logs written before kernel timestamping
                    // existed; those arrivals were userspace-stamped.
                    kernel_stamped: a
                        .get("kernel_stamped")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        let min_raw_delay_ns = match field(v, "min_raw_delay_ns")? {
            Value::Null => None,
            other => Some(other.as_i64().ok_or_else(|| bad("min_raw_delay_ns"))?),
        };
        Ok(Self {
            packets: req_u64(v, "packets")?,
            rejected: req_u64(v, "rejected")?,
            duplicates: v.get("duplicates").and_then(Value::as_u64).unwrap_or(0),
            min_raw_delay_ns,
            arrivals,
        })
    }

    /// Write as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_json(path, &self.to_value())
    }

    /// Read from JSON.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_value(&read_json(path)?)
    }
}

/// Serialized form of a mid-run estimate snapshot fetched over the
/// control plane (`badabing_send --estimate-out`).
///
/// The raw counters are the source of truth — they are lossless u64s
/// and merge by addition — so only they are parsed back on load; the
/// `derived` section (F̂, D̂ variants, episode rate) is recomputed from
/// the counters and written purely for human readers and dashboards.
#[derive(Debug, Clone)]
pub struct EstimateFile {
    /// `"session"`, `"fleet"`, or `"other"`.
    pub scope: String,
    /// Sessions merged into the counters (1 for session scope).
    pub sessions: u32,
    /// The mergeable counter set.
    pub estimates: Estimates,
    /// Delay-sketch sample count.
    pub delay_samples: u64,
    /// Median offset-adjusted delay, seconds (0.0 when empty).
    pub delay_p50_secs: f64,
    /// 99th-percentile offset-adjusted delay, seconds (0.0 when empty).
    pub delay_p99_secs: f64,
}

impl EstimateFile {
    /// Build from a fetched report.
    pub fn new(report: &EstimateReport) -> Self {
        let scope = match report.scope {
            EstimateScope::Session => "session",
            EstimateScope::Fleet => "fleet",
            EstimateScope::Other(_) => "other",
        };
        Self {
            scope: scope.to_string(),
            sessions: report.sessions,
            estimates: report.estimates,
            delay_samples: report.delay_samples,
            delay_p50_secs: report.delay_p50_secs,
            delay_p99_secs: report.delay_p99_secs,
        }
    }

    fn to_value(&self) -> Value {
        let e = &self.estimates;
        let counters = Value::obj(vec![
            ("experiments", num_u64(e.experiments)),
            ("z_sum", num_u64(e.z_sum)),
            ("basic_experiments", num_u64(e.basic_experiments)),
            ("extended_experiments", num_u64(e.extended_experiments)),
            ("r", num_u64(e.r)),
            ("s", num_u64(e.s)),
            ("n01", num_u64(e.n01)),
            ("n10", num_u64(e.n10)),
            ("u", num_u64(e.u)),
            ("v", num_u64(e.v)),
            ("n111", num_u64(e.n111)),
            ("outcomes_malformed", num_u64(e.outcomes_malformed)),
            ("slot_secs", Value::Num(e.slot_secs)),
        ]);
        let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Num);
        let derived = Value::obj(vec![
            ("frequency", opt(e.frequency())),
            ("duration_slots_basic", opt(e.duration_slots_basic())),
            ("duration_slots_improved", opt(e.duration_slots_improved())),
            ("duration_slots_pooled", opt(e.duration_slots_pooled())),
            ("episode_rate_per_slot", opt(e.episode_rate_per_slot())),
        ]);
        Value::obj(vec![
            ("scope", Value::Str(self.scope.clone())),
            ("sessions", num_u64(u64::from(self.sessions))),
            ("counters", counters),
            ("derived", derived),
            ("delay_samples", num_u64(self.delay_samples)),
            ("delay_p50_secs", Value::Num(self.delay_p50_secs)),
            ("delay_p99_secs", Value::Num(self.delay_p99_secs)),
        ])
    }

    fn from_value(v: &Value) -> io::Result<Self> {
        let c = field(v, "counters")?;
        let estimates = Estimates {
            experiments: req_u64(c, "experiments")?,
            z_sum: req_u64(c, "z_sum")?,
            basic_experiments: req_u64(c, "basic_experiments")?,
            extended_experiments: req_u64(c, "extended_experiments")?,
            r: req_u64(c, "r")?,
            s: req_u64(c, "s")?,
            n01: req_u64(c, "n01")?,
            n10: req_u64(c, "n10")?,
            u: req_u64(c, "u")?,
            v: req_u64(c, "v")?,
            n111: req_u64(c, "n111")?,
            outcomes_malformed: req_u64(c, "outcomes_malformed")?,
            slot_secs: req_f64(c, "slot_secs")?,
        };
        let scope = match field(v, "scope")? {
            Value::Str(s) => s.clone(),
            _ => return Err(bad("scope")),
        };
        Ok(Self {
            scope,
            sessions: req_u64(v, "sessions")? as u32,
            estimates,
            delay_samples: req_u64(v, "delay_samples")?,
            delay_p50_secs: req_f64(v, "delay_p50_secs")?,
            delay_p99_secs: req_f64(v, "delay_p99_secs")?,
        })
    }

    /// Write as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_json(path, &self.to_value())
    }

    /// Read from JSON.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_value(&read_json(path)?)
    }
}

fn num_u64(v: u64) -> Value {
    Value::Num(v as f64)
}

fn bad(key: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("missing or invalid field `{key}`"),
    )
}

fn field<'a>(v: &'a Value, key: &str) -> io::Result<&'a Value> {
    v.get(key).ok_or_else(|| bad(key))
}

fn req_f64(v: &Value, key: &str) -> io::Result<f64> {
    field(v, key)?.as_f64().ok_or_else(|| bad(key))
}

fn req_u64(v: &Value, key: &str) -> io::Result<u64> {
    field(v, key)?.as_u64().ok_or_else(|| bad(key))
}

fn req_bool(v: &Value, key: &str) -> io::Result<bool> {
    field(v, key)?.as_bool().ok_or_else(|| bad(key))
}

fn req_arr<'a>(v: &'a Value, key: &str) -> io::Result<&'a [Value]> {
    field(v, key)?.as_arr().ok_or_else(|| bad(key))
}

fn write_json(path: &Path, value: &Value) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, value.to_pretty())
}

fn read_json(path: &Path) -> io::Result<Value> {
    let data = std::fs::read_to_string(path)?;
    badabing_metrics::json::parse(&data)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> (BadabingConfig, SenderManifest) {
        let tool = BadabingConfig::paper_default(0.3);
        let manifest = SenderManifest {
            session: 9,
            packets_sent: 6,
            packets_refused: 1,
            n_slots: 1_000,
            slot_secs: 0.005,
            sent: vec![
                SentProbeInfo {
                    experiment: 0,
                    slot: 4,
                    send_time_secs: 0.02,
                    packets: 3,
                },
                SentProbeInfo {
                    experiment: 0,
                    slot: 5,
                    send_time_secs: 0.025,
                    packets: 3,
                },
            ],
        };
        (tool, manifest)
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let dir = std::env::temp_dir().join("badabing-persist-test");
        let path = dir.join("manifest.json");
        let (tool, manifest) = sample_manifest();
        let file = ManifestFile::new(tool, &manifest);
        file.save(&path).unwrap();
        let loaded = ManifestFile::load(&path).unwrap();
        assert_eq!(loaded.session, 9);
        assert_eq!(loaded.packets_refused, 1);
        assert_eq!(loaded.to_manifest().sent, manifest.sent);
        assert_eq!(loaded.tool.p, 0.3);
        assert!(!loaded.tool.improved);
        assert_eq!(loaded.tool.owd_window, tool.owd_window);
        assert_eq!(loaded.tool.alpha, tool.alpha);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn receiver_log_roundtrips_through_json() {
        let dir = std::env::temp_dir().join("badabing-persist-test2");
        let path = dir.join("receiver.json");
        let mut log = ReceiverLog {
            packets: 5,
            rejected: 1,
            duplicates: 2,
            min_raw_delay_ns: Some(-12345),
            ..Default::default()
        };
        log.arrivals.insert(
            (0, 4),
            ArrivalRecord {
                received: 3,
                duplicates: 2,
                qdelay_last_secs: 0.01,
                qdelay_max_secs: 0.02,
                kernel_stamped: true,
            },
        );
        let file = ReceiverFile::new(&log);
        file.save(&path).unwrap();
        let back = ReceiverFile::load(&path).unwrap().to_log();
        assert_eq!(back.packets, 5);
        assert_eq!(back.rejected, 1);
        assert_eq!(back.duplicates, 2);
        assert_eq!(back.min_raw_delay_ns, Some(-12345));
        assert_eq!(back.arrivals[&(0, 4)].received, 3);
        assert_eq!(back.arrivals[&(0, 4)].duplicates, 2);
        assert!(back.arrivals[&(0, 4)].kernel_stamped);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_logs_written_before_dedup_fields_existed() {
        let dir = std::env::temp_dir().join("badabing-persist-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.json");
        std::fs::write(
            &path,
            r#"{
              "packets": 3,
              "rejected": 0,
              "min_raw_delay_ns": null,
              "arrivals": [
                {"experiment": 1, "slot": 2, "received": 3,
                 "qdelay_last_secs": 0.0, "qdelay_max_secs": 0.0}
              ]
            }"#,
        )
        .unwrap();
        let log = ReceiverFile::load(&path).unwrap().to_log();
        assert_eq!(log.duplicates, 0);
        assert_eq!(log.arrivals[&(1, 2)].duplicates, 0);
        assert_eq!(log.min_raw_delay_ns, None);
        assert!(
            !log.arrivals[&(1, 2)].kernel_stamped,
            "pre-timestamping logs load as userspace-stamped"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_manifests_written_before_refused_sends_were_tracked() {
        let dir = std::env::temp_dir().join("badabing-persist-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old-manifest.json");
        std::fs::write(
            &path,
            r#"{
              "tool": {"slot_secs": 0.005, "p": 0.3, "probe_packets": 3,
                       "packet_bytes": 600, "intra_probe_gap_secs": 0.0,
                       "alpha": 0.005, "tau_secs": 0.05, "improved": false,
                       "owd_window": 5},
              "session": 4, "n_slots": 100, "slot_secs": 0.005,
              "packets_sent": 9,
              "probes": []
            }"#,
        )
        .unwrap();
        let loaded = ManifestFile::load(&path).unwrap();
        assert_eq!(loaded.packets_sent, 9);
        assert_eq!(loaded.packets_refused, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(ManifestFile::load(Path::new("/nonexistent/m.json")).is_err());
    }

    #[test]
    fn load_garbage_errors_with_invalid_data() {
        let dir = std::env::temp_dir().join("badabing-persist-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = ReceiverFile::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
