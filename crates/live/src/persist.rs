//! JSON persistence for the CLI workflow.
//!
//! The standalone binaries exchange results through files: the sender
//! writes a manifest (what was sent, plus the tool configuration), the
//! receiver writes its arrival log, and `badabing-report` joins the two.
//! The receiver alone cannot account for probes whose every packet was
//! lost — nothing arrives to decode — which is why the manifest is part
//! of the protocol rather than an optimization.

use crate::receiver::{ArrivalRecord, ReceiverLog};
use crate::sender::{SenderManifest, SentProbeInfo};
use badabing_core::config::BadabingConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Serialized form of a sender run: manifest plus the tool configuration
/// needed to analyze it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestFile {
    /// Tool parameters the run used (α, τ, slot width, ...).
    pub tool: BadabingConfig,
    /// Session id.
    pub session: u32,
    /// Total slots (`N`).
    pub n_slots: u64,
    /// Slot width in seconds.
    pub slot_secs: f64,
    /// Packets transmitted.
    pub packets_sent: u64,
    /// Every probe sent.
    pub probes: Vec<ProbeEntry>,
}

/// One sent probe (flattened for stable JSON).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProbeEntry {
    /// Experiment id.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Send time, seconds from the sender's anchor.
    pub send_time_secs: f64,
    /// Packets in the probe.
    pub packets: u8,
}

/// Serialized form of a receiver run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReceiverFile {
    /// Packets accepted.
    pub packets: u64,
    /// Datagrams rejected.
    pub rejected: u64,
    /// Clock-offset estimate used (minimum raw delay, ns).
    pub min_raw_delay_ns: Option<i64>,
    /// Per-probe arrival records.
    pub arrivals: Vec<ArrivalEntry>,
}

/// One probe's arrival record (flattened map entry).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArrivalEntry {
    /// Experiment id.
    pub experiment: u64,
    /// Slot.
    pub slot: u64,
    /// Packets received.
    pub received: u8,
    /// Queueing delay of the last arrival, seconds.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay, seconds.
    pub qdelay_max_secs: f64,
}

impl ManifestFile {
    /// Build from an in-memory manifest and the tool configuration.
    pub fn new(tool: BadabingConfig, manifest: &SenderManifest) -> Self {
        Self {
            tool,
            session: manifest.session,
            n_slots: manifest.n_slots,
            slot_secs: manifest.slot_secs,
            packets_sent: manifest.packets_sent,
            probes: manifest
                .sent
                .iter()
                .map(|s| ProbeEntry {
                    experiment: s.experiment,
                    slot: s.slot,
                    send_time_secs: s.send_time_secs,
                    packets: s.packets,
                })
                .collect(),
        }
    }

    /// Reconstruct the in-memory manifest.
    pub fn to_manifest(&self) -> SenderManifest {
        SenderManifest {
            session: self.session,
            packets_sent: self.packets_sent,
            n_slots: self.n_slots,
            slot_secs: self.slot_secs,
            sent: self
                .probes
                .iter()
                .map(|p| SentProbeInfo {
                    experiment: p.experiment,
                    slot: p.slot,
                    send_time_secs: p.send_time_secs,
                    packets: p.packets,
                })
                .collect(),
        }
    }

    /// Write as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        write_json(path, self)
    }

    /// Read from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        read_json(path)
    }
}

impl ReceiverFile {
    /// Build from an in-memory log.
    pub fn new(log: &ReceiverLog) -> Self {
        let mut arrivals: Vec<ArrivalEntry> = log
            .arrivals
            .iter()
            .map(|(&(experiment, slot), r)| ArrivalEntry {
                experiment,
                slot,
                received: r.received,
                qdelay_last_secs: r.qdelay_last_secs,
                qdelay_max_secs: r.qdelay_max_secs,
            })
            .collect();
        arrivals.sort_by_key(|a| (a.experiment, a.slot));
        Self {
            packets: log.packets,
            rejected: log.rejected,
            min_raw_delay_ns: log.min_raw_delay_ns,
            arrivals,
        }
    }

    /// Reconstruct the in-memory log.
    pub fn to_log(&self) -> ReceiverLog {
        let mut arrivals = HashMap::new();
        for a in &self.arrivals {
            arrivals.insert(
                (a.experiment, a.slot),
                ArrivalRecord {
                    received: a.received,
                    qdelay_last_secs: a.qdelay_last_secs,
                    qdelay_max_secs: a.qdelay_max_secs,
                },
            );
        }
        ReceiverLog {
            arrivals,
            packets: self.packets,
            rejected: self.rejected,
            min_raw_delay_ns: self.min_raw_delay_ns,
        }
    }

    /// Write as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        write_json(path, self)
    }

    /// Read from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        read_json(path)
    }
}

fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let data = serde_json::to_vec_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(path, data)
}

fn read_json<T: for<'de> Deserialize<'de>>(path: &Path) -> std::io::Result<T> {
    let data = std::fs::read(path)?;
    serde_json::from_slice(&data).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> (BadabingConfig, SenderManifest) {
        let tool = BadabingConfig::paper_default(0.3);
        let manifest = SenderManifest {
            session: 9,
            packets_sent: 6,
            n_slots: 1_000,
            slot_secs: 0.005,
            sent: vec![
                SentProbeInfo { experiment: 0, slot: 4, send_time_secs: 0.02, packets: 3 },
                SentProbeInfo { experiment: 0, slot: 5, send_time_secs: 0.025, packets: 3 },
            ],
        };
        (tool, manifest)
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let dir = std::env::temp_dir().join("badabing-persist-test");
        let path = dir.join("manifest.json");
        let (tool, manifest) = sample_manifest();
        let file = ManifestFile::new(tool, &manifest);
        file.save(&path).unwrap();
        let loaded = ManifestFile::load(&path).unwrap();
        assert_eq!(loaded.session, 9);
        assert_eq!(loaded.to_manifest().sent, manifest.sent);
        assert_eq!(loaded.tool.p, 0.3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn receiver_log_roundtrips_through_json() {
        let dir = std::env::temp_dir().join("badabing-persist-test2");
        let path = dir.join("receiver.json");
        let mut log = ReceiverLog {
            packets: 5,
            rejected: 1,
            min_raw_delay_ns: Some(-12345),
            ..Default::default()
        };
        log.arrivals.insert(
            (0, 4),
            ArrivalRecord { received: 3, qdelay_last_secs: 0.01, qdelay_max_secs: 0.02 },
        );
        let file = ReceiverFile::new(&log);
        file.save(&path).unwrap();
        let back = ReceiverFile::load(&path).unwrap().to_log();
        assert_eq!(back.packets, 5);
        assert_eq!(back.rejected, 1);
        assert_eq!(back.min_raw_delay_ns, Some(-12345));
        assert_eq!(back.arrivals[&(0, 4)].received, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(ManifestFile::load(Path::new("/nonexistent/m.json")).is_err());
    }
}
