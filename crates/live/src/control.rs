//! Sender-side control-plane driver: handshake, liveness, report
//! retrieval.
//!
//! The sender owns every timeout (see `badabing_wire::control` for the
//! message-level protocol). All requests follow the same discipline:
//! send, wait up to the current backoff delay for a matching reply,
//! retry with the delay doubling up to a cap, give up after a bounded
//! number of attempts. The caller decides what "give up" means — a
//! failed handshake aborts the run before any probe is sent, while a
//! failed report retrieval degrades to a partial result (the manifest
//! alone still supports loss accounting for every probe that was sent).

use crate::provider::{Clock, Provider, Socket};
use badabing_core::estimator::Estimates;
use badabing_metrics::Registry;
use badabing_wire::control::{
    ControlMessage, EstimateCounters, EstimateScope, RejectReason, ReportRecord, ReportSummary,
    SessionParams,
};
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// Convert in-memory estimator counters to their wire form (loses
/// nothing: the wire struct carries every counter verbatim).
pub fn estimate_counters(e: &Estimates) -> EstimateCounters {
    EstimateCounters {
        experiments: e.experiments,
        z_sum: e.z_sum,
        basic_experiments: e.basic_experiments,
        extended_experiments: e.extended_experiments,
        r: e.r,
        s: e.s,
        n01: e.n01,
        n10: e.n10,
        u: e.u,
        v: e.v,
        n111: e.n111,
        outcomes_malformed: e.outcomes_malformed,
        slot_secs: e.slot_secs,
    }
}

/// Rebuild in-memory estimator counters from their wire form — the
/// exact inverse of [`estimate_counters`], so a fetched snapshot
/// supports every derived §5 estimate (and further merging) locally.
pub fn estimates_from_counters(c: &EstimateCounters) -> Estimates {
    Estimates {
        experiments: c.experiments,
        z_sum: c.z_sum,
        basic_experiments: c.basic_experiments,
        extended_experiments: c.extended_experiments,
        r: c.r,
        s: c.s,
        n01: c.n01,
        n10: c.n10,
        u: c.u,
        v: c.v,
        n111: c.n111,
        outcomes_malformed: c.outcomes_malformed,
        slot_secs: c.slot_secs,
    }
}

/// A mid-run estimate snapshot fetched over the control plane.
#[derive(Debug, Clone)]
pub struct EstimateReport {
    /// Which population the snapshot covers.
    pub scope: EstimateScope,
    /// Live sessions merged into the counters (1 for session scope).
    pub sessions: u32,
    /// The mergeable §5 counters, ready for derived estimates.
    pub estimates: Estimates,
    /// Delay samples in the receiver's sketch.
    pub delay_samples: u64,
    /// Median queueing delay (sketch bucket edge), seconds.
    pub delay_p50_secs: f64,
    /// 99th-percentile queueing delay (sketch bucket edge), seconds.
    pub delay_p99_secs: f64,
}

/// Timeouts and retry policy for the sender's control plane.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Where the receiver listens for control datagrams. This must be
    /// the receiver's own address — not an emulator in front of it —
    /// because replies flow back over the request's return path.
    pub addr: SocketAddr,
    /// Which I/O backend the control socket binds through. `run_sender`
    /// overwrites this with the sender's own provider so one run never
    /// straddles two backends.
    pub provider: Provider,
    /// Local address for the control socket (`None`: an ephemeral port
    /// on the unspecified address of `addr`'s family).
    pub bind: Option<SocketAddr>,
    /// First retry delay; doubles per attempt.
    pub retry_base: Duration,
    /// Retry delay ceiling.
    pub retry_cap: Duration,
    /// Attempts per request before giving up (1 = no retries).
    pub max_attempts: u32,
    /// Gap between liveness heartbeats during the run.
    pub heartbeat_interval: Duration,
    /// Consecutive unanswered heartbeats that abort the run.
    pub heartbeat_misses: u32,
    /// Wait after the last probe before FIN, letting in-flight probes
    /// drain through any emulated bottleneck ahead of finalization.
    pub drain: Duration,
}

impl ControlConfig {
    /// Defaults tuned for LAN/loopback runs: handshake survives heavy
    /// control loss (12 attempts, 25 ms → 400 ms backoff ≈ 4 s worst
    /// case per request), death detected in under a second.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            provider: Provider::default(),
            bind: None,
            retry_base: Duration::from_millis(25),
            retry_cap: Duration::from_millis(400),
            max_attempts: 12,
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_misses: 3,
            drain: Duration::from_millis(300),
        }
    }

    /// Worst-case wall time one request can occupy.
    pub fn request_deadline(&self) -> Duration {
        Backoff::new(self).take(self.max_attempts as usize).sum()
    }
}

/// Capped exponential backoff delays: `base, 2·base, 4·base, … ≤ cap`.
#[derive(Debug, Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
}

impl Backoff {
    /// Start a fresh backoff schedule from `cfg`.
    pub fn new(cfg: &ControlConfig) -> Self {
        Self {
            next: cfg.retry_base.max(Duration::from_millis(1)),
            cap: cfg.retry_cap,
        }
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let current = self.next.min(self.cap);
        self.next = (current * 2).min(self.cap);
        Some(current)
    }
}

/// Why a control exchange failed.
#[derive(Debug)]
pub enum ControlError {
    /// The peer never produced a matching reply within the retry budget.
    Unreachable {
        /// What was being asked for.
        what: &'static str,
        /// Attempts made.
        attempts: u32,
    },
    /// The receiver answered the SYN with an explicit refusal (e.g. its
    /// session registry is at capacity). Unlike [`Unreachable`], this is
    /// a deliberate fast failure: retrying immediately will not help.
    ///
    /// [`Unreachable`]: ControlError::Unreachable
    Rejected {
        /// The receiver's stated reason.
        reason: RejectReason,
    },
    /// Socket-level failure.
    Io(io::Error),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Unreachable { what, attempts } => {
                write!(
                    f,
                    "receiver silent: no {what} reply after {attempts} attempts"
                )
            }
            ControlError::Rejected { reason } => {
                write!(f, "receiver refused the session: {reason}")
            }
            ControlError::Io(e) => write!(f, "control socket error: {e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<io::Error> for ControlError {
    fn from(e: io::Error) -> Self {
        ControlError::Io(e)
    }
}

/// A connected control-plane client socket.
pub struct ControlClient {
    socket: Socket,
    clock: Clock,
    cfg: ControlConfig,
    metrics: Option<std::sync::Arc<Registry>>,
}

impl ControlClient {
    /// Bind an ephemeral socket on the configured provider and connect
    /// it to the receiver's control address.
    pub fn connect(
        cfg: ControlConfig,
        metrics: Option<std::sync::Arc<Registry>>,
    ) -> io::Result<Self> {
        let bind: SocketAddr = cfg.bind.unwrap_or_else(|| {
            if cfg.addr.is_ipv4() {
                "0.0.0.0:0".parse().expect("static addr")
            } else {
                "[::]:0".parse().expect("static addr")
            }
        });
        let socket = cfg.provider.bind(bind)?;
        socket.connect(cfg.addr)?;
        let clock = cfg.provider.clock();
        Ok(Self {
            socket,
            clock,
            cfg,
            metrics,
        })
    }

    /// The retry policy in force.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// The clock the client's timeouts run on (the sender shares it for
    /// its own pacing so one run never straddles two time sources).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn note(&self, counter: &str) {
        if let Some(m) = &self.metrics {
            m.counter(counter).inc();
        }
    }

    /// Send `request`, wait for the first reply `matches` accepts,
    /// retrying on the backoff schedule. Non-matching datagrams (stale
    /// chunks, undecodable noise, traffic for another session) are
    /// skipped without consuming the attempt's remaining wait, but they
    /// are *counted* (`control_decode_errors`,
    /// `control_foreign_session`) so a misconfigured peer shows up in
    /// the metrics instead of presenting as a plain timeout.
    ///
    /// A SYN-NACK for this session fails the whole exchange fast with
    /// [`ControlError::Rejected`], whatever was being requested: the
    /// receiver sends one for a refused handshake *and* for any control
    /// message addressed to a session it evicted under memory pressure,
    /// and in both cases retrying cannot succeed.
    pub fn request<T>(
        &self,
        what: &'static str,
        request: &ControlMessage,
        mut matches: impl FnMut(ControlMessage) -> Option<T>,
    ) -> Result<T, ControlError> {
        let wire = request.encode();
        let mut buf = [0u8; 2048];
        let mut backoff = Backoff::new(&self.cfg);
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.note("control_retries");
            }
            self.socket.send(&wire)?;
            let wait = backoff.next().expect("backoff is infinite");
            let deadline = self.clock.now() + wait;
            loop {
                let remaining = deadline.saturating_sub(self.clock.now());
                if remaining.is_zero() {
                    break;
                }
                self.socket.set_read_timeout(Some(remaining))?;
                match self.socket.recv(&mut buf) {
                    Ok(len) => match ControlMessage::decode(&buf[..len]) {
                        Ok(ControlMessage::SynNack { session, reason })
                            if session == request.session() =>
                        {
                            self.note("control_rejected");
                            return Err(ControlError::Rejected { reason });
                        }
                        Ok(msg) if msg.session() == request.session() => {
                            if let Some(out) = matches(msg) {
                                return Ok(out);
                            }
                        }
                        Ok(_) => self.note("control_foreign_session"),
                        Err(_) => self.note("control_decode_errors"),
                    },
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break
                    }
                    // A previous send to a dead port surfaces as
                    // ConnectionRefused on the next recv; treat it as
                    // this attempt timing out and keep retrying.
                    Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => break,
                    Err(e) => return Err(ControlError::Io(e)),
                }
            }
        }
        Err(ControlError::Unreachable {
            what,
            attempts: self.cfg.max_attempts,
        })
    }

    /// Run the SYN/SYN-ACK handshake. A SYN-NACK from the receiver
    /// (session refused: at capacity, or over the memory budget) fails
    /// fast with [`ControlError::Rejected`] instead of burning the
    /// retry budget — `request` handles the NACK centrally.
    pub fn handshake(&self, session: u32, params: SessionParams) -> Result<(), ControlError> {
        self.request(
            "handshake",
            &ControlMessage::Syn { session, params },
            |msg| match msg {
                ControlMessage::SynAck { .. } => Some(()),
                _ => None,
            },
        )
    }

    /// Send one heartbeat and wait up to `timeout` for its ack.
    pub fn heartbeat(&self, session: u32, seq: u64, timeout: Duration) -> io::Result<bool> {
        self.socket
            .send(&ControlMessage::Heartbeat { session, seq }.encode())?;
        let mut buf = [0u8; 256];
        let deadline = self.clock.now() + timeout;
        loop {
            let remaining = deadline.saturating_sub(self.clock.now());
            if remaining.is_zero() {
                return Ok(false);
            }
            self.socket.set_read_timeout(Some(remaining))?;
            match self.socket.recv(&mut buf) {
                Ok(len) => match ControlMessage::decode(&buf[..len]) {
                    Ok(ControlMessage::HeartbeatAck {
                        session: s,
                        seq: got,
                    }) if s == session && got == seq => return Ok(true),
                    // The receiver NACKs control traffic for a session
                    // it evicted: no ack is ever coming, report the
                    // miss immediately instead of waiting it out.
                    Ok(ControlMessage::SynNack { session: s, .. }) if s == session => {
                        return Ok(false)
                    }
                    _ => {}
                },
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::ConnectionRefused =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetch a mid-run estimate snapshot without finalizing anything:
    /// per-session (`scope: Session`) or merged across every live
    /// session on the receiver (`scope: Fleet`). An old receiver that
    /// predates the message drops it as an unknown type, so this fails
    /// as [`ControlError::Unreachable`] after the retry budget — the
    /// run itself is unaffected.
    pub fn fetch_estimate(
        &self,
        session: u32,
        scope: EstimateScope,
    ) -> Result<EstimateReport, ControlError> {
        let req = ControlMessage::EstimateRequest { session, scope };
        self.request("estimate", &req, |msg| match msg {
            ControlMessage::EstimateReply {
                scope: got,
                sessions,
                counters,
                delay,
                ..
            } if got == scope => Some(EstimateReport {
                scope: got,
                sessions,
                estimates: estimates_from_counters(&counters),
                delay_samples: delay.samples,
                delay_p50_secs: delay.p50_secs,
                delay_p99_secs: delay.p99_secs,
            }),
            _ => None,
        })
    }

    /// FIN, then pull every report chunk, then the closing ack.
    /// Returns the receiver's summary and the full record list.
    pub fn fetch_report(
        &self,
        session: u32,
        probes_sent: u64,
        packets_sent: u64,
    ) -> Result<(ReportSummary, Vec<ReportRecord>), ControlError> {
        let fin = ControlMessage::Fin {
            session,
            probes_sent,
            packets_sent,
        };
        let (total_chunks, summary) = self.request("FIN", &fin, |msg| match msg {
            ControlMessage::FinAck {
                total_chunks,
                summary,
                ..
            } => Some((total_chunks, summary)),
            _ => None,
        })?;

        let mut records = Vec::new();
        for want in 0..total_chunks {
            let req = ControlMessage::ReportRequest {
                session,
                chunk: want,
            };
            let chunk_records = self.request("report chunk", &req, |msg| match msg {
                ControlMessage::ReportChunk { chunk, records, .. } if chunk == want => {
                    Some(records)
                }
                _ => None,
            })?;
            records.extend(chunk_records);
            if let Some(m) = &self.metrics {
                m.counter("report_chunks_fetched").inc();
            }
        }

        // Closing ack: fire a few copies and move on — if all are lost
        // the receiver still exits via its idle watchdog.
        let bye = ControlMessage::ReportAck {
            session,
            chunk: total_chunks,
        }
        .encode();
        for _ in 0..3 {
            let _ = self.socket.send(&bye);
        }
        Ok((summary, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControlConfig {
        ControlConfig::new("127.0.0.1:9".parse().unwrap())
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let mut c = cfg();
        c.retry_base = Duration::from_millis(10);
        c.retry_cap = Duration::from_millis(65);
        let delays: Vec<u64> = Backoff::new(&c)
            .take(5)
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![10, 20, 40, 65, 65]);
    }

    #[test]
    fn request_deadline_sums_attempts() {
        let mut c = cfg();
        c.retry_base = Duration::from_millis(10);
        c.retry_cap = Duration::from_millis(40);
        c.max_attempts = 4;
        // 10 + 20 + 40 + 40
        assert_eq!(c.request_deadline(), Duration::from_millis(110));
    }

    #[test]
    fn unreachable_peer_fails_after_budget() {
        // Port 9 (discard) on loopback: nothing answers. Tight budget so
        // the test stays fast.
        let mut c = cfg();
        c.retry_base = Duration::from_millis(5);
        c.retry_cap = Duration::from_millis(10);
        c.max_attempts = 3;
        let client = ControlClient::connect(c, None).unwrap();
        let started = std::time::Instant::now();
        let err = client
            .handshake(
                1,
                SessionParams {
                    n_slots: 10,
                    slot_ns: 5_000_000,
                    probe_packets: 3,
                    packet_bytes: 600,
                    p: 0.3,
                    improved: false,
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, ControlError::Unreachable { attempts: 3, .. }),
            "{err}"
        );
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn garbage_and_foreign_replies_are_counted_not_silent() {
        // A confused peer answers every request with undecodable noise
        // plus a well-formed reply for the wrong session. The request
        // still times out, but the failure mode must be visible in the
        // metrics rather than indistinguishable from a dead peer.
        let peer = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let peer_addr = peer.local_addr().unwrap();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let fake = std::thread::spawn(move || {
            peer.set_read_timeout(Some(Duration::from_millis(20)))
                .unwrap();
            let mut buf = [0u8; 2048];
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok((_, from)) = peer.recv_from(&mut buf) {
                    let _ = peer.send_to(b"\xFFnot a control message", from);
                    let wrong = ControlMessage::SynAck { session: 999 }.encode();
                    let _ = peer.send_to(&wrong, from);
                }
            }
        });

        let mut c = ControlConfig::new(peer_addr);
        c.retry_base = Duration::from_millis(30);
        c.retry_cap = Duration::from_millis(30);
        c.max_attempts = 2;
        let metrics = std::sync::Arc::new(Registry::new("ctl"));
        let client = ControlClient::connect(c, Some(metrics.clone())).unwrap();
        let err = client
            .handshake(
                1,
                SessionParams {
                    n_slots: 10,
                    slot_ns: 5_000_000,
                    probe_packets: 3,
                    packet_bytes: 600,
                    p: 0.3,
                    improved: false,
                },
            )
            .unwrap_err();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        fake.join().unwrap();
        assert!(matches!(err, ControlError::Unreachable { .. }), "{err}");
        assert!(
            metrics.counter("control_decode_errors").get() >= 1,
            "undecodable replies must be counted"
        );
        assert!(
            metrics.counter("control_foreign_session").get() >= 1,
            "wrong-session replies must be counted"
        );
    }
}
