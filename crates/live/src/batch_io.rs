//! Batched UDP I/O for the live datapath.
//!
//! The live tool's throughput ceiling is syscall overhead: one
//! `recv_from` per probe on the receiver, one `send` per packet on the
//! sender. On Linux this module batches both directions — `recvmmsg`
//! drains up to [`BatchReceiver`]'s capacity in one syscall into a
//! preallocated buffer ring, `sendmmsg` pushes a whole probe train in
//! one — with **zero per-datagram heap allocation**: every buffer,
//! iovec, and sockaddr lives in the struct and is reused across calls.
//!
//! The workspace is fully offline (no `libc` crate), so the two syscalls
//! are declared directly against the C library in a small `sys` module,
//! gated on `#[cfg(target_os = "linux")]`. Every other platform — and
//! any caller that asks for [`IoMode::Fallback`] — gets a portable
//! one-datagram path over plain `std::net::UdpSocket` calls with the
//! *same* API, so the receiver and sender code is identical on both
//! paths and differential tests can force either one.
//!
//! A third tier sits above batching: **segmentation offload**. In
//! [`IoMode::Gso`] the sender hands the kernel one flat super-datagram
//! per `sendmsg` with a `UDP_SEGMENT` cmsg and lets the kernel split it
//! into wire packets (up to [`crate::cmsg::MAX_GSO_SEGMENTS`] per
//! call), and the receiver enables `SO_TIMESTAMPING` so every datagram
//! carries the kernel's software RX stamp instead of a userspace
//! timestamp taken after scheduler noise. [`IoMode::GsoGro`] adds
//! `UDP_GRO` on the receive side: the ring's slots grow to
//! super-datagram size and coalesced reads are split back into logical
//! datagrams by the cmsg-reported segment size (tail segment included)
//! before the caller ever sees them — `datagram(i)` indexes logical
//! datagrams on every path. Offload support is probed at runtime
//! ([`kernel_offload_caps`]); a send the kernel refuses (`EINVAL`/`EIO`
//! — typical for missing offload support) flips the sender back to the
//! `sendmmsg` path permanently for that socket, so the offload tier
//! degrades to the batched tier instead of failing.
//!
//! Behaviour contract: all paths deliver the same datagrams with the
//! same payloads; only the number of syscalls (and the granularity and
//! source of the timestamps the *caller* takes) differs.
//! `crates/live/tests/batch_differential.rs` holds the receiver to
//! byte-identical reports across the two paths.

use crate::cmsg;
use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Datagrams drained per `recvmmsg` call (and the buffer-ring size).
pub const DEFAULT_RECV_BATCH: usize = 32;

/// Bytes reserved per ring slot. Probe packets are a few hundred bytes
/// and the largest control message ([`badabing_wire::control::MAX_CONTROL_BYTES`])
/// is ~1.1 KiB, so one page-and-change per slot is comfortable.
pub const DATAGRAM_BYTES: usize = 4096;

/// Which I/O implementation a [`BatchReceiver`] / [`BatchSender`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Batched syscalls where the platform has them (Linux), the
    /// portable path elsewhere.
    #[default]
    Auto,
    /// Batched syscalls. On platforms without them this quietly behaves
    /// like [`IoMode::Fallback`] so cross-platform tests still run.
    Batched,
    /// The portable one-datagram-per-syscall path, everywhere.
    Fallback,
    /// The offload tier, TX side: `UDP_SEGMENT` super-datagram sends
    /// plus kernel software RX timestamps (`SO_TIMESTAMPING`) on the
    /// receive ring. Falls back to the batched tier per-socket when the
    /// kernel refuses the offload, and to the portable path off Linux.
    Gso,
    /// The full offload tier: [`IoMode::Gso`] plus `UDP_GRO` receive
    /// coalescing — the receive ring grows super-datagram slots and
    /// splits coalesced reads by the cmsg segment size.
    GsoGro,
}

impl IoMode {
    /// Whether this mode resolves to the batched implementation here.
    pub fn use_batched(self) -> bool {
        match self {
            IoMode::Auto | IoMode::Batched | IoMode::Gso | IoMode::GsoGro => {
                cfg!(target_os = "linux")
            }
            IoMode::Fallback => false,
        }
    }

    /// Whether senders should attempt `UDP_SEGMENT` offload sends.
    pub fn wants_gso(self) -> bool {
        matches!(self, IoMode::Gso | IoMode::GsoGro)
    }

    /// Whether receive rings should enable `UDP_GRO` coalescing.
    pub fn wants_gro(self) -> bool {
        matches!(self, IoMode::GsoGro)
    }

    /// Whether receive rings should enable kernel software RX
    /// timestamps (`SO_TIMESTAMPING`). Both offload modes do: the
    /// kernel stamp is taken before scheduler noise, which is the whole
    /// point of the tier for delay measurement.
    pub fn wants_kernel_stamps(self) -> bool {
        matches!(self, IoMode::Gso | IoMode::GsoGro)
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IoMode::Auto),
            "batched" => Ok(IoMode::Batched),
            "fallback" => Ok(IoMode::Fallback),
            "gso" => Ok(IoMode::Gso),
            "gso+gro" | "gso-gro" => Ok(IoMode::GsoGro),
            other => Err(format!(
                "unknown io mode {other:?} (expected auto|batched|fallback|gso|gso+gro)"
            )),
        }
    }
}

/// Placeholder source address for the (never-observed) case of a
/// recvmmsg entry with an unparseable sockaddr.
fn unspecified() -> SocketAddr {
    SocketAddr::from(([0, 0, 0, 0], 0))
}

/// Bytes per ring slot when `UDP_GRO` is on: a coalesced read can be a
/// whole super-datagram (up to the UDP payload maximum).
pub const GRO_SLOT_BYTES: usize = 65_536;

/// One logical datagram of the last recv: a window into a ring slot.
/// Without GRO every slot is exactly one window; a coalesced read is
/// split into one window per segment.
#[derive(Debug, Clone, Copy)]
struct View {
    slot: u32,
    off: u32,
    len: u32,
}

/// A preallocated receive ring: one `recv` call fills up to `cap`
/// datagram slots (one syscall on the batched path, exactly one datagram
/// on the fallback path) with no allocation. Indices handed to
/// [`BatchReceiver::datagram`] address *logical* datagrams: under GRO a
/// single slot may carry many.
pub struct BatchReceiver {
    cap: usize,
    slot: usize,
    bufs: Vec<u8>,
    lens: Vec<usize>,
    srcs: Vec<SocketAddr>,
    truncs: Vec<bool>,
    /// Per-slot kernel RX stamp, expressed as its age in nanoseconds
    /// relative to the wall sample taken right after the syscall
    /// (`u64::MAX` = no kernel stamp for that slot).
    ages: Vec<u64>,
    /// Logical datagrams of the last recv, in arrival order.
    views: Vec<View>,
    count: usize,
    batched: bool,
    want_gro: bool,
    want_stamps: bool,
    gro_on: bool,
    stamps_on: bool,
    configured: bool,
    syscalls: u64,
    datagrams: u64,
    truncated: u64,
    gro_segments_split: u64,
    cmsg_decode_errors: u64,
    #[cfg(target_os = "linux")]
    ctrl: Vec<u8>,
    #[cfg(target_os = "linux")]
    raw: RawRing,
}

#[cfg(target_os = "linux")]
struct RawRing {
    hdrs: Vec<sys::mmsghdr>,
    iovs: Vec<sys::iovec>,
    addrs: Vec<sys::sockaddr_storage>,
}

impl BatchReceiver {
    /// A ring of `cap` slots of [`DATAGRAM_BYTES`] each
    /// ([`GRO_SLOT_BYTES`] when the mode coalesces).
    pub fn new(cap: usize, mode: IoMode) -> Self {
        assert!(cap >= 1, "batch capacity must be at least 1");
        let batched = mode.use_batched();
        let want_gro = mode.wants_gro() && batched;
        let want_stamps = mode.wants_kernel_stamps() && batched;
        let slot = if want_gro {
            GRO_SLOT_BYTES
        } else {
            DATAGRAM_BYTES
        };
        // A GRO slot splits into at most MAX_GSO_SEGMENTS logical
        // datagrams (the kernel's own coalescing cap); one extra slot
        // of headroom absorbs a misbehaving kernel via tail-merge
        // without ever reallocating mid-drain.
        let max_views = if want_gro {
            cap * (cmsg::MAX_GSO_SEGMENTS + 1)
        } else {
            cap
        };
        let mut out = Self {
            cap,
            slot,
            bufs: vec![0u8; cap * slot],
            lens: vec![0; cap],
            srcs: vec![unspecified(); cap],
            truncs: vec![false; cap],
            ages: vec![u64::MAX; cap],
            views: Vec::with_capacity(max_views),
            count: 0,
            batched,
            want_gro,
            want_stamps,
            gro_on: false,
            stamps_on: false,
            configured: false,
            syscalls: 0,
            datagrams: 0,
            truncated: 0,
            gro_segments_split: 0,
            cmsg_decode_errors: 0,
            #[cfg(target_os = "linux")]
            ctrl: if want_gro || want_stamps {
                vec![0u8; cap * cmsg::RECV_CONTROL_BYTES]
            } else {
                Vec::new()
            },
            #[cfg(target_os = "linux")]
            raw: RawRing {
                // SAFETY: all-zero bytes are a valid value for these
                // plain-data C structs; every field is rewritten before
                // the kernel sees it.
                hdrs: vec![unsafe { std::mem::zeroed() }; cap],
                iovs: vec![unsafe { std::mem::zeroed() }; cap],
                addrs: vec![unsafe { std::mem::zeroed() }; cap],
            },
        };
        #[cfg(target_os = "linux")]
        out.init_ring();
        out
    }

    /// Point every mmsghdr at its iovec/addr slot once, at construction.
    /// `recv` then only has to refresh the fields the kernel overwrites
    /// (`msg_namelen`, `msg_flags`, `msg_len`) instead of rebuilding the
    /// whole ring per syscall — this is measurable at millions of
    /// packets per second.
    #[cfg(target_os = "linux")]
    fn init_ring(&mut self) {
        let slot = self.slot;
        for i in 0..self.cap {
            self.raw.iovs[i] = sys::iovec {
                iov_base: self.bufs[i * slot..].as_mut_ptr(),
                iov_len: slot,
            };
        }
        let iovs = self.raw.iovs.as_mut_ptr();
        let addrs = self.raw.addrs.as_mut_ptr();
        let want_ctrl = !self.ctrl.is_empty();
        for (i, hdr) in self.raw.hdrs.iter_mut().enumerate() {
            // SAFETY: all three pointers index into the raw ring's own
            // vectors. The vectors are never resized after construction,
            // so their heap allocations — which is what these pointers
            // address — stay put even if the `BatchReceiver` itself
            // moves. Pointing at them once here is sound for the
            // struct's whole lifetime.
            *hdr = sys::mmsghdr {
                msg_hdr: sys::msghdr {
                    msg_name: unsafe { (*addrs.add(i)).bytes.as_mut_ptr() },
                    msg_namelen: sys::SOCKADDR_STORAGE_BYTES as u32,
                    msg_iov: unsafe { iovs.add(i) },
                    msg_iovlen: 1,
                    msg_control: if want_ctrl {
                        self.ctrl[i * cmsg::RECV_CONTROL_BYTES..].as_mut_ptr() as *mut _
                    } else {
                        std::ptr::null_mut()
                    },
                    msg_controllen: if want_ctrl {
                        cmsg::RECV_CONTROL_BYTES
                    } else {
                        0
                    },
                    msg_flags: 0,
                },
                msg_len: 0,
            };
        }
    }

    /// Whether this ring resolved to the batched implementation.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Enable the requested socket options the first time the ring sees
    /// its socket. Failures degrade stickily (the flag stays off and is
    /// never retried): an old kernel without `UDP_GRO` still receives,
    /// it just never coalesces, and timestamp consumers fall back to the
    /// userspace clock.
    #[cfg(target_os = "linux")]
    fn ensure_socket_setup(&mut self, socket: &UdpSocket) {
        use std::os::fd::AsRawFd;
        if self.configured {
            return;
        }
        self.configured = true;
        let fd = socket.as_raw_fd();
        if self.want_stamps {
            let flags: u32 = cmsg::SOF_TIMESTAMPING_RX_SOFTWARE | cmsg::SOF_TIMESTAMPING_SOFTWARE;
            // SAFETY: passes a 4-byte value the kernel only reads.
            let rc = unsafe {
                sys::setsockopt(
                    fd,
                    sys::SOL_SOCKET,
                    cmsg::SO_TIMESTAMPING,
                    &flags as *const u32 as *const _,
                    4,
                )
            };
            self.stamps_on = rc == 0;
        }
        if self.want_gro {
            let on: i32 = 1;
            // SAFETY: passes a 4-byte value the kernel only reads.
            let rc = unsafe {
                sys::setsockopt(
                    fd,
                    cmsg::SOL_UDP,
                    cmsg::UDP_GRO,
                    &on as *const i32 as *const _,
                    4,
                )
            };
            self.gro_on = rc == 0;
        }
    }

    /// Receive into the ring: blocks per the socket's read timeout for
    /// the first datagram, then (batched path) drains whatever else is
    /// already queued, up to capacity, without blocking again
    /// (`MSG_WAITFORONE`). Returns the number of **logical** datagrams
    /// now readable via [`BatchReceiver::datagram`] — under GRO one read
    /// may split into many. Timeouts surface as `WouldBlock`/`TimedOut`
    /// exactly like `recv_from`.
    pub fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        self.views.clear();
        if !self.batched {
            let (len, src) = socket.recv_from(&mut self.bufs[..self.slot])?;
            self.lens[0] = len;
            self.srcs[0] = src;
            // `recv_from` silently clips oversized datagrams to the
            // buffer and reports the clipped length, so a slot-filling
            // read is the only truncation signal this path has. Probe
            // and control payloads are all well under a slot, so a
            // full slot can only be an oversized (clipped) datagram.
            self.truncs[0] = len >= self.slot;
            if self.truncs[0] {
                self.truncated += 1;
            }
            self.ages[0] = u64::MAX;
            self.views.push(View {
                slot: 0,
                off: 0,
                len: len.min(self.slot) as u32,
            });
            self.count = 1;
            self.syscalls += 1;
            self.datagrams += 1;
            return Ok(1);
        }
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            self.ensure_socket_setup(socket);
            let want_ctrl = !self.ctrl.is_empty();
            // The ring was wired up once in `init_ring`; per call only
            // the fields the kernel overwrites need resetting. The
            // kernel rewrites each sockaddr before reporting it, so the
            // address slots themselves don't need clearing either.
            for hdr in &mut self.raw.hdrs {
                hdr.msg_hdr.msg_namelen = sys::SOCKADDR_STORAGE_BYTES as u32;
                hdr.msg_hdr.msg_flags = 0;
                hdr.msg_len = 0;
                if want_ctrl {
                    // The kernel shrinks controllen to what it wrote;
                    // restore the full window (the pointer is untouched).
                    hdr.msg_hdr.msg_controllen = cmsg::RECV_CONTROL_BYTES;
                }
            }
            // SAFETY: hdrs/iovs/addrs (and ctrl when wired) are `cap`
            // valid, live entries; the fd is owned by `socket` which
            // outlives the call.
            let n = unsafe {
                sys::recvmmsg(
                    socket.as_raw_fd(),
                    self.raw.hdrs.as_mut_ptr(),
                    self.cap as u32,
                    sys::MSG_WAITFORONE,
                    std::ptr::null_mut(),
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            let n = n as usize;
            // One wall sample right after the syscall maps kernel
            // CLOCK_REALTIME stamps into the caller's clock domain as
            // ages ("this packet hit the NIC stack X ns before now"),
            // which keeps the measurement path monotonic-clock only.
            let wall = if self.stamps_on && n > 0 {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .ok()
            } else {
                None
            };
            for i in 0..n {
                self.lens[i] = self.raw.hdrs[i].msg_len as usize;
                self.srcs[i] = sys::parse_sockaddr(&self.raw.addrs[i]).unwrap_or_else(unspecified);
                // The kernel flags clipped datagrams explicitly here.
                self.truncs[i] = self.raw.hdrs[i].msg_hdr.msg_flags & sys::MSG_TRUNC != 0;
                if self.truncs[i] {
                    self.truncated += 1;
                }
                self.ages[i] = u64::MAX;
                let len = self.lens[i].min(self.slot);
                let mut seg = 0usize;
                if want_ctrl {
                    let clen = self.raw.hdrs[i]
                        .msg_hdr
                        .msg_controllen
                        .min(cmsg::RECV_CONTROL_BYTES);
                    let ctrl = &self.ctrl[i * cmsg::RECV_CONTROL_BYTES..][..clen];
                    let mut it = cmsg::CmsgIter::new(ctrl);
                    for c in it.by_ref() {
                        match (c.level, c.ty) {
                            (sys::SOL_SOCKET, cmsg::SCM_TIMESTAMPING) => {
                                // An all-zero stamp means "not stamped"
                                // (only one of the three timespecs is
                                // ever filled) — that is a fallback, not
                                // a decode error.
                                if let (Some(stamp), Some(w)) =
                                    (cmsg::parse_scm_timestamping(c.data), wall)
                                {
                                    let age = w.saturating_sub(stamp).as_nanos();
                                    self.ages[i] = age.min(u64::MAX as u128) as u64;
                                }
                            }
                            (cmsg::SOL_UDP, cmsg::UDP_GRO) => {
                                match cmsg::parse_gro_segment_size(c.data) {
                                    Some(s) => seg = s,
                                    None => self.cmsg_decode_errors += 1,
                                }
                            }
                            _ => {}
                        }
                    }
                    if it.malformed {
                        self.cmsg_decode_errors += 1;
                    }
                }
                if seg > 0 && seg < len && !self.truncs[i] {
                    // A coalesced super-datagram: split it into logical
                    // datagrams at the kernel-reported segment size. The
                    // last segment may be short (a genuinely smaller
                    // trailing packet).
                    let mut produced: u64 = 0;
                    for (off, seg_len) in cmsg::segments(len, seg) {
                        if self.views.len() == self.views.capacity() {
                            // A kernel coalescing beyond its own
                            // documented cap: merge the remainder into
                            // the final view rather than reallocating
                            // (zero-alloc drain contract) and flag it.
                            self.cmsg_decode_errors += 1;
                            let last = self.views.last_mut().expect("view capacity is nonzero");
                            last.len = (len - last.off as usize) as u32;
                            break;
                        }
                        self.views.push(View {
                            slot: i as u32,
                            off: off as u32,
                            len: seg_len as u32,
                        });
                        produced += 1;
                    }
                    if produced > 1 {
                        self.gro_segments_split += produced;
                    }
                } else {
                    self.views.push(View {
                        slot: i as u32,
                        off: 0,
                        len: len as u32,
                    });
                }
            }
            self.count = self.views.len();
            self.syscalls += 1;
            self.datagrams += self.count as u64;
            Ok(self.count)
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("batched mode never resolves on this platform")
    }

    /// Logical datagram `i` of the last [`BatchReceiver::recv`] (panics
    /// past its return value).
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        assert!(i < self.count, "datagram index {i} >= batch {}", self.count);
        let v = self.views[i];
        let start = v.slot as usize * self.slot + v.off as usize;
        (
            &self.bufs[start..start + v.len as usize],
            self.srcs[v.slot as usize],
        )
    }

    /// Whether datagram `i` of the last recv was clipped to the ring
    /// slot (its payload is incomplete — drop it, don't decode it).
    pub fn is_truncated(&self, i: usize) -> bool {
        assert!(i < self.count, "datagram index {i} >= batch {}", self.count);
        self.truncs[self.views[i].slot as usize]
    }

    /// Kernel RX stamp of datagram `i` of the last recv, as its age in
    /// nanoseconds at the moment `recv` returned (`None` when the kernel
    /// didn't stamp it — stamping off, unsupported, or the datagram was
    /// queued before stamping was enabled). Segments split from one GRO
    /// super-datagram share their slot's stamp.
    pub fn stamp_age_ns(&self, i: usize) -> Option<u64> {
        assert!(i < self.count, "datagram index {i} >= batch {}", self.count);
        let age = self.ages[self.views[i].slot as usize];
        (age != u64::MAX).then_some(age)
    }

    /// Whether kernel RX timestamping actually engaged on the socket.
    pub fn kernel_stamps_enabled(&self) -> bool {
        self.stamps_on
    }

    /// Whether GRO coalescing actually engaged on the socket.
    pub fn gro_enabled(&self) -> bool {
        self.gro_on
    }

    /// Receive syscalls issued so far.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Logical datagrams received so far (each GRO segment counts one).
    pub fn datagrams(&self) -> u64 {
        self.datagrams
    }

    /// Datagrams received clipped (see [`BatchReceiver::is_truncated`]).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Logical datagrams produced by splitting GRO super-datagrams (only
    /// counts reads that actually coalesced two or more segments).
    pub fn gro_segments_split(&self) -> u64 {
        self.gro_segments_split
    }

    /// Control messages (or GRO splits) that failed to decode sanely.
    pub fn cmsg_decode_errors(&self) -> u64 {
        self.cmsg_decode_errors
    }
}

/// A batched sender for a **connected** `UdpSocket`: one `send` call
/// hands a prefix of the given packets to the kernel (all of them in one
/// `sendmmsg` on the batched path, exactly one on the fallback path)
/// with no allocation.
pub struct BatchSender {
    cap: usize,
    batched: bool,
    /// Whether the mode asks for `UDP_SEGMENT` offload at all.
    gso: bool,
    /// Sticky health of the offload: the first send the kernel rejects
    /// with "no offload here" (`EIO`/`EINVAL`/`EOPNOTSUPP`) clears this
    /// and every later train goes straight to `sendmmsg`.
    gso_ok: bool,
    syscalls: u64,
    datagrams: u64,
    gso_sends: u64,
    #[cfg(target_os = "linux")]
    hdrs: Vec<sys::mmsghdr>,
    #[cfg(target_os = "linux")]
    iovs: Vec<sys::iovec>,
    #[cfg(target_os = "linux")]
    gso_cmsg: [u8; cmsg::space(2)],
}

impl BatchSender {
    /// A sender batching up to `cap` datagrams per syscall.
    pub fn new(cap: usize, mode: IoMode) -> Self {
        assert!(cap >= 1, "batch capacity must be at least 1");
        let batched = mode.use_batched();
        Self {
            cap,
            batched,
            gso: mode.wants_gso() && batched,
            gso_ok: true,
            syscalls: 0,
            datagrams: 0,
            gso_sends: 0,
            #[cfg(target_os = "linux")]
            hdrs: vec![unsafe { std::mem::zeroed() }; cap],
            #[cfg(target_os = "linux")]
            iovs: vec![unsafe { std::mem::zeroed() }; cap],
            #[cfg(target_os = "linux")]
            gso_cmsg: [0u8; cmsg::space(2)],
        }
    }

    /// Whether this sender resolved to the batched implementation.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Send a prefix of `pkts` on the connected socket. Returns how many
    /// datagrams the kernel accepted (always ≥ 1 on `Ok` for non-empty
    /// input; possibly fewer than `pkts.len()`, callers loop). An error
    /// always refers to `pkts[0]`: the batched syscall reports an error
    /// only when it occurs on the *first* datagram, later failures
    /// surface as a short count — which matches the fallback path's
    /// one-at-a-time semantics, so per-packet error accounting
    /// (`ConnectionRefused` skip-and-continue) is identical on both.
    pub fn send(&mut self, socket: &UdpSocket, pkts: &[&[u8]]) -> io::Result<usize> {
        if pkts.is_empty() {
            return Ok(0);
        }
        if !self.batched {
            socket.send(pkts[0])?;
            self.syscalls += 1;
            self.datagrams += 1;
            return Ok(1);
        }
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            let n = pkts.len().min(self.cap);
            for (iov, pkt) in self.iovs.iter_mut().zip(pkts).take(n) {
                // The kernel never writes through a send iovec; the cast
                // from shared to mut is only to satisfy the C signature.
                *iov = sys::iovec {
                    iov_base: pkt.as_ptr() as *mut u8,
                    iov_len: pkt.len(),
                };
            }
            let iovs = self.iovs.as_mut_ptr();
            for (i, hdr) in self.hdrs.iter_mut().take(n).enumerate() {
                *hdr = sys::mmsghdr {
                    msg_hdr: sys::msghdr {
                        msg_name: std::ptr::null_mut(), // connected socket
                        msg_namelen: 0,
                        // SAFETY: indexes this sender's own iovec vector.
                        msg_iov: unsafe { iovs.add(i) },
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: `n` valid header entries; fd owned by `socket`.
            let sent =
                unsafe { sys::sendmmsg(socket.as_raw_fd(), self.hdrs.as_mut_ptr(), n as u32, 0) };
            if sent < 0 {
                return Err(io::Error::last_os_error());
            }
            self.syscalls += 1;
            self.datagrams += sent as u64;
            Ok(sent as usize)
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("batched mode never resolves on this platform")
    }

    /// Like [`BatchSender::send`], but the packets are `count` equal
    /// [`seg_bytes`]-sized segments of one flat buffer — the shape of a
    /// probe train encoded into a single reused allocation, so the
    /// steady-state TX path needs no per-train slice-of-slices. Same
    /// prefix/short-count/error semantics as `send`.
    ///
    /// On a GSO mode this is the offload entry point: the whole prefix
    /// goes down as **one** `sendmsg` carrying a `UDP_SEGMENT` cmsg and
    /// the kernel segments it, clamped to the kernel's own limits (64
    /// segments, 64 KiB total). If the path reports it can't offload
    /// (`EIO`/`EINVAL`/`EOPNOTSUPP`) the sender degrades stickily to
    /// `sendmmsg` and stays correct.
    ///
    /// [`seg_bytes`]: Self::send_segments
    pub fn send_segments(
        &mut self,
        socket: &UdpSocket,
        buf: &[u8],
        seg_bytes: usize,
        count: usize,
    ) -> io::Result<usize> {
        assert!(
            count * seg_bytes <= buf.len(),
            "train overruns its buffer: {count} x {seg_bytes} > {}",
            buf.len()
        );
        if count == 0 {
            return Ok(0);
        }
        if !self.batched {
            socket.send(&buf[..seg_bytes])?;
            self.syscalls += 1;
            self.datagrams += 1;
            return Ok(1);
        }
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            if self.gso
                && self.gso_ok
                && count > 1
                && seg_bytes > 0
                && seg_bytes <= u16::MAX as usize
            {
                if let Some(result) = self.send_gso(socket, buf, seg_bytes, count) {
                    return result;
                }
                // Offload refused: degraded for good, fall through to
                // the sendmmsg path below for this and all later trains.
            }
            let n = count.min(self.cap);
            for i in 0..n {
                // The kernel never writes through a send iovec; the cast
                // from shared to mut is only to satisfy the C signature.
                self.iovs[i] = sys::iovec {
                    iov_base: buf[i * seg_bytes..].as_ptr() as *mut u8,
                    iov_len: seg_bytes,
                };
            }
            let iovs = self.iovs.as_mut_ptr();
            for (i, hdr) in self.hdrs.iter_mut().take(n).enumerate() {
                *hdr = sys::mmsghdr {
                    msg_hdr: sys::msghdr {
                        msg_name: std::ptr::null_mut(), // connected socket
                        msg_namelen: 0,
                        // SAFETY: indexes this sender's own iovec vector.
                        msg_iov: unsafe { iovs.add(i) },
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: `n` valid header entries; fd owned by `socket`.
            let sent =
                unsafe { sys::sendmmsg(socket.as_raw_fd(), self.hdrs.as_mut_ptr(), n as u32, 0) };
            if sent < 0 {
                return Err(io::Error::last_os_error());
            }
            self.syscalls += 1;
            self.datagrams += sent as u64;
            Ok(sent as usize)
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("batched mode never resolves on this platform")
    }

    /// The `UDP_SEGMENT` fast path: one `sendmsg` of a clamped prefix of
    /// the flat buffer, segmented by the kernel. Returns `None` when the
    /// kernel signals the path can't offload — the caller falls through
    /// to `sendmmsg` (and `gso_ok` stays cleared so it never retries) —
    /// or when the clamp leaves a single segment, where offload buys
    /// nothing. Real send errors (e.g. `ECONNREFUSED`) come back as
    /// `Some(Err(..))` so per-packet error accounting matches the other
    /// paths: an error always refers to the first datagram.
    #[cfg(target_os = "linux")]
    fn send_gso(
        &mut self,
        socket: &UdpSocket,
        buf: &[u8],
        seg_bytes: usize,
        count: usize,
    ) -> Option<io::Result<usize>> {
        use std::os::fd::AsRawFd;
        let k = count
            .min(self.cap)
            .min(cmsg::MAX_GSO_SEGMENTS)
            .min(cmsg::MAX_GSO_BYTES / seg_bytes);
        if k <= 1 {
            return None;
        }
        let total = k * seg_bytes;
        // The kernel never writes through a send iovec; the cast from
        // shared to mut is only to satisfy the C signature.
        self.iovs[0] = sys::iovec {
            iov_base: buf.as_ptr() as *mut u8,
            iov_len: total,
        };
        let clen = cmsg::write(
            &mut self.gso_cmsg,
            cmsg::SOL_UDP,
            cmsg::UDP_SEGMENT,
            &(seg_bytes as u16).to_ne_bytes(),
        );
        let hdr = sys::msghdr {
            msg_name: std::ptr::null_mut(), // connected socket
            msg_namelen: 0,
            msg_iov: self.iovs.as_mut_ptr(),
            msg_iovlen: 1,
            msg_control: self.gso_cmsg.as_mut_ptr() as *mut _,
            msg_controllen: clen,
            msg_flags: 0,
        };
        // SAFETY: the iovec points at `total` live bytes of `buf`, the
        // control buffer at `clen` live bytes of `gso_cmsg`; the fd is
        // owned by `socket` which outlives the call.
        let sent = unsafe { sys::sendmsg(socket.as_raw_fd(), &hdr, 0) };
        if sent < 0 {
            let err = io::Error::last_os_error();
            return match err.raw_os_error() {
                // EIO(5) / EINVAL(22) / EOPNOTSUPP(95): this path can't
                // segment — not a datagram-level failure. Degrade.
                Some(5 | 22 | 95) => {
                    self.gso_ok = false;
                    None
                }
                _ => Some(Err(err)),
            };
        }
        // A short byte count is a short datagram count, rounded up: the
        // kernel segments every started segment.
        let accepted = (sent as usize).div_ceil(seg_bytes).clamp(1, k);
        self.syscalls += 1;
        self.gso_sends += 1;
        self.datagrams += accepted as u64;
        Some(Ok(accepted))
    }

    /// Send syscalls issued so far.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Datagrams handed to the kernel so far.
    pub fn datagrams(&self) -> u64 {
        self.datagrams
    }

    /// Trains submitted through the `UDP_SEGMENT` offload so far.
    pub fn gso_sends(&self) -> u64 {
        self.gso_sends
    }
}

/// Best-effort enlargement of the socket's kernel buffers (no-op off
/// Linux). High-rate loopback benches overflow the default `rcvbuf`
/// long before the datapath is the bottleneck; failures are ignored —
/// this is an optimization, never a correctness requirement.
pub fn set_buffer_sizes(socket: &UdpSocket, recv_bytes: usize, send_bytes: usize) {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        for (opt, bytes) in [(sys::SO_RCVBUF, recv_bytes), (sys::SO_SNDBUF, send_bytes)] {
            let val = bytes as i32;
            // SAFETY: setsockopt reads exactly 4 bytes from a valid i32.
            unsafe {
                sys::setsockopt(
                    socket.as_raw_fd(),
                    sys::SOL_SOCKET,
                    opt,
                    &val as *const i32 as *const core::ffi::c_void,
                    std::mem::size_of::<i32>() as u32,
                );
            }
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (socket, recv_bytes, send_bytes);
    }
}

/// What the running kernel's UDP stack can actually do, probed at
/// runtime on a scratch socket. CI on old kernels uses this to record a
/// skip instead of failing the offload benches; tests gate on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffloadCaps {
    /// `UDP_SEGMENT` (sender-side GSO) accepted.
    pub udp_segment: bool,
    /// `UDP_GRO` (receiver-side coalescing) accepted.
    pub udp_gro: bool,
    /// `SO_TIMESTAMPING` with software RX stamps accepted.
    pub so_timestamping: bool,
}

impl OffloadCaps {
    /// Whether `--io gso` can engage its fast path here.
    pub fn gso_ready(&self) -> bool {
        self.udp_segment
    }

    /// Whether `--io gso+gro` can engage both directions here.
    pub fn gro_ready(&self) -> bool {
        self.udp_segment && self.udp_gro
    }
}

/// Probe the running kernel for the offload tier's prerequisites by
/// attempting each `setsockopt` on a throwaway loopback socket. Always
/// all-false off Linux (and when even binding fails).
pub fn kernel_offload_caps() -> OffloadCaps {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        let Ok(probe) = UdpSocket::bind("127.0.0.1:0") else {
            return OffloadCaps::default();
        };
        let fd = probe.as_raw_fd();
        let try_opt = |level: i32, opt: i32, val: i32| -> bool {
            // SAFETY: passes a 4-byte value the kernel only reads; the
            // fd stays owned by `probe` for the whole call.
            unsafe { sys::setsockopt(fd, level, opt, &val as *const i32 as *const _, 4) == 0 }
        };
        OffloadCaps {
            udp_segment: try_opt(cmsg::SOL_UDP, cmsg::UDP_SEGMENT, 1200),
            udp_gro: try_opt(cmsg::SOL_UDP, cmsg::UDP_GRO, 1),
            so_timestamping: try_opt(
                sys::SOL_SOCKET,
                cmsg::SO_TIMESTAMPING,
                (cmsg::SOF_TIMESTAMPING_RX_SOFTWARE | cmsg::SOF_TIMESTAMPING_SOFTWARE) as i32,
            ),
        }
    }
    #[cfg(not(target_os = "linux"))]
    OffloadCaps::default()
}

/// Hand-declared Linux syscall surface (the workspace builds offline,
/// without the `libc` crate). Layouts match the x86_64/aarch64 glibc
/// ABI; `repr(C)` reproduces the same padding the C definitions have.
#[cfg(target_os = "linux")]
mod sys {
    #![allow(non_camel_case_types)]

    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV6};

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    /// recvmmsg: block for the first datagram only, then drain
    /// non-blocking.
    pub const MSG_WAITFORONE: i32 = 0x10000;
    /// Set by the kernel in `msg_flags` when a datagram was clipped to
    /// the supplied buffer.
    pub const MSG_TRUNC: i32 = 0x20;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_RCVBUF: i32 = 8;
    pub const SO_SNDBUF: i32 = 7;
    pub const SOCKADDR_STORAGE_BYTES: usize = 128;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct iovec {
        pub iov_base: *mut u8,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct msghdr {
        pub msg_name: *mut u8,
        pub msg_namelen: u32,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut core::ffi::c_void,
        pub msg_controllen: usize,
        pub msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct mmsghdr {
        pub msg_hdr: msghdr,
        pub msg_len: u32,
    }

    /// Stand-in for `struct sockaddr_storage` (128 bytes, 8-aligned).
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct sockaddr_storage {
        pub bytes: [u8; SOCKADDR_STORAGE_BYTES],
    }

    extern "C" {
        pub fn recvmmsg(
            sockfd: i32,
            msgvec: *mut mmsghdr,
            vlen: u32,
            flags: i32,
            timeout: *mut core::ffi::c_void,
        ) -> i32;
        pub fn sendmmsg(sockfd: i32, msgvec: *mut mmsghdr, vlen: u32, flags: i32) -> i32;
        pub fn sendmsg(sockfd: i32, msg: *const msghdr, flags: i32) -> isize;
        pub fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    /// Decode a kernel-filled sockaddr (`sin_family` is native-endian,
    /// ports are network order).
    pub fn parse_sockaddr(ss: &sockaddr_storage) -> Option<SocketAddr> {
        let b = &ss.bytes;
        match u16::from_ne_bytes([b[0], b[1]]) {
            AF_INET => {
                let port = u16::from_be_bytes([b[2], b[3]]);
                Some(SocketAddr::from((
                    Ipv4Addr::new(b[4], b[5], b[6], b[7]),
                    port,
                )))
            }
            AF_INET6 => {
                let port = u16::from_be_bytes([b[2], b[3]]);
                let flowinfo = u32::from_ne_bytes([b[4], b[5], b[6], b[7]]);
                let mut addr = [0u8; 16];
                addr.copy_from_slice(&b[8..24]);
                let scope = u32::from_ne_bytes([b[24], b[25], b[26], b[27]]);
                Some(SocketAddr::V6(SocketAddrV6::new(
                    Ipv6Addr::from(addr),
                    port,
                    flowinfo,
                    scope,
                )))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        (rx, tx)
    }

    fn roundtrip(mode: IoMode) {
        let (rx, tx) = pair();
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 64 + i as usize]).collect();
        let pkts: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut sender = BatchSender::new(8, mode);
        let mut off = 0;
        while off < pkts.len() {
            off += sender.send(&tx, &pkts[off..]).unwrap();
        }
        assert_eq!(sender.datagrams(), 5);

        let mut ring = BatchReceiver::new(4, mode);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < 5 {
            let n = ring.recv(&rx).unwrap();
            assert!((1..=4).contains(&n));
            for i in 0..n {
                let (data, src) = ring.datagram(i);
                assert_eq!(src, tx.local_addr().unwrap());
                got.push(data.to_vec());
            }
        }
        // UDP loopback preserves order in practice, but only assert set
        // equality to stay robust.
        got.sort();
        let mut want = payloads.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(ring.datagrams(), 5);
        assert!(ring.syscalls() <= 5);

        // A drained socket times out like recv_from does.
        let err = ring.recv(&rx).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected timeout error: {err:?}"
        );
    }

    #[test]
    fn fallback_roundtrip() {
        roundtrip(IoMode::Fallback);
    }

    #[test]
    fn auto_roundtrip() {
        roundtrip(IoMode::Auto);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_mode_resolves_on_linux() {
        assert!(IoMode::Auto.use_batched());
        assert!(IoMode::Batched.use_batched());
        assert!(!IoMode::Fallback.use_batched());
        assert!(IoMode::Gso.use_batched());
        assert!(IoMode::GsoGro.use_batched());
        assert!(IoMode::Gso.wants_gso() && !IoMode::Gso.wants_gro());
        assert!(IoMode::GsoGro.wants_gso() && IoMode::GsoGro.wants_gro());
        assert!(IoMode::Gso.wants_kernel_stamps() && IoMode::GsoGro.wants_kernel_stamps());
        assert!(!IoMode::Batched.wants_gso() && !IoMode::Auto.wants_kernel_stamps());
    }

    #[test]
    fn io_mode_parses_offload_spellings() {
        assert_eq!("gso".parse::<IoMode>().unwrap(), IoMode::Gso);
        assert_eq!("gso+gro".parse::<IoMode>().unwrap(), IoMode::GsoGro);
        assert_eq!("gso-gro".parse::<IoMode>().unwrap(), IoMode::GsoGro);
        assert!("gro".parse::<IoMode>().is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_recv_drains_queued_datagrams_in_one_call() {
        let (rx, tx) = pair();
        // Queue 6 datagrams before the first recv: the batched ring must
        // pick up several per syscall (MSG_WAITFORONE drains what's
        // there), and far fewer syscalls than datagrams.
        for i in 0u8..6 {
            tx.send(&[i; 32]).unwrap();
        }
        // Let the loopback queue settle so all 6 are receivable.
        std::thread::sleep(Duration::from_millis(50));
        let mut ring = BatchReceiver::new(8, IoMode::Batched);
        let mut total = 0;
        while total < 6 {
            total += ring.recv(&rx).unwrap();
        }
        assert_eq!(total, 6);
        assert_eq!(
            ring.syscalls(),
            1,
            "queued datagrams must drain in one recvmmsg"
        );
    }

    #[test]
    fn segment_send_matches_slice_send() {
        for mode in [IoMode::Fallback, IoMode::Auto] {
            let (rx, tx) = pair();
            // A 3-segment train in one flat buffer.
            let seg = 48;
            let mut train = vec![0u8; 3 * seg];
            for (i, chunk) in train.chunks_mut(seg).enumerate() {
                chunk.fill(i as u8 + 1);
            }
            let mut sender = BatchSender::new(8, mode);
            let mut sent = 0;
            while sent < 3 {
                sent += sender
                    .send_segments(&tx, &train[sent * seg..], seg, 3 - sent)
                    .unwrap();
            }
            assert_eq!(sender.datagrams(), 3);
            let mut buf = [0u8; 256];
            let mut got: Vec<Vec<u8>> = Vec::new();
            for _ in 0..3 {
                let (len, _) = rx.recv_from(&mut buf).unwrap();
                got.push(buf[..len].to_vec());
            }
            got.sort();
            let mut want: Vec<Vec<u8>> = train.chunks(seg).map(<[u8]>::to_vec).collect();
            want.sort();
            assert_eq!(got, want, "mode {mode:?}");
        }
    }

    #[test]
    fn oversized_datagrams_are_flagged_truncated_not_decoded_short() {
        for mode in [IoMode::Fallback, IoMode::Auto] {
            let (rx, tx) = pair();
            // One datagram larger than a ring slot, one normal-sized.
            tx.send(&vec![0xAB; DATAGRAM_BYTES + 512]).unwrap();
            tx.send(&[0xCD; 64]).unwrap();
            let mut ring = BatchReceiver::new(4, mode);
            let mut seen = Vec::new();
            while seen.len() < 2 {
                let n = ring.recv(&rx).unwrap();
                for i in 0..n {
                    let (data, _) = ring.datagram(i);
                    seen.push((data.len(), ring.is_truncated(i)));
                }
            }
            seen.sort();
            assert_eq!(
                seen,
                vec![(64, false), (DATAGRAM_BYTES, true)],
                "mode {mode:?}: the clipped datagram must be flagged"
            );
            assert_eq!(ring.truncated(), 1, "mode {mode:?}");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_send_is_one_syscall_per_train() {
        let (rx, tx) = pair();
        let payloads: Vec<Vec<u8>> = (0u8..3).map(|i| vec![i; 100]).collect();
        let pkts: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut sender = BatchSender::new(8, IoMode::Batched);
        assert_eq!(sender.send(&tx, &pkts).unwrap(), 3);
        assert_eq!(sender.syscalls(), 1);
        let mut buf = [0u8; 256];
        for want in &payloads {
            let (len, _) = rx.recv_from(&mut buf).unwrap();
            assert_eq!(&buf[..len], &want[..]);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn gso_send_is_one_syscall_and_arrives_as_distinct_datagrams() {
        if !kernel_offload_caps().gso_ready() {
            eprintln!("skipping: kernel has no UDP_SEGMENT");
            return;
        }
        let (rx, tx) = pair();
        let seg = 48;
        let mut train = vec![0u8; 5 * seg];
        for (i, chunk) in train.chunks_mut(seg).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        let mut sender = BatchSender::new(8, IoMode::Gso);
        assert_eq!(
            sender.send_segments(&tx, &train, seg, 5).unwrap(),
            5,
            "the whole train fits one super-datagram"
        );
        assert_eq!(sender.syscalls(), 1, "one sendmsg for the whole train");
        assert_eq!(sender.gso_sends(), 1);
        assert_eq!(sender.datagrams(), 5);
        // The kernel segmented it: five ordinary datagrams on the wire.
        let mut buf = [0u8; 256];
        let mut got: Vec<Vec<u8>> = Vec::new();
        for _ in 0..5 {
            let (len, _) = rx.recv_from(&mut buf).unwrap();
            got.push(buf[..len].to_vec());
        }
        got.sort();
        let mut want: Vec<Vec<u8>> = train.chunks(seg).map(<[u8]>::to_vec).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn gso_clamps_to_kernel_segment_cap() {
        if !kernel_offload_caps().gso_ready() {
            eprintln!("skipping: kernel has no UDP_SEGMENT");
            return;
        }
        let (rx, tx) = pair();
        let seg = 32;
        let count = 100; // past UDP_MAX_SEGMENTS: must clamp to 64
        let train = vec![0x5Au8; count * seg];
        let mut sender = BatchSender::new(128, IoMode::Gso);
        let accepted = sender.send_segments(&tx, &train, seg, count).unwrap();
        assert_eq!(accepted, cmsg::MAX_GSO_SEGMENTS, "prefix is the kernel cap");
        let mut buf = [0u8; 256];
        for _ in 0..accepted {
            let (len, _) = rx.recv_from(&mut buf).unwrap();
            assert_eq!(len, seg);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn gro_ring_reports_logical_datagrams_with_kernel_stamps() {
        let caps = kernel_offload_caps();
        if !caps.gro_ready() || !caps.so_timestamping {
            eprintln!("skipping: kernel has no UDP_GRO / SO_TIMESTAMPING");
            return;
        }
        let (rx, tx) = pair();
        let mut ring = BatchReceiver::new(4, IoMode::GsoGro);
        let seg = 512;
        let mut train = vec![0u8; 6 * seg];
        for (i, chunk) in train.chunks_mut(seg).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        let mut sender = BatchSender::new(8, IoMode::Gso);
        assert_eq!(sender.send_segments(&tx, &train, seg, 6).unwrap(), 6);
        // Whether or not loopback actually coalesced, the ring must
        // surface exactly six logical datagrams with the right payloads.
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < 6 {
            let n = ring.recv(&rx).unwrap();
            for i in 0..n {
                let (data, _) = ring.datagram(i);
                got.push(data.to_vec());
                assert!(!ring.is_truncated(i));
                if ring.kernel_stamps_enabled() {
                    if let Some(age) = ring.stamp_age_ns(i) {
                        assert!(
                            age < 60 * 1_000_000_000,
                            "a fresh loopback stamp cannot be {age} ns old"
                        );
                    }
                }
            }
        }
        got.sort();
        let mut want: Vec<Vec<u8>> = train.chunks(seg).map(<[u8]>::to_vec).collect();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(ring.datagrams(), 6);
        assert!(ring.gro_enabled(), "UDP_GRO accepted on this kernel");
        assert_eq!(ring.cmsg_decode_errors(), 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn kernel_stamps_engage_on_plain_gso_mode_too() {
        let caps = kernel_offload_caps();
        if !caps.so_timestamping {
            eprintln!("skipping: kernel has no SO_TIMESTAMPING");
            return;
        }
        let (rx, tx) = pair();
        let mut ring = BatchReceiver::new(4, IoMode::Gso);
        tx.send(&[0x11; 64]).unwrap();
        let n = ring.recv(&rx).unwrap();
        assert_eq!(n, 1);
        assert!(ring.kernel_stamps_enabled());
        // The datagram was queued after stamping was enabled... only if
        // setup beat the send; both outcomes are legal, but if a stamp
        // is reported it must be sane.
        if let Some(age) = ring.stamp_age_ns(0) {
            assert!(age < 60 * 1_000_000_000, "stamp age {age} ns is absurd");
        }
    }

    #[test]
    fn offload_caps_probe_never_panics_and_is_consistent() {
        let caps = kernel_offload_caps();
        // gro_ready implies gso-capable by definition.
        if caps.gro_ready() {
            assert!(caps.gso_ready());
        }
        #[cfg(not(target_os = "linux"))]
        assert_eq!(caps, OffloadCaps::default());
    }
}
