//! Batched UDP I/O for the live datapath.
//!
//! The live tool's throughput ceiling is syscall overhead: one
//! `recv_from` per probe on the receiver, one `send` per packet on the
//! sender. On Linux this module batches both directions — `recvmmsg`
//! drains up to [`BatchReceiver`]'s capacity in one syscall into a
//! preallocated buffer ring, `sendmmsg` pushes a whole probe train in
//! one — with **zero per-datagram heap allocation**: every buffer,
//! iovec, and sockaddr lives in the struct and is reused across calls.
//!
//! The workspace is fully offline (no `libc` crate), so the two syscalls
//! are declared directly against the C library in a small `sys` module,
//! gated on `#[cfg(target_os = "linux")]`. Every other platform — and
//! any caller that asks for [`IoMode::Fallback`] — gets a portable
//! one-datagram path over plain `std::net::UdpSocket` calls with the
//! *same* API, so the receiver and sender code is identical on both
//! paths and differential tests can force either one.
//!
//! Behaviour contract: the batched and fallback paths deliver the same
//! datagrams with the same payloads; only the number of syscalls (and
//! the granularity of batch timestamps the *caller* takes) differs.
//! `crates/live/tests/batch_differential.rs` holds the receiver to
//! byte-identical reports across the two paths.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Datagrams drained per `recvmmsg` call (and the buffer-ring size).
pub const DEFAULT_RECV_BATCH: usize = 32;

/// Bytes reserved per ring slot. Probe packets are a few hundred bytes
/// and the largest control message ([`badabing_wire::control::MAX_CONTROL_BYTES`])
/// is ~1.1 KiB, so one page-and-change per slot is comfortable.
pub const DATAGRAM_BYTES: usize = 4096;

/// Which I/O implementation a [`BatchReceiver`] / [`BatchSender`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Batched syscalls where the platform has them (Linux), the
    /// portable path elsewhere.
    #[default]
    Auto,
    /// Batched syscalls. On platforms without them this quietly behaves
    /// like [`IoMode::Fallback`] so cross-platform tests still run.
    Batched,
    /// The portable one-datagram-per-syscall path, everywhere.
    Fallback,
}

impl IoMode {
    /// Whether this mode resolves to the batched implementation here.
    pub fn use_batched(self) -> bool {
        match self {
            IoMode::Auto | IoMode::Batched => cfg!(target_os = "linux"),
            IoMode::Fallback => false,
        }
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IoMode::Auto),
            "batched" => Ok(IoMode::Batched),
            "fallback" => Ok(IoMode::Fallback),
            other => Err(format!(
                "unknown io mode {other:?} (expected auto|batched|fallback)"
            )),
        }
    }
}

/// Placeholder source address for the (never-observed) case of a
/// recvmmsg entry with an unparseable sockaddr.
fn unspecified() -> SocketAddr {
    SocketAddr::from(([0, 0, 0, 0], 0))
}

/// A preallocated receive ring: one `recv` call fills up to `cap`
/// datagram slots (one syscall on the batched path, exactly one datagram
/// on the fallback path) with no allocation.
pub struct BatchReceiver {
    cap: usize,
    slot: usize,
    bufs: Vec<u8>,
    lens: Vec<usize>,
    srcs: Vec<SocketAddr>,
    truncs: Vec<bool>,
    count: usize,
    batched: bool,
    syscalls: u64,
    datagrams: u64,
    truncated: u64,
    #[cfg(target_os = "linux")]
    raw: RawRing,
}

#[cfg(target_os = "linux")]
struct RawRing {
    hdrs: Vec<sys::mmsghdr>,
    iovs: Vec<sys::iovec>,
    addrs: Vec<sys::sockaddr_storage>,
}

impl BatchReceiver {
    /// A ring of `cap` slots of [`DATAGRAM_BYTES`] each.
    pub fn new(cap: usize, mode: IoMode) -> Self {
        assert!(cap >= 1, "batch capacity must be at least 1");
        let mut out = Self {
            cap,
            slot: DATAGRAM_BYTES,
            bufs: vec![0u8; cap * DATAGRAM_BYTES],
            lens: vec![0; cap],
            srcs: vec![unspecified(); cap],
            truncs: vec![false; cap],
            count: 0,
            batched: mode.use_batched(),
            syscalls: 0,
            datagrams: 0,
            truncated: 0,
            #[cfg(target_os = "linux")]
            raw: RawRing {
                // SAFETY: all-zero bytes are a valid value for these
                // plain-data C structs; every field is rewritten before
                // the kernel sees it.
                hdrs: vec![unsafe { std::mem::zeroed() }; cap],
                iovs: vec![unsafe { std::mem::zeroed() }; cap],
                addrs: vec![unsafe { std::mem::zeroed() }; cap],
            },
        };
        #[cfg(target_os = "linux")]
        out.init_ring();
        out
    }

    /// Point every mmsghdr at its iovec/addr slot once, at construction.
    /// `recv` then only has to refresh the fields the kernel overwrites
    /// (`msg_namelen`, `msg_flags`, `msg_len`) instead of rebuilding the
    /// whole ring per syscall — this is measurable at millions of
    /// packets per second.
    #[cfg(target_os = "linux")]
    fn init_ring(&mut self) {
        let slot = self.slot;
        for i in 0..self.cap {
            self.raw.iovs[i] = sys::iovec {
                iov_base: self.bufs[i * slot..].as_mut_ptr(),
                iov_len: slot,
            };
        }
        let iovs = self.raw.iovs.as_mut_ptr();
        let addrs = self.raw.addrs.as_mut_ptr();
        for (i, hdr) in self.raw.hdrs.iter_mut().enumerate() {
            // SAFETY: both pointers index into the raw ring's own
            // vectors. The vectors are never resized after construction,
            // so their heap allocations — which is what these pointers
            // address — stay put even if the `BatchReceiver` itself
            // moves. Pointing at them once here is sound for the
            // struct's whole lifetime.
            *hdr = sys::mmsghdr {
                msg_hdr: sys::msghdr {
                    msg_name: unsafe { (*addrs.add(i)).bytes.as_mut_ptr() },
                    msg_namelen: sys::SOCKADDR_STORAGE_BYTES as u32,
                    msg_iov: unsafe { iovs.add(i) },
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            };
        }
    }

    /// Whether this ring resolved to the batched implementation.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Receive into the ring: blocks per the socket's read timeout for
    /// the first datagram, then (batched path) drains whatever else is
    /// already queued, up to capacity, without blocking again
    /// (`MSG_WAITFORONE`). Returns the number of datagrams now readable
    /// via [`BatchReceiver::datagram`]. Timeouts surface as
    /// `WouldBlock`/`TimedOut` exactly like `recv_from`.
    pub fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        if !self.batched {
            let (len, src) = socket.recv_from(&mut self.bufs[..self.slot])?;
            self.lens[0] = len;
            self.srcs[0] = src;
            // `recv_from` silently clips oversized datagrams to the
            // buffer and reports the clipped length, so a slot-filling
            // read is the only truncation signal this path has. Probe
            // and control payloads are all well under a slot, so a
            // full slot can only be an oversized (clipped) datagram.
            self.truncs[0] = len >= self.slot;
            if self.truncs[0] {
                self.truncated += 1;
            }
            self.count = 1;
            self.syscalls += 1;
            self.datagrams += 1;
            return Ok(1);
        }
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            // The ring was wired up once in `init_ring`; per call only
            // the fields the kernel overwrites need resetting. The
            // kernel rewrites each sockaddr before reporting it, so the
            // address slots themselves don't need clearing either.
            for hdr in &mut self.raw.hdrs {
                hdr.msg_hdr.msg_namelen = sys::SOCKADDR_STORAGE_BYTES as u32;
                hdr.msg_hdr.msg_flags = 0;
                hdr.msg_len = 0;
            }
            // SAFETY: hdrs/iovs/addrs are `cap` valid, live entries; the
            // fd is owned by `socket` which outlives the call.
            let n = unsafe {
                sys::recvmmsg(
                    socket.as_raw_fd(),
                    self.raw.hdrs.as_mut_ptr(),
                    self.cap as u32,
                    sys::MSG_WAITFORONE,
                    std::ptr::null_mut(),
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            let n = n as usize;
            for i in 0..n {
                self.lens[i] = self.raw.hdrs[i].msg_len as usize;
                self.srcs[i] = sys::parse_sockaddr(&self.raw.addrs[i]).unwrap_or_else(unspecified);
                // The kernel flags clipped datagrams explicitly here.
                self.truncs[i] = self.raw.hdrs[i].msg_hdr.msg_flags & sys::MSG_TRUNC != 0;
                if self.truncs[i] {
                    self.truncated += 1;
                }
            }
            self.count = n;
            self.syscalls += 1;
            self.datagrams += n as u64;
            Ok(n)
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("batched mode never resolves on this platform")
    }

    /// Datagram `i` of the last [`BatchReceiver::recv`] (panics past its
    /// return value).
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        assert!(i < self.count, "datagram index {i} >= batch {}", self.count);
        let len = self.lens[i].min(self.slot);
        (&self.bufs[i * self.slot..i * self.slot + len], self.srcs[i])
    }

    /// Whether datagram `i` of the last recv was clipped to the ring
    /// slot (its payload is incomplete — drop it, don't decode it).
    pub fn is_truncated(&self, i: usize) -> bool {
        assert!(i < self.count, "datagram index {i} >= batch {}", self.count);
        self.truncs[i]
    }

    /// Receive syscalls issued so far.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Datagrams received so far.
    pub fn datagrams(&self) -> u64 {
        self.datagrams
    }

    /// Datagrams received clipped (see [`BatchReceiver::is_truncated`]).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }
}

/// A batched sender for a **connected** `UdpSocket`: one `send` call
/// hands a prefix of the given packets to the kernel (all of them in one
/// `sendmmsg` on the batched path, exactly one on the fallback path)
/// with no allocation.
pub struct BatchSender {
    cap: usize,
    batched: bool,
    syscalls: u64,
    datagrams: u64,
    #[cfg(target_os = "linux")]
    hdrs: Vec<sys::mmsghdr>,
    #[cfg(target_os = "linux")]
    iovs: Vec<sys::iovec>,
}

impl BatchSender {
    /// A sender batching up to `cap` datagrams per syscall.
    pub fn new(cap: usize, mode: IoMode) -> Self {
        assert!(cap >= 1, "batch capacity must be at least 1");
        Self {
            cap,
            batched: mode.use_batched(),
            syscalls: 0,
            datagrams: 0,
            #[cfg(target_os = "linux")]
            hdrs: vec![unsafe { std::mem::zeroed() }; cap],
            #[cfg(target_os = "linux")]
            iovs: vec![unsafe { std::mem::zeroed() }; cap],
        }
    }

    /// Whether this sender resolved to the batched implementation.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Send a prefix of `pkts` on the connected socket. Returns how many
    /// datagrams the kernel accepted (always ≥ 1 on `Ok` for non-empty
    /// input; possibly fewer than `pkts.len()`, callers loop). An error
    /// always refers to `pkts[0]`: the batched syscall reports an error
    /// only when it occurs on the *first* datagram, later failures
    /// surface as a short count — which matches the fallback path's
    /// one-at-a-time semantics, so per-packet error accounting
    /// (`ConnectionRefused` skip-and-continue) is identical on both.
    pub fn send(&mut self, socket: &UdpSocket, pkts: &[&[u8]]) -> io::Result<usize> {
        if pkts.is_empty() {
            return Ok(0);
        }
        if !self.batched {
            socket.send(pkts[0])?;
            self.syscalls += 1;
            self.datagrams += 1;
            return Ok(1);
        }
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            let n = pkts.len().min(self.cap);
            for (iov, pkt) in self.iovs.iter_mut().zip(pkts).take(n) {
                // The kernel never writes through a send iovec; the cast
                // from shared to mut is only to satisfy the C signature.
                *iov = sys::iovec {
                    iov_base: pkt.as_ptr() as *mut u8,
                    iov_len: pkt.len(),
                };
            }
            let iovs = self.iovs.as_mut_ptr();
            for (i, hdr) in self.hdrs.iter_mut().take(n).enumerate() {
                *hdr = sys::mmsghdr {
                    msg_hdr: sys::msghdr {
                        msg_name: std::ptr::null_mut(), // connected socket
                        msg_namelen: 0,
                        // SAFETY: indexes this sender's own iovec vector.
                        msg_iov: unsafe { iovs.add(i) },
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: `n` valid header entries; fd owned by `socket`.
            let sent =
                unsafe { sys::sendmmsg(socket.as_raw_fd(), self.hdrs.as_mut_ptr(), n as u32, 0) };
            if sent < 0 {
                return Err(io::Error::last_os_error());
            }
            self.syscalls += 1;
            self.datagrams += sent as u64;
            Ok(sent as usize)
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("batched mode never resolves on this platform")
    }

    /// Like [`BatchSender::send`], but the packets are `count` equal
    /// [`seg_bytes`]-sized segments of one flat buffer — the shape of a
    /// probe train encoded into a single reused allocation, so the
    /// steady-state TX path needs no per-train slice-of-slices. Same
    /// prefix/short-count/error semantics as `send`.
    ///
    /// [`seg_bytes`]: Self::send_segments
    pub fn send_segments(
        &mut self,
        socket: &UdpSocket,
        buf: &[u8],
        seg_bytes: usize,
        count: usize,
    ) -> io::Result<usize> {
        assert!(
            count * seg_bytes <= buf.len(),
            "train overruns its buffer: {count} x {seg_bytes} > {}",
            buf.len()
        );
        if count == 0 {
            return Ok(0);
        }
        if !self.batched {
            socket.send(&buf[..seg_bytes])?;
            self.syscalls += 1;
            self.datagrams += 1;
            return Ok(1);
        }
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            let n = count.min(self.cap);
            for i in 0..n {
                // The kernel never writes through a send iovec; the cast
                // from shared to mut is only to satisfy the C signature.
                self.iovs[i] = sys::iovec {
                    iov_base: buf[i * seg_bytes..].as_ptr() as *mut u8,
                    iov_len: seg_bytes,
                };
            }
            let iovs = self.iovs.as_mut_ptr();
            for (i, hdr) in self.hdrs.iter_mut().take(n).enumerate() {
                *hdr = sys::mmsghdr {
                    msg_hdr: sys::msghdr {
                        msg_name: std::ptr::null_mut(), // connected socket
                        msg_namelen: 0,
                        // SAFETY: indexes this sender's own iovec vector.
                        msg_iov: unsafe { iovs.add(i) },
                        msg_iovlen: 1,
                        msg_control: std::ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                };
            }
            // SAFETY: `n` valid header entries; fd owned by `socket`.
            let sent =
                unsafe { sys::sendmmsg(socket.as_raw_fd(), self.hdrs.as_mut_ptr(), n as u32, 0) };
            if sent < 0 {
                return Err(io::Error::last_os_error());
            }
            self.syscalls += 1;
            self.datagrams += sent as u64;
            Ok(sent as usize)
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("batched mode never resolves on this platform")
    }

    /// Send syscalls issued so far.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Datagrams handed to the kernel so far.
    pub fn datagrams(&self) -> u64 {
        self.datagrams
    }
}

/// Best-effort enlargement of the socket's kernel buffers (no-op off
/// Linux). High-rate loopback benches overflow the default `rcvbuf`
/// long before the datapath is the bottleneck; failures are ignored —
/// this is an optimization, never a correctness requirement.
pub fn set_buffer_sizes(socket: &UdpSocket, recv_bytes: usize, send_bytes: usize) {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        for (opt, bytes) in [(sys::SO_RCVBUF, recv_bytes), (sys::SO_SNDBUF, send_bytes)] {
            let val = bytes as i32;
            // SAFETY: setsockopt reads exactly 4 bytes from a valid i32.
            unsafe {
                sys::setsockopt(
                    socket.as_raw_fd(),
                    sys::SOL_SOCKET,
                    opt,
                    &val as *const i32 as *const core::ffi::c_void,
                    std::mem::size_of::<i32>() as u32,
                );
            }
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (socket, recv_bytes, send_bytes);
    }
}

/// Hand-declared Linux syscall surface (the workspace builds offline,
/// without the `libc` crate). Layouts match the x86_64/aarch64 glibc
/// ABI; `repr(C)` reproduces the same padding the C definitions have.
#[cfg(target_os = "linux")]
mod sys {
    #![allow(non_camel_case_types)]

    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV6};

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    /// recvmmsg: block for the first datagram only, then drain
    /// non-blocking.
    pub const MSG_WAITFORONE: i32 = 0x10000;
    /// Set by the kernel in `msg_flags` when a datagram was clipped to
    /// the supplied buffer.
    pub const MSG_TRUNC: i32 = 0x20;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_RCVBUF: i32 = 8;
    pub const SO_SNDBUF: i32 = 7;
    pub const SOCKADDR_STORAGE_BYTES: usize = 128;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct iovec {
        pub iov_base: *mut u8,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct msghdr {
        pub msg_name: *mut u8,
        pub msg_namelen: u32,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut core::ffi::c_void,
        pub msg_controllen: usize,
        pub msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct mmsghdr {
        pub msg_hdr: msghdr,
        pub msg_len: u32,
    }

    /// Stand-in for `struct sockaddr_storage` (128 bytes, 8-aligned).
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct sockaddr_storage {
        pub bytes: [u8; SOCKADDR_STORAGE_BYTES],
    }

    extern "C" {
        pub fn recvmmsg(
            sockfd: i32,
            msgvec: *mut mmsghdr,
            vlen: u32,
            flags: i32,
            timeout: *mut core::ffi::c_void,
        ) -> i32;
        pub fn sendmmsg(sockfd: i32, msgvec: *mut mmsghdr, vlen: u32, flags: i32) -> i32;
        pub fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    /// Decode a kernel-filled sockaddr (`sin_family` is native-endian,
    /// ports are network order).
    pub fn parse_sockaddr(ss: &sockaddr_storage) -> Option<SocketAddr> {
        let b = &ss.bytes;
        match u16::from_ne_bytes([b[0], b[1]]) {
            AF_INET => {
                let port = u16::from_be_bytes([b[2], b[3]]);
                Some(SocketAddr::from((
                    Ipv4Addr::new(b[4], b[5], b[6], b[7]),
                    port,
                )))
            }
            AF_INET6 => {
                let port = u16::from_be_bytes([b[2], b[3]]);
                let flowinfo = u32::from_ne_bytes([b[4], b[5], b[6], b[7]]);
                let mut addr = [0u8; 16];
                addr.copy_from_slice(&b[8..24]);
                let scope = u32::from_ne_bytes([b[24], b[25], b[26], b[27]]);
                Some(SocketAddr::V6(SocketAddrV6::new(
                    Ipv6Addr::from(addr),
                    port,
                    flowinfo,
                    scope,
                )))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        (rx, tx)
    }

    fn roundtrip(mode: IoMode) {
        let (rx, tx) = pair();
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 64 + i as usize]).collect();
        let pkts: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut sender = BatchSender::new(8, mode);
        let mut off = 0;
        while off < pkts.len() {
            off += sender.send(&tx, &pkts[off..]).unwrap();
        }
        assert_eq!(sender.datagrams(), 5);

        let mut ring = BatchReceiver::new(4, mode);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < 5 {
            let n = ring.recv(&rx).unwrap();
            assert!((1..=4).contains(&n));
            for i in 0..n {
                let (data, src) = ring.datagram(i);
                assert_eq!(src, tx.local_addr().unwrap());
                got.push(data.to_vec());
            }
        }
        // UDP loopback preserves order in practice, but only assert set
        // equality to stay robust.
        got.sort();
        let mut want = payloads.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(ring.datagrams(), 5);
        assert!(ring.syscalls() <= 5);

        // A drained socket times out like recv_from does.
        let err = ring.recv(&rx).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected timeout error: {err:?}"
        );
    }

    #[test]
    fn fallback_roundtrip() {
        roundtrip(IoMode::Fallback);
    }

    #[test]
    fn auto_roundtrip() {
        roundtrip(IoMode::Auto);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_mode_resolves_on_linux() {
        assert!(IoMode::Auto.use_batched());
        assert!(IoMode::Batched.use_batched());
        assert!(!IoMode::Fallback.use_batched());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_recv_drains_queued_datagrams_in_one_call() {
        let (rx, tx) = pair();
        // Queue 6 datagrams before the first recv: the batched ring must
        // pick up several per syscall (MSG_WAITFORONE drains what's
        // there), and far fewer syscalls than datagrams.
        for i in 0u8..6 {
            tx.send(&[i; 32]).unwrap();
        }
        // Let the loopback queue settle so all 6 are receivable.
        std::thread::sleep(Duration::from_millis(50));
        let mut ring = BatchReceiver::new(8, IoMode::Batched);
        let mut total = 0;
        while total < 6 {
            total += ring.recv(&rx).unwrap();
        }
        assert_eq!(total, 6);
        assert_eq!(
            ring.syscalls(),
            1,
            "queued datagrams must drain in one recvmmsg"
        );
    }

    #[test]
    fn segment_send_matches_slice_send() {
        for mode in [IoMode::Fallback, IoMode::Auto] {
            let (rx, tx) = pair();
            // A 3-segment train in one flat buffer.
            let seg = 48;
            let mut train = vec![0u8; 3 * seg];
            for (i, chunk) in train.chunks_mut(seg).enumerate() {
                chunk.fill(i as u8 + 1);
            }
            let mut sender = BatchSender::new(8, mode);
            let mut sent = 0;
            while sent < 3 {
                sent += sender
                    .send_segments(&tx, &train[sent * seg..], seg, 3 - sent)
                    .unwrap();
            }
            assert_eq!(sender.datagrams(), 3);
            let mut buf = [0u8; 256];
            let mut got: Vec<Vec<u8>> = Vec::new();
            for _ in 0..3 {
                let (len, _) = rx.recv_from(&mut buf).unwrap();
                got.push(buf[..len].to_vec());
            }
            got.sort();
            let mut want: Vec<Vec<u8>> = train.chunks(seg).map(<[u8]>::to_vec).collect();
            want.sort();
            assert_eq!(got, want, "mode {mode:?}");
        }
    }

    #[test]
    fn oversized_datagrams_are_flagged_truncated_not_decoded_short() {
        for mode in [IoMode::Fallback, IoMode::Auto] {
            let (rx, tx) = pair();
            // One datagram larger than a ring slot, one normal-sized.
            tx.send(&vec![0xAB; DATAGRAM_BYTES + 512]).unwrap();
            tx.send(&[0xCD; 64]).unwrap();
            let mut ring = BatchReceiver::new(4, mode);
            let mut seen = Vec::new();
            while seen.len() < 2 {
                let n = ring.recv(&rx).unwrap();
                for i in 0..n {
                    let (data, _) = ring.datagram(i);
                    seen.push((data.len(), ring.is_truncated(i)));
                }
            }
            seen.sort();
            assert_eq!(
                seen,
                vec![(64, false), (DATAGRAM_BYTES, true)],
                "mode {mode:?}: the clipped datagram must be flagged"
            );
            assert_eq!(ring.truncated(), 1, "mode {mode:?}");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_send_is_one_syscall_per_train() {
        let (rx, tx) = pair();
        let payloads: Vec<Vec<u8>> = (0u8..3).map(|i| vec![i; 100]).collect();
        let pkts: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut sender = BatchSender::new(8, IoMode::Batched);
        assert_eq!(sender.send(&tx, &pkts).unwrap(), 3);
        assert_eq!(sender.syscalls(), 1);
        let mut buf = [0u8; 256];
        for want in &payloads {
            let (len, _) = rx.recv_from(&mut buf).unwrap();
            assert_eq!(&buf[..len], &want[..]);
        }
    }
}
