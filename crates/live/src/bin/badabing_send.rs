//! The live BADABING sender.
//!
//! Sends the full probe schedule to a target (a receiver, or an emulator
//! in front of one), then writes the run manifest — every probe sent plus
//! the tool configuration — to a JSON file for `badabing_report`.
//!
//! ```text
//! badabing_send --target 127.0.0.1:9000 --secs 60 \
//!     [--p 0.3] [--improved] [--session 1] [--seed 1] \
//!     [--manifest manifest.json]
//! ```

use badabing_core::config::BadabingConfig;
use badabing_live::cli::Flags;
use badabing_live::persist::ManifestFile;
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_stats::rng::seeded;
use std::net::SocketAddr;
use std::path::PathBuf;

const USAGE: &str = "badabing_send --target ADDR --secs S [--p P] [--improved] \
                     [--session N] [--seed N] [--bind ADDR] [--manifest PATH]";

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &["improved"]);
    let target: SocketAddr = flags.req("target");
    let secs: f64 = flags.req("secs");
    let p: f64 = flags.opt("p", 0.3);
    let session: u32 = flags.opt("session", 1);
    let seed: u64 = flags.opt("seed", 1);
    let bind: SocketAddr = flags.opt("bind", "0.0.0.0:0".parse().expect("static addr"));
    let manifest_path = PathBuf::from(flags.opt_str("manifest", "manifest.json"));

    let mut tool = BadabingConfig::paper_default(p);
    if flags.has("improved") {
        tool = tool.with_improved();
    }
    let cfg = SenderConfig {
        tool,
        n_slots: (secs / tool.slot_secs).round() as u64,
        target,
        bind,
        session,
    };
    eprintln!(
        "sending to {target}: p={p}, {} slots of {} ms, offered load ≈ {:.0} kb/s",
        cfg.n_slots,
        tool.slot_secs * 1000.0,
        tool.offered_load_bps() / 1000.0
    );
    let manifest = run_sender(cfg, seeded(seed, "live-sender")).await?;
    eprintln!("sent {} packets in {} probes", manifest.packets_sent, manifest.sent.len());
    ManifestFile::new(tool, &manifest).save(&manifest_path)?;
    eprintln!("manifest written to {}", manifest_path.display());
    Ok(())
}
