//! The live BADABING sender.
//!
//! Sends the full probe schedule to a target (a receiver, or an emulator
//! in front of one), then writes the run manifest — every probe sent plus
//! the tool configuration — to a JSON file for `badabing_report`.
//!
//! By default the sender also drives the control plane against the
//! receiver: handshake before the run, heartbeats during it, and report
//! retrieval afterwards (written with `--log`, replacing the manual copy
//! of the receiver's log file). `--control` names the receiver's own
//! address when probes are routed through an emulator; `--no-control`
//! reverts to the old open-loop behaviour.
//!
//! ```text
//! badabing_send --target 127.0.0.1:9000 --secs 60 \
//!     [--p 0.3] [--improved] [--session 1] [--seed 1] \
//!     [--control ADDR | --no-control] [--manifest manifest.json] \
//!     [--log receiver.json] [--metrics metrics.json] \
//!     [--retry-base-ms 25] [--retry-cap-ms 400] [--attempts 12] \
//!     [--hb-ms 200] [--hb-misses 3] \
//!     [--estimate-every-ms 0] [--estimate-out estimate.json]
//! ```
//!
//! With `--estimate-every-ms N` (N > 0) the heartbeat thread also polls
//! the receiver's online estimator every N milliseconds; the last
//! snapshot fetched is printed at exit and, with `--estimate-out`,
//! written as JSON.
//!
//! Exits 0 on a complete run, 1 if the receiver went silent mid-run (a
//! partial manifest is still written), 2 on usage errors.

use badabing_core::config::BadabingConfig;
use badabing_live::batch_io::IoMode;
use badabing_live::cli::Flags;
use badabing_live::control::ControlConfig;
use badabing_live::persist::{EstimateFile, ManifestFile, ReceiverFile};
use badabing_live::provider::Provider;
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "badabing_send --target ADDR --secs S [--p P] [--improved] \
                     [--session N] [--seed N] [--bind ADDR] [--manifest PATH] \
                     [--control ADDR] [--no-control] [--log PATH] [--metrics PATH] \
                     [--retry-base-ms MS] [--retry-cap-ms MS] [--attempts N] \
                     [--hb-ms MS] [--hb-misses N] [--io auto|batched|fallback|gso|gso+gro] \
                     [--estimate-every-ms MS] [--estimate-out PATH]";

fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &["improved", "no-control"]);
    let target: SocketAddr = flags.req("target");
    let secs = flags.req_secs("secs").as_secs_f64();
    let p: f64 = flags.opt("p", 0.3);
    let session: u32 = flags.opt("session", 1);
    let seed: u64 = flags.opt("seed", 1);
    let bind: SocketAddr = flags.opt("bind", "0.0.0.0:0".parse().expect("static addr"));
    let manifest_path = PathBuf::from(flags.opt_str("manifest", "manifest.json"));
    let log_path = PathBuf::from(flags.opt_str("log", "receiver.json"));
    let metrics_path = flags.opt_str("metrics", "");
    let estimate_every_ms: u64 = flags.opt("estimate-every-ms", 0);
    let estimate_out = flags.opt_str("estimate-out", "");

    let mut tool = BadabingConfig::paper_default(p);
    if flags.has("improved") {
        tool = tool.with_improved();
    }

    let control = if flags.has("no-control") {
        None
    } else {
        let mut c = ControlConfig::new(flags.opt("control", target));
        c.retry_base = Duration::from_millis(flags.opt("retry-base-ms", 25));
        c.retry_cap = Duration::from_millis(flags.opt("retry-cap-ms", 400));
        c.max_attempts = flags.opt("attempts", 12);
        c.heartbeat_interval = Duration::from_millis(flags.opt("hb-ms", 200));
        c.heartbeat_misses = flags.opt("hb-misses", 3);
        Some(c)
    };
    let metrics = Arc::new(Registry::new("badabing_send"));

    let cfg = SenderConfig {
        tool,
        n_slots: (secs / tool.slot_secs).round() as u64,
        target,
        bind,
        session,
        control,
        metrics: Some(metrics.clone()),
        provider: Provider::udp(flags.opt::<IoMode>("io", IoMode::Auto)),
        estimate_every: (estimate_every_ms > 0).then(|| Duration::from_millis(estimate_every_ms)),
    };
    eprintln!(
        "sending to {target}: p={p}, {} slots of {} ms, offered load ≈ {:.0} kb/s",
        cfg.n_slots,
        tool.slot_secs * 1000.0,
        tool.offered_load_bps() / 1000.0
    );
    let outcome = run_sender(cfg, seeded(seed, "live-sender"))?;
    let manifest = &outcome.manifest;
    eprintln!(
        "sent {} packets in {} probes",
        manifest.packets_sent,
        manifest.sent.len()
    );
    ManifestFile::new(tool, manifest).save(&manifest_path)?;
    eprintln!("manifest written to {}", manifest_path.display());
    if let Some(log) = &outcome.receiver_log {
        eprintln!(
            "receiver reported {} packets ({} rejected, {} duplicates)",
            log.packets, log.rejected, log.duplicates
        );
        ReceiverFile::new(log).save(&log_path)?;
        eprintln!("receiver log written to {}", log_path.display());
    }
    if let Some(est) = &outcome.mid_run_estimate {
        let fmt = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.4}"));
        eprintln!(
            "mid-run estimate ({} experiments): F={} D_basic={} slots D_improved={} slots \
             delay p50={:.6}s p99={:.6}s over {} samples",
            est.estimates.experiments,
            fmt(est.estimates.frequency()),
            fmt(est.estimates.duration_slots_basic()),
            fmt(est.estimates.duration_slots_improved()),
            est.delay_p50_secs,
            est.delay_p99_secs,
            est.delay_samples
        );
        if !estimate_out.is_empty() {
            EstimateFile::new(est).save(Path::new(&estimate_out))?;
            eprintln!("estimate snapshot written to {estimate_out}");
        }
    }
    for note in &outcome.diagnostics {
        eprintln!("warning: {note}");
    }
    if !metrics_path.is_empty() {
        metrics.save(Path::new(&metrics_path))?;
        eprintln!("metrics written to {metrics_path}");
    }
    if !outcome.completed {
        std::process::exit(1);
    }
    Ok(())
}
