//! The user-space bottleneck emulator as a standalone forwarder.
//!
//! Place it between a sender and a receiver to subject probe traffic to a
//! drop-tail queue of configurable rate/buffer with scripted loss
//! episodes. Only the probe path goes through the emulator — the sender's
//! control plane talks to the receiver directly (`badabing_send
//! --control`):
//!
//! ```text
//! badabing_emulate --bind 127.0.0.1:9100 --target 127.0.0.1:9000 \
//!     --secs 120 [--rate-mbps 20] [--buffer-ms 100] \
//!     [--episode-gap 10] [--episode-loss 0.068] [--burst 2.0] [--seed 1] \
//!     [--metrics metrics.json]
//! ```

use badabing_live::cli::Flags;
use badabing_live::emulator::{Emulator, EmulatorConfig};
use badabing_live::provider::Provider;
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

const USAGE: &str = "badabing_emulate --bind ADDR --target ADDR --secs S \
                     [--rate-mbps M] [--buffer-ms B] [--episode-gap G] \
                     [--episode-loss L] [--burst F] [--seed N] [--metrics PATH]";

fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &[]);
    let bind: SocketAddr = flags.req("bind");
    let target: SocketAddr = flags.req("target");
    let run_for = flags.req_secs("secs");
    let rate_mbps: f64 = flags.opt("rate-mbps", 20.0);
    let buffer_ms: f64 = flags.opt("buffer-ms", 100.0);
    let episode_gap: f64 = flags.opt("episode-gap", 10.0);
    let episode_loss: f64 = flags.opt("episode-loss", 0.068);
    let burst: f64 = flags.opt("burst", 2.0);
    let seed: u64 = flags.opt("seed", 1);
    let metrics_path = flags.opt_str("metrics", "");

    let metrics = Arc::new(Registry::new("badabing_emulate"));
    let rate_bps = (rate_mbps * 1e6) as u64;
    let cfg = EmulatorConfig {
        bind,
        target,
        rate_bps,
        buffer_bytes: (rate_bps as f64 * buffer_ms / 1000.0 / 8.0) as u64,
        episode_mean_gap_secs: episode_gap,
        episode_loss_secs: episode_loss,
        burst_factor: burst,
        metrics: Some(metrics.clone()),
        provider: Provider::default(),
    };
    eprintln!(
        "emulating a {rate_mbps} Mb/s bottleneck ({buffer_ms} ms buffer) from {bind} to {target}"
    );
    let emulator = Emulator::start(cfg, seeded(seed, "emulator"))?;
    std::thread::sleep(run_for);
    let stats = emulator.stop();
    eprintln!(
        "forwarded {} datagrams, dropped {}, ran {} scripted episodes",
        stats.forwarded, stats.dropped, stats.episodes
    );
    if !metrics_path.is_empty() {
        metrics.save(Path::new(&metrics_path))?;
        eprintln!("metrics written to {metrics_path}");
    }
    Ok(())
}
