//! Join a sender manifest with a receiver log and report loss-episode
//! estimates — the analysis stage of the live tool.
//!
//! ```text
//! badabing_report --manifest manifest.json --log receiver.json
//! ```

use badabing_live::analyze::analyze_run;
use badabing_live::cli::Flags;
use badabing_live::persist::{ManifestFile, ReceiverFile};
use std::path::PathBuf;

const USAGE: &str = "badabing_report --manifest PATH --log PATH";

fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &[]);
    let manifest_path: PathBuf = PathBuf::from(flags.opt_str("manifest", "manifest.json"));
    let log_path: PathBuf = PathBuf::from(flags.opt_str("log", "receiver.json"));

    let manifest_file = ManifestFile::load(&manifest_path)?;
    let receiver_file = ReceiverFile::load(&log_path)?;
    let manifest = manifest_file.to_manifest();
    let log = receiver_file.to_log();
    let tool = manifest_file.tool;

    let a = analyze_run(&tool, &manifest, &log);
    println!(
        "run: {} slots of {} ms at p = {}",
        manifest.n_slots,
        tool.slot_secs * 1000.0,
        tool.p
    );
    println!(
        "probes: {} sent, {} packets lost, {} experiments assembled ({} incomplete)",
        manifest.sent.len(),
        a.packets_lost,
        a.log.len(),
        a.detector.incomplete_experiments
    );
    println!(
        "receiver: {} packets accepted, {} rejected, {} duplicates discarded",
        log.packets, log.rejected, log.duplicates
    );
    println!("\nloss-episode frequency:     {}", fmt_opt(a.frequency()));
    println!("mean episode duration (s):  {}", fmt_opt(a.duration_secs()));
    println!(
        "derived end-to-end loss rate: {}",
        fmt_opt(
            a.frequency()
                .zip(a.detector.loss_intensity())
                .map(|(f, i)| f * i)
        )
    );
    println!(
        "\nvalidation: {}",
        if a.validation.passes(0.25) {
            "PASS"
        } else {
            "FLAGGED — treat estimates as unreliable"
        }
    );
    println!(
        "  01/10 balance: {} vs {} (discrepancy {:.2})",
        a.validation.n01,
        a.validation.n10,
        a.validation.boundary_discrepancy()
    );
    println!(
        "  forbidden 010/101 patterns: {}",
        a.validation.violations()
    );
    Ok(())
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "- (no data)".to_string(), |x| format!("{x:.5}"))
}
