//! The live BADABING receiver.
//!
//! Collects probe packets and serves the control plane until the sender
//! completes its session, the idle watchdog fires, or `--secs` elapses —
//! whichever comes first — then writes the arrival log to JSON for
//! `badabing_report`. (With a control-plane sender the log file is
//! usually redundant: the sender fetches the same records itself.)
//!
//! ```text
//! badabing_recv --bind 127.0.0.1:9000 --secs 70 \
//!     [--session 1] [--log receiver.json] [--metrics metrics.json] \
//!     [--idle-timeout 30]
//! ```

use badabing_live::cli::Flags;
use badabing_live::persist::ReceiverFile;
use badabing_live::receiver::{start_receiver, ReceiverConfig};
use badabing_metrics::Registry;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "badabing_recv --bind ADDR --secs S [--session N] [--log PATH] \
                     [--metrics PATH] [--idle-timeout S]";

fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &[]);
    let bind: SocketAddr = flags.req("bind");
    let secs: f64 = flags.req("secs");
    let session: u32 = flags.opt("session", 1);
    let idle_timeout: f64 = flags.opt("idle-timeout", 30.0);
    let log_path = PathBuf::from(flags.opt_str("log", "receiver.json"));
    let metrics_path = flags.opt_str("metrics", "");

    let metrics = Arc::new(Registry::new("badabing_recv"));
    let handle = start_receiver(ReceiverConfig {
        idle_timeout: (idle_timeout > 0.0).then(|| Duration::from_secs_f64(idle_timeout)),
        metrics: Some(metrics.clone()),
        ..ReceiverConfig::new(bind, session)
    })?;
    eprintln!(
        "listening on {} for up to {secs}s (session {session}, idle timeout {idle_timeout}s)",
        handle.local_addr()
    );

    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    while Instant::now() < deadline && !handle.is_finished() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let log = handle.stop();
    eprintln!(
        "collected {} packets ({} rejected, {} duplicates)",
        log.packets, log.rejected, log.duplicates
    );
    ReceiverFile::new(&log).save(&log_path)?;
    eprintln!("receiver log written to {}", log_path.display());
    if !metrics_path.is_empty() {
        metrics.save(Path::new(&metrics_path))?;
        eprintln!("metrics written to {metrics_path}");
    }
    Ok(())
}
