//! The live BADABING receiver.
//!
//! Collects probe packets for a fixed duration (or until ctrl-C), then
//! writes the arrival log to JSON for `badabing_report`.
//!
//! ```text
//! badabing_recv --bind 127.0.0.1:9000 --secs 70 \
//!     [--session 1] [--log receiver.json]
//! ```

use badabing_live::cli::Flags;
use badabing_live::persist::ReceiverFile;
use badabing_live::receiver::{start_receiver, ReceiverConfig};
use std::net::SocketAddr;
use std::path::PathBuf;

const USAGE: &str =
    "badabing_recv --bind ADDR --secs S [--session N] [--log PATH]";

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &[]);
    let bind: SocketAddr = flags.req("bind");
    let secs: f64 = flags.req("secs");
    let session: u32 = flags.opt("session", 1);
    let log_path = PathBuf::from(flags.opt_str("log", "receiver.json"));

    let handle = start_receiver(ReceiverConfig { bind, session }).await?;
    eprintln!("listening on {} for {secs}s (session {session}, ctrl-C to stop early)", handle.local_addr());

    tokio::select! {
        _ = tokio::time::sleep(std::time::Duration::from_secs_f64(secs)) => {}
        _ = tokio::signal::ctrl_c() => eprintln!("interrupted, writing log"),
    }
    let log = handle.stop().await;
    eprintln!("collected {} packets ({} rejected)", log.packets, log.rejected);
    ReceiverFile::new(&log).save(&log_path)?;
    eprintln!("receiver log written to {}", log_path.display());
    Ok(())
}
