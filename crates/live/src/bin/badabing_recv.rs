//! The live BADABING receiver.
//!
//! Single-session mode (`--session N`, the default) collects probe
//! packets and serves the control plane until the sender completes its
//! session, the idle watchdog fires, or `--secs` elapses — whichever
//! comes first — then writes the arrival log to JSON for
//! `badabing_report`. (With a control-plane sender the log file is
//! usually redundant: the sender fetches the same records itself.)
//!
//! Multi-session mode (`--session any`) runs one process as a session
//! server: senders register dynamically via the control-plane handshake,
//! up to `--max-sessions` concurrently (later SYNs are refused with an
//! explicit NACK). Sessions are reaped individually on completion or
//! idle timeout; the server runs until `--secs` elapses and then writes
//! one log file per finished session (`receiver.<id>.json` for
//! `--log receiver.json`).
//!
//! ```text
//! badabing_recv --bind 127.0.0.1:9000 --secs 70 \
//!     [--session N|any] [--max-sessions N] [--log receiver.json] \
//!     [--metrics metrics.json] [--idle-timeout 30] \
//!     [--io auto|batched|fallback|gso|gso+gro] [--recv-threads N] [--shards N] \
//!     [--poll auto|epoll|timeout] [--session-budget-mb N] \
//!     [--global-budget-mb N] [--on-pressure reject|evict] \
//!     [--estimate-interval-ms N]
//! ```
//!
//! With `--estimate-interval-ms N` (N > 0, multi-session mode) the
//! server periodically merges every live session's online estimator and
//! publishes the fleet-wide view as `fleet_*` gauges in the metrics
//! snapshot.

use badabing_live::batch_io::IoMode;
use badabing_live::cli::Flags;
use badabing_live::event_loop::PollMode;
use badabing_live::persist::ReceiverFile;
use badabing_live::provider::Provider;
use badabing_live::receiver::{
    start_receiver, start_server, PressurePolicy, ReceiverConfig, ServerConfig, SessionEnd,
    DEFAULT_SESSION_BUDGET_BYTES,
};
use badabing_metrics::Registry;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "badabing_recv --bind ADDR --secs S [--session N|any] [--max-sessions N] \
                     [--log PATH] [--metrics PATH] [--idle-timeout S] \
                     [--io auto|batched|fallback|gso|gso+gro] [--recv-threads N] [--shards N] \
                     [--poll auto|epoll|timeout] [--session-budget-mb N] \
                     [--global-budget-mb N] [--on-pressure reject|evict] \
                     [--estimate-interval-ms N]";

/// `receiver.json` → `receiver.<id>.json` for per-session logs.
fn session_log_path(base: &Path, session: u32) -> PathBuf {
    match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => base.with_extension(format!("{session}.{ext}")),
        None => base.with_extension(session.to_string()),
    }
}

fn main() -> std::io::Result<()> {
    let flags = Flags::parse(USAGE, &[]);
    let bind: SocketAddr = flags.req("bind");
    let run_for = flags.req_secs("secs");
    let secs = run_for.as_secs_f64();
    let session = flags.opt_str("session", "1");
    let max_sessions: usize = flags.opt("max-sessions", 64);
    let idle_timeout = flags.opt_secs("idle-timeout", Duration::from_secs(30));
    let log_path = PathBuf::from(flags.opt_str("log", "receiver.json"));
    let metrics_path = flags.opt_str("metrics", "");

    let metrics = Arc::new(Registry::new("badabing_recv"));
    let idle_timeout = (idle_timeout > Duration::ZERO).then_some(idle_timeout);
    let deadline = Instant::now() + run_for;

    if session == "any" {
        let session_budget_mb: usize =
            flags.opt("session-budget-mb", DEFAULT_SESSION_BUDGET_BYTES >> 20);
        let global_budget_mb: usize = flags.opt("global-budget-mb", 0usize);
        let estimate_interval_ms: u64 = flags.opt("estimate-interval-ms", 0);
        let server = start_server(ServerConfig {
            idle_timeout,
            max_sessions,
            metrics: Some(metrics.clone()),
            provider: Provider::udp(flags.opt::<IoMode>("io", IoMode::Auto)),
            recv_threads: flags.opt("recv-threads", 1usize).max(1),
            shards: flags.opt("shards", badabing_live::receiver::DEFAULT_SHARDS),
            poll: flags.opt("poll", PollMode::Auto),
            session_budget_bytes: session_budget_mb << 20,
            global_budget_bytes: (global_budget_mb > 0).then_some(global_budget_mb << 20),
            on_pressure: flags.opt("on-pressure", PressurePolicy::Reject),
            estimate_interval: (estimate_interval_ms > 0)
                .then(|| Duration::from_millis(estimate_interval_ms)),
            ..ServerConfig::any(bind, max_sessions)
        })?;
        eprintln!(
            "serving up to {max_sessions} concurrent sessions on {} for {secs}s",
            server.local_addr()
        );
        while Instant::now() < deadline && !server.is_finished() {
            std::thread::sleep(Duration::from_millis(100));
        }
        let report = server.stop();
        eprintln!(
            "{} sessions finished ({} datagrams rejected, {} SYNs refused — {} over budget, \
             {} sessions evicted, {} chunk NACKs, {} B peak session memory)",
            report.sessions.len(),
            report.rejected,
            report.syns_rejected,
            report.budget_rejects,
            report.sessions_evicted,
            report.chunk_nacks,
            report.mem_peak_bytes
        );
        eprintln!(
            "offload: {} GRO segments split, {} cmsg decode errors, \
             {} kernel-stamped arrivals, {} userspace-stamped arrivals",
            report.gro_segments_split,
            report.cmsg_decode_errors,
            report.rx_timestamp_kernel,
            report.rx_timestamp_user_fallback
        );
        for outcome in &report.sessions {
            let end = match outcome.end {
                SessionEnd::Completed => "completed",
                SessionEnd::IdleTimeout => "idle-reaped",
                SessionEnd::Evicted => "evicted under memory pressure",
                SessionEnd::Stopped => "open at shutdown",
            };
            eprintln!(
                "session {}: {} packets, {} duplicates, {} probes recorded ({end})",
                outcome.session,
                outcome.log.packets,
                outcome.log.duplicates,
                outcome.log.arrivals.len()
            );
            let path = session_log_path(&log_path, outcome.session);
            ReceiverFile::new(&outcome.log).save(&path)?;
            eprintln!(
                "session {} log written to {}",
                outcome.session,
                path.display()
            );
        }
    } else {
        let session: u32 = match session.parse() {
            Ok(id) => id,
            Err(_) => {
                eprintln!("error: --session takes a numeric id or `any`\nusage: {USAGE}");
                std::process::exit(2);
            }
        };
        let handle = start_receiver(ReceiverConfig {
            idle_timeout,
            metrics: Some(metrics.clone()),
            ..ReceiverConfig::new(bind, session)
        })?;
        eprintln!(
            "listening on {} for up to {secs}s (session {session})",
            handle.local_addr()
        );
        while Instant::now() < deadline && !handle.is_finished() {
            std::thread::sleep(Duration::from_millis(100));
        }
        let log = handle.stop();
        eprintln!(
            "collected {} packets ({} rejected, {} duplicates)",
            log.packets, log.rejected, log.duplicates
        );
        ReceiverFile::new(&log).save(&log_path)?;
        eprintln!("receiver log written to {}", log_path.display());
    }

    if !metrics_path.is_empty() {
        metrics.save(Path::new(&metrics_path))?;
        eprintln!("metrics written to {metrics_path}");
    }
    Ok(())
}
