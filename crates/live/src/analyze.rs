//! Post-run analysis: join sender manifest with receiver log and run the
//! shared `badabing-core` pipeline.
//!
//! The receiver cannot see probes whose every packet was lost (nothing
//! arrives to decode), so loss accounting needs the sender's manifest —
//! the live analogue of the simulator harness's sent/arrived join. With
//! offset-removed *queueing* delays in hand, `OWDmax` estimates and the
//! `(1-α)` threshold work exactly as in §6.1.

use crate::receiver::ReceiverLog;
use crate::sender::SenderManifest;
use badabing_core::config::BadabingConfig;
use badabing_core::detector::{CongestionDetector, DetectorReport, ProbeObservation};
use badabing_core::estimator::Estimates;
use badabing_core::outcome::{ExperimentLog, Outcome};
use badabing_core::validate::Validation;
use badabing_wire::control::ReportRecord;

/// The canonical **loss-only** experiment log over fetched report
/// records — the reference fold the receiver's online estimator is
/// differentially tested against.
///
/// The derivation mirrors the receiver's online rule exactly: records
/// are grouped by experiment, a group only yields an outcome when its
/// slots are contiguous and 2 or 3 wide (the `detector::assemble`
/// grouping discipline), and a probe is congested iff its clamped
/// arrival count is short of the train length (`received.min(train) <
/// train`). Probes lost in their entirety never produce a record, so
/// their experiment stays incomplete on both sides. Unlike
/// [`analyze_run`] this needs no sender manifest and no delay data: it
/// is computable from the report alone, which is what makes the FIN
/// differential (`online == from_log(loss_log_from_records(report))`)
/// a closed contract.
pub fn loss_log_from_records(
    records: &[ReportRecord],
    train: u8,
    n_slots: u64,
    slot_secs: f64,
) -> ExperimentLog {
    let mut sorted: Vec<&ReportRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.experiment, r.slot));
    let mut log = ExperimentLog::new(n_slots, slot_secs);
    let mut i = 0;
    while i < sorted.len() {
        let exp = sorted[i].experiment;
        let mut j = i;
        while j < sorted.len() && sorted[j].experiment == exp {
            j += 1;
        }
        let group = &sorted[i..j];
        i = j;
        let lo = group[0].slot;
        let hi = group[group.len() - 1].slot;
        let span = (hi - lo).saturating_add(1);
        if !(group.len() == 2 || group.len() == 3) || span != group.len() as u64 {
            continue;
        }
        let mut states = [false; 3];
        for (k, r) in group.iter().enumerate() {
            states[k] = r.received.min(train) < train;
        }
        log.push(Outcome {
            id: exp,
            start_slot: lo,
            probes: group.len() as u8,
            states,
        });
    }
    log
}

/// Results of a live run.
#[derive(Debug, Clone)]
pub struct LiveAnalysis {
    /// Assembled experiment records.
    pub log: ExperimentLog,
    /// Counts and estimates.
    pub estimates: Estimates,
    /// §5.4 validation.
    pub validation: Validation,
    /// Detector diagnostics.
    pub detector: DetectorReport,
    /// Probe packets lost end to end.
    pub packets_lost: u64,
}

impl LiveAnalysis {
    /// Estimated loss-episode frequency.
    pub fn frequency(&self) -> Option<f64> {
        self.estimates.frequency()
    }

    /// Estimated mean loss-episode duration in seconds.
    pub fn duration_secs(&self) -> Option<f64> {
        self.estimates
            .duration_secs_improved()
            .or_else(|| self.estimates.duration_secs_basic())
    }
}

/// Join and analyze.
pub fn analyze_run(
    cfg: &BadabingConfig,
    manifest: &SenderManifest,
    receiver: &ReceiverLog,
) -> LiveAnalysis {
    let mut obs: Vec<ProbeObservation> = manifest
        .sent
        .iter()
        .map(|s| {
            let rec = receiver.arrivals.get(&(s.experiment, s.slot));
            let received = rec.map_or(0, |r| r.received).min(s.packets);
            ProbeObservation {
                experiment: s.experiment,
                slot: s.slot,
                send_time_secs: s.send_time_secs,
                packets_sent: s.packets,
                packets_lost: s.packets - received,
                owd_last_secs: rec.map(|r| r.qdelay_last_secs),
                owd_max_secs: rec.map(|r| r.qdelay_max_secs),
            }
        })
        .collect();
    obs.sort_by(|a, b| a.send_time_secs.total_cmp(&b.send_time_secs));
    let packets_lost = obs.iter().map(|o| u64::from(o.packets_lost)).sum();

    let detector = CongestionDetector::new(cfg);
    let (log, report) = detector.assemble(&obs, manifest.n_slots, manifest.slot_secs);
    let estimates = Estimates::from_log(&log);
    let validation = Validation::from_log(&log);
    LiveAnalysis {
        log,
        estimates,
        validation,
        detector: report,
        packets_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::ArrivalRecord;
    use crate::sender::SentProbeInfo;
    use std::collections::HashMap;

    fn manifest(probes: Vec<SentProbeInfo>) -> SenderManifest {
        SenderManifest {
            session: 1,
            packets_sent: probes.iter().map(|p| u64::from(p.packets)).sum(),
            packets_refused: 0,
            sent: probes,
            n_slots: 1_000,
            slot_secs: 0.005,
        }
    }

    #[test]
    fn clean_run_estimates_zero_frequency() {
        let probes = vec![
            SentProbeInfo {
                experiment: 0,
                slot: 10,
                send_time_secs: 0.05,
                packets: 3,
            },
            SentProbeInfo {
                experiment: 0,
                slot: 11,
                send_time_secs: 0.055,
                packets: 3,
            },
            SentProbeInfo {
                experiment: 1,
                slot: 50,
                send_time_secs: 0.25,
                packets: 3,
            },
            SentProbeInfo {
                experiment: 1,
                slot: 51,
                send_time_secs: 0.255,
                packets: 3,
            },
        ];
        let mut arrivals = HashMap::new();
        for p in &probes {
            arrivals.insert(
                (p.experiment, p.slot),
                ArrivalRecord {
                    received: 3,
                    qdelay_last_secs: 0.001,
                    qdelay_max_secs: 0.002,
                    ..Default::default()
                },
            );
        }
        let receiver = ReceiverLog {
            arrivals,
            packets: 12,
            min_raw_delay_ns: Some(0),
            ..Default::default()
        };
        let cfg = BadabingConfig::paper_default(0.3);
        let a = analyze_run(&cfg, &manifest(probes), &receiver);
        assert_eq!(a.frequency(), Some(0.0));
        assert_eq!(a.packets_lost, 0);
        assert_eq!(a.log.len(), 2);
        assert_eq!(a.detector.incomplete_experiments, 0);
    }

    #[test]
    fn fully_lost_probe_is_counted_via_manifest() {
        let probes = vec![
            SentProbeInfo {
                experiment: 0,
                slot: 10,
                send_time_secs: 0.05,
                packets: 3,
            },
            SentProbeInfo {
                experiment: 0,
                slot: 11,
                send_time_secs: 0.055,
                packets: 3,
            },
        ];
        // Receiver saw nothing for slot 10, everything for slot 11.
        let mut arrivals = HashMap::new();
        arrivals.insert(
            (0u64, 11u64),
            ArrivalRecord {
                received: 3,
                qdelay_last_secs: 0.09,
                qdelay_max_secs: 0.09,
                ..Default::default()
            },
        );
        let receiver = ReceiverLog {
            arrivals,
            packets: 3,
            min_raw_delay_ns: Some(0),
            ..Default::default()
        };
        let cfg = BadabingConfig::paper_default(0.3);
        let a = analyze_run(&cfg, &manifest(probes), &receiver);
        assert_eq!(a.packets_lost, 3);
        assert_eq!(
            a.frequency(),
            Some(1.0),
            "the one experiment starts congested"
        );
    }
}
