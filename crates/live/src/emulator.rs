//! A user-space bottleneck emulator.
//!
//! Stands in for the testbed's congested OC3 hop when running the live
//! tool on a machine pair (or loopback): a UDP forwarder whose admission
//! decision is governed by a *virtual* drop-tail queue drained at a
//! configured rate. Real probe bytes and synthetic cross-traffic bytes
//! share the queue, so probes experience the same loss/delay coupling the
//! simulator and the real router produce: when the virtual queue is full,
//! arriving probes are dropped; otherwise they are forwarded after the
//! queue's current drain time.
//!
//! Scripted episodes reproduce the Iperf scenario: at exponential
//! intervals, synthetic cross traffic at `burst_factor × rate` is poured
//! into the queue for long enough to cause a loss episode of the
//! configured duration.

use badabing_stats::dist::{Exponential, Sample};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::oneshot;
use tokio::time::{Duration, Instant};

/// Emulator configuration.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// Listen address for incoming probe datagrams.
    pub bind: SocketAddr,
    /// Where admitted datagrams are forwarded.
    pub target: SocketAddr,
    /// Virtual bottleneck rate in bits per second.
    pub rate_bps: u64,
    /// Virtual buffer size in bytes.
    pub buffer_bytes: u64,
    /// Mean gap between scripted loss episodes in seconds
    /// (`f64::INFINITY` disables episodes).
    pub episode_mean_gap_secs: f64,
    /// Loss duration of each episode in seconds.
    pub episode_loss_secs: f64,
    /// Synthetic overload during an episode, as a multiple of `rate_bps`
    /// (must be > 1 for episodes to cause loss).
    pub burst_factor: f64,
}

impl EmulatorConfig {
    /// A loopback-scale bottleneck: 20 Mb/s with 100 ms of buffer and
    /// 68 ms loss episodes every 10 s — the CBR scenario shrunk to what a
    /// loopback interface comfortably carries.
    pub fn loopback_default(bind: SocketAddr, target: SocketAddr) -> Self {
        Self {
            bind,
            target,
            rate_bps: 20_000_000,
            buffer_bytes: 250_000, // 100 ms at 20 Mb/s
            episode_mean_gap_secs: 10.0,
            episode_loss_secs: 0.068,
            burst_factor: 3.0,
        }
    }

    /// Buffer drain time in seconds.
    pub fn buffer_secs(&self) -> f64 {
        self.buffer_bytes as f64 * 8.0 / self.rate_bps as f64
    }
}

/// Counters published by the emulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmulatorStats {
    /// Datagrams forwarded.
    pub forwarded: u64,
    /// Datagrams dropped at the virtual queue.
    pub dropped: u64,
    /// Scripted episodes run.
    pub episodes: u64,
}

/// Virtual queue state: occupancy in bytes, drained continuously.
struct VirtualQueue {
    depth_bytes: f64,
    last_update: Instant,
    rate_bps: f64,
    capacity_bytes: f64,
}

impl VirtualQueue {
    fn drain_to(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.last_update).as_secs_f64();
        self.depth_bytes = (self.depth_bytes - elapsed * self.rate_bps / 8.0).max(0.0);
        self.last_update = now;
    }

    /// Try to admit `bytes`; returns the drain delay if admitted.
    fn offer(&mut self, now: Instant, bytes: f64) -> Option<Duration> {
        self.drain_to(now);
        if self.depth_bytes + bytes > self.capacity_bytes {
            return None;
        }
        self.depth_bytes += bytes;
        Some(Duration::from_secs_f64(self.depth_bytes * 8.0 / self.rate_bps))
    }

    /// Pour synthetic cross-traffic in (overflow simply saturates —
    /// synthetic packets "dropped" need no accounting).
    fn inject(&mut self, now: Instant, bytes: f64) {
        self.drain_to(now);
        self.depth_bytes = (self.depth_bytes + bytes).min(self.capacity_bytes);
    }

    #[cfg(test)]
    fn is_full(&mut self, now: Instant, headroom_bytes: f64) -> bool {
        self.drain_to(now);
        self.depth_bytes + headroom_bytes > self.capacity_bytes
    }
}

/// A running emulator.
pub struct Emulator {
    stop: oneshot::Sender<()>,
    stats: Arc<Mutex<EmulatorStats>>,
    local_addr: SocketAddr,
    forward_task: tokio::task::JoinHandle<()>,
    episode_task: tokio::task::JoinHandle<()>,
}

impl Emulator {
    /// Start the emulator.
    pub async fn start(cfg: EmulatorConfig, mut rng: StdRng) -> std::io::Result<Self> {
        assert!(cfg.rate_bps > 0 && cfg.buffer_bytes > 0, "rate and buffer must be positive");
        let socket = Arc::new(UdpSocket::bind(cfg.bind).await?);
        let local_addr = socket.local_addr()?;
        let out = Arc::new(UdpSocket::bind("127.0.0.1:0".parse::<SocketAddr>().unwrap()).await?);
        out.connect(cfg.target).await?;

        let queue = Arc::new(Mutex::new(VirtualQueue {
            depth_bytes: 0.0,
            last_update: Instant::now(),
            rate_bps: cfg.rate_bps as f64,
            capacity_bytes: cfg.buffer_bytes as f64,
        }));
        let stats = Arc::new(Mutex::new(EmulatorStats::default()));
        let (stop_tx, mut stop_rx) = oneshot::channel::<()>();

        // Episode scripting: during an episode window, inject overload
        // every tick so the queue pins at capacity and arrivals drop.
        let episode_task = {
            let queue = queue.clone();
            let stats = stats.clone();
            let mean_gap = cfg.episode_mean_gap_secs;
            let loss_secs = cfg.episode_loss_secs;
            let burst_factor = cfg.burst_factor;
            let rate_bps = cfg.rate_bps as f64;
            let fill_secs = cfg.buffer_secs() / (burst_factor - 1.0).max(1e-6);
            tokio::spawn(async move {
                if !mean_gap.is_finite() {
                    return;
                }
                let gap = Exponential::with_mean(mean_gap);
                let tick = Duration::from_millis(1);
                loop {
                    let wait = gap.sample(&mut rng);
                    tokio::time::sleep(Duration::from_secs_f64(wait)).await;
                    stats.lock().episodes += 1;
                    let end = Instant::now()
                        + Duration::from_secs_f64(fill_secs + loss_secs);
                    // Inject synthetic load based on *elapsed* time, not
                    // the nominal tick: tokio's timer floor (~1 ms) would
                    // otherwise silently scale the offered load down and
                    // the queue might never reach capacity.
                    let mut last = Instant::now();
                    while Instant::now() < end {
                        let now = Instant::now();
                        let elapsed = now.duration_since(last).as_secs_f64();
                        last = now;
                        queue
                            .lock()
                            .inject(now, burst_factor * rate_bps * elapsed / 8.0);
                        tokio::time::sleep(tick).await;
                    }
                }
            })
        };

        // Forwarding loop: admit or drop, then forward after the queue's
        // drain delay (per-datagram task keeps the loop non-blocking; FIFO
        // order holds because drain delays are computed from monotone
        // queue depths).
        let forward_task = {
            let socket = socket.clone();
            let out = out.clone();
            let queue = queue.clone();
            let stats = stats.clone();
            tokio::spawn(async move {
                let mut buf = vec![0u8; 65_536];
                loop {
                    tokio::select! {
                        _ = &mut stop_rx => break,
                        res = socket.recv(&mut buf) => {
                            let Ok(len) = res else { break };
                            let now = Instant::now();
                            let admitted = queue.lock().offer(now, len as f64);
                            match admitted {
                                None => stats.lock().dropped += 1,
                                Some(delay) => {
                                    stats.lock().forwarded += 1;
                                    let data = buf[..len].to_vec();
                                    let out = out.clone();
                                    tokio::spawn(async move {
                                        tokio::time::sleep(delay).await;
                                        let _ = out.send(&data).await;
                                    });
                                }
                            }
                        }
                    }
                }
            })
        };

        Ok(Self { stop: stop_tx, stats, local_addr, forward_task, episode_task })
    }

    /// The address probes should be sent to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> EmulatorStats {
        *self.stats.lock()
    }

    /// Stop forwarding and scripting.
    pub async fn stop(self) -> EmulatorStats {
        let _ = self.stop.send(());
        self.episode_task.abort();
        let _ = self.forward_task.await;
        let _ = self.episode_task.await;
        let stats = *self.stats.lock();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_stats::rng::seeded;

    fn local0() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn virtual_queue_admits_and_drains() {
        let t0 = Instant::now();
        let mut q = VirtualQueue {
            depth_bytes: 0.0,
            last_update: t0,
            rate_bps: 8_000_000.0, // 1 MB/s
            capacity_bytes: 10_000.0,
        };
        // Admit 5 KB → drain delay 5 ms.
        let d = q.offer(t0, 5_000.0).expect("admitted");
        assert!((d.as_secs_f64() - 0.005).abs() < 1e-9);
        // Another 6 KB does not fit.
        assert!(q.offer(t0, 6_000.0).is_none());
        // 4 ms later, 4 KB drained: 6 KB fits now.
        let t1 = t0 + Duration::from_millis(4);
        assert!(q.offer(t1, 6_000.0).is_some());
    }

    #[test]
    fn virtual_queue_injection_saturates() {
        let t0 = Instant::now();
        let mut q = VirtualQueue {
            depth_bytes: 0.0,
            last_update: t0,
            rate_bps: 8_000_000.0,
            capacity_bytes: 10_000.0,
        };
        q.inject(t0, 50_000.0);
        assert!((q.depth_bytes - 10_000.0).abs() < 1e-9, "clamped at capacity");
        assert!(q.is_full(t0, 1.0));
        assert!(q.offer(t0, 100.0).is_none());
    }

    #[tokio::test]
    async fn forwards_when_uncongested() {
        let sink = UdpSocket::bind(local0()).await.unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = EmulatorConfig {
            episode_mean_gap_secs: f64::INFINITY,
            ..EmulatorConfig::loopback_default(local0(), target)
        };
        let emu = Emulator::start(cfg, seeded(1, "emu")).await.unwrap();
        let sender = UdpSocket::bind(local0()).await.unwrap();
        for i in 0..20u8 {
            sender.send_to(&[i; 100], emu.local_addr()).await.unwrap();
        }
        let mut got = 0;
        let mut buf = [0u8; 256];
        while let Ok(Ok(_)) =
            tokio::time::timeout(Duration::from_millis(300), sink.recv(&mut buf)).await
        {
            got += 1;
            if got == 20 {
                break;
            }
        }
        assert_eq!(got, 20);
        let stats = emu.stop().await;
        assert_eq!(stats.forwarded, 20);
        assert_eq!(stats.dropped, 0);
    }

    #[tokio::test]
    async fn small_buffer_drops_bursts() {
        let sink = UdpSocket::bind(local0()).await.unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = EmulatorConfig {
            rate_bps: 1_000_000, // 125 kB/s
            buffer_bytes: 3_000,
            episode_mean_gap_secs: f64::INFINITY,
            episode_loss_secs: 0.0,
            burst_factor: 2.0,
            bind: local0(),
            target,
        };
        let emu = Emulator::start(cfg, seeded(2, "emu")).await.unwrap();
        let sender = UdpSocket::bind(local0()).await.unwrap();
        // 20 kB burst into a 3 kB buffer: most must drop.
        for _ in 0..20 {
            sender.send_to(&[0u8; 1000], emu.local_addr()).await.unwrap();
        }
        tokio::time::sleep(Duration::from_millis(300)).await;
        let stats = emu.stop().await;
        assert!(stats.dropped >= 10, "dropped {}", stats.dropped);
        assert!(stats.forwarded <= 10);
    }

    #[tokio::test]
    async fn scripted_episodes_fill_the_queue() {
        let sink = UdpSocket::bind(local0()).await.unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = EmulatorConfig {
            rate_bps: 10_000_000,
            buffer_bytes: 50_000,
            episode_mean_gap_secs: 0.2, // episodes almost immediately
            episode_loss_secs: 0.3,
            burst_factor: 4.0,
            bind: local0(),
            target,
        };
        let emu = Emulator::start(cfg, seeded(3, "emu")).await.unwrap();
        let sender = UdpSocket::bind(local0()).await.unwrap();
        // Trickle probes through one second of scripted congestion.
        let mut dropped_expected = false;
        for _ in 0..200 {
            sender.send_to(&[0u8; 200], emu.local_addr()).await.unwrap();
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
        let stats = emu.stop().await;
        if stats.episodes > 0 && stats.dropped > 0 {
            dropped_expected = true;
        }
        assert!(dropped_expected, "episodes {} drops {}", stats.episodes, stats.dropped);
    }
}
