//! A user-space bottleneck emulator.
//!
//! Stands in for the testbed's congested OC3 hop when running the live
//! tool on a machine pair (or loopback): a UDP forwarder whose admission
//! decision is governed by a *virtual* drop-tail queue drained at a
//! configured rate. Real probe bytes and synthetic cross-traffic bytes
//! share the queue, so probes experience the same loss/delay coupling the
//! simulator and the real router produce: when the virtual queue is full,
//! arriving probes are dropped; otherwise they are forwarded after the
//! queue's current drain time.
//!
//! Scripted episodes reproduce the Iperf scenario: at exponential
//! intervals, synthetic cross traffic at `burst_factor × rate` is poured
//! into the queue for long enough to cause a loss episode of the
//! configured duration.
//!
//! Three plain threads: a receive/admit loop, a delayed-delivery loop
//! ordered by a binary heap of due times, and the episode scripter. The
//! emulator only sits on the probe path — control-plane datagrams go
//! directly sender → receiver and are never routed through here.

use crate::provider::Provider;
use badabing_metrics::Registry;
use badabing_stats::dist::{Exponential, Sample};
use badabing_wire::ProbeHeader;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Emulator configuration.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// Listen address for incoming probe datagrams.
    pub bind: SocketAddr,
    /// Where admitted datagrams are forwarded.
    pub target: SocketAddr,
    /// Virtual bottleneck rate in bits per second.
    pub rate_bps: u64,
    /// Virtual buffer size in bytes.
    pub buffer_bytes: u64,
    /// Mean gap between scripted loss episodes in seconds
    /// (`f64::INFINITY` disables episodes).
    pub episode_mean_gap_secs: f64,
    /// Loss duration of each episode in seconds.
    pub episode_loss_secs: f64,
    /// Synthetic overload during an episode, as a multiple of `rate_bps`
    /// (must be > 1 for episodes to cause loss).
    pub burst_factor: f64,
    /// Run counters and delay histograms, if observability is wanted.
    pub metrics: Option<Arc<Registry>>,
    /// I/O backend for both sockets. The emulator's queue and episode
    /// scripting run on *real* time even over a virtual backend — for
    /// virtual-time fault injection use [`crate::LinkFaults`] on the
    /// net itself instead of routing probes through an emulator.
    pub provider: Provider,
}

impl EmulatorConfig {
    /// A loopback-scale bottleneck: 20 Mb/s with 100 ms of buffer and
    /// 68 ms loss episodes every 10 s — the CBR scenario shrunk to what a
    /// loopback interface comfortably carries.
    pub fn loopback_default(bind: SocketAddr, target: SocketAddr) -> Self {
        Self {
            bind,
            target,
            rate_bps: 20_000_000,
            buffer_bytes: 250_000, // 100 ms at 20 Mb/s
            episode_mean_gap_secs: 10.0,
            episode_loss_secs: 0.068,
            burst_factor: 3.0,
            metrics: None,
            provider: Provider::default(),
        }
    }

    /// Buffer drain time in seconds.
    pub fn buffer_secs(&self) -> f64 {
        self.buffer_bytes as f64 * 8.0 / self.rate_bps as f64
    }
}

/// Counters published by the emulator.
#[derive(Debug, Clone, Default)]
pub struct EmulatorStats {
    /// Datagrams forwarded.
    pub forwarded: u64,
    /// Datagrams dropped at the virtual queue.
    pub dropped: u64,
    /// Scripted episodes run.
    pub episodes: u64,
    /// Per-session probe accounting, keyed by the probe header's session
    /// id (datagrams that do not decode as probes are counted only in
    /// the totals above). With many senders sharing one bottleneck this
    /// is what ties each sender's manifest to its share of the loss.
    pub per_session: BTreeMap<u32, SessionFlow>,
}

/// One session's share of the emulator's traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionFlow {
    /// Probe datagrams of this session forwarded.
    pub forwarded: u64,
    /// Probe datagrams of this session dropped at the virtual queue.
    pub dropped: u64,
}

/// Virtual queue state: occupancy in bytes, drained continuously.
struct VirtualQueue {
    depth_bytes: f64,
    last_update: Instant,
    rate_bps: f64,
    capacity_bytes: f64,
}

impl VirtualQueue {
    fn drain_to(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.last_update).as_secs_f64();
        self.depth_bytes = (self.depth_bytes - elapsed * self.rate_bps / 8.0).max(0.0);
        self.last_update = now;
    }

    /// Try to admit `bytes`; returns the drain delay if admitted.
    fn offer(&mut self, now: Instant, bytes: f64) -> Option<Duration> {
        self.drain_to(now);
        if self.depth_bytes + bytes > self.capacity_bytes {
            return None;
        }
        self.depth_bytes += bytes;
        Some(Duration::from_secs_f64(
            self.depth_bytes * 8.0 / self.rate_bps,
        ))
    }

    /// Pour synthetic cross-traffic in (overflow simply saturates —
    /// synthetic packets "dropped" need no accounting).
    fn inject(&mut self, now: Instant, bytes: f64) {
        self.drain_to(now);
        self.depth_bytes = (self.depth_bytes + bytes).min(self.capacity_bytes);
    }

    #[cfg(test)]
    fn is_full(&mut self, now: Instant, headroom_bytes: f64) -> bool {
        self.drain_to(now);
        self.depth_bytes + headroom_bytes > self.capacity_bytes
    }
}

/// A datagram admitted to the queue, waiting out its drain delay.
struct Pending {
    due: Instant,
    seq: u64,
    data: Vec<u8>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // FIFO holds: drain delays are computed from monotone queue
        // depths, and `seq` breaks equal-due ties in admission order.
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// How often blocking loops wake to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// A running emulator.
pub struct Emulator {
    stop: Arc<AtomicBool>,
    stats: Arc<Mutex<EmulatorStats>>,
    local_addr: SocketAddr,
    wakeup: Arc<Condvar>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Emulator {
    /// Start the emulator threads.
    pub fn start(cfg: EmulatorConfig, mut rng: StdRng) -> std::io::Result<Self> {
        assert!(
            cfg.rate_bps > 0 && cfg.buffer_bytes > 0,
            "rate and buffer must be positive"
        );
        let socket = cfg.provider.bind(cfg.bind)?;
        socket.set_read_timeout(Some(POLL_INTERVAL))?;
        let local_addr = socket.local_addr()?;
        let out_bind: SocketAddr = if cfg.target.is_ipv4() {
            "0.0.0.0:0".parse().expect("static addr")
        } else {
            "[::]:0".parse().expect("static addr")
        };
        let out = cfg.provider.bind(out_bind)?;
        out.connect(cfg.target)?;

        let queue = Arc::new(Mutex::new(VirtualQueue {
            depth_bytes: 0.0,
            last_update: Instant::now(),
            rate_bps: cfg.rate_bps as f64,
            capacity_bytes: cfg.buffer_bytes as f64,
        }));
        let stats = Arc::new(Mutex::new(EmulatorStats::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let pending: Arc<Mutex<BinaryHeap<Reverse<Pending>>>> =
            Arc::new(Mutex::new(BinaryHeap::new()));
        let wakeup = Arc::new(Condvar::new());
        let mut threads = Vec::new();

        let m_forwarded = cfg.metrics.as_ref().map(|m| m.counter("forwarded"));
        let m_dropped = cfg.metrics.as_ref().map(|m| m.counter("dropped"));
        let m_episodes = cfg.metrics.as_ref().map(|m| m.counter("episodes"));
        let m_delay = cfg
            .metrics
            .as_ref()
            .map(|m| m.histogram("queue_delay_secs"));

        // Receive/admit loop: admit or drop against the virtual queue,
        // handing admitted datagrams to the delivery thread.
        {
            let queue = queue.clone();
            let stats = stats.clone();
            let stop = stop.clone();
            let pending = pending.clone();
            let wakeup = wakeup.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("badabing-emu-recv".into())
                    .spawn(move || {
                        let mut buf = vec![0u8; 65_536];
                        let mut seq = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let len = match socket.recv(&mut buf) {
                                Ok(len) => len,
                                Err(e)
                                    if e.kind() == std::io::ErrorKind::WouldBlock
                                        || e.kind() == std::io::ErrorKind::TimedOut
                                        || e.kind() == std::io::ErrorKind::ConnectionRefused =>
                                {
                                    continue
                                }
                                Err(_) => break,
                            };
                            let now = Instant::now();
                            let session = ProbeHeader::decode(&buf[..len]).ok().map(|h| h.session);
                            let admitted = queue.lock().expect("queue lock").offer(now, len as f64);
                            match admitted {
                                None => {
                                    let mut s = stats.lock().expect("stats lock");
                                    s.dropped += 1;
                                    if let Some(id) = session {
                                        s.per_session.entry(id).or_default().dropped += 1;
                                    }
                                    drop(s);
                                    if let Some(c) = &m_dropped {
                                        c.inc();
                                    }
                                }
                                Some(delay) => {
                                    let mut s = stats.lock().expect("stats lock");
                                    s.forwarded += 1;
                                    if let Some(id) = session {
                                        s.per_session.entry(id).or_default().forwarded += 1;
                                    }
                                    drop(s);
                                    if let Some(c) = &m_forwarded {
                                        c.inc();
                                    }
                                    if let Some(h) = &m_delay {
                                        h.record_secs(delay.as_secs_f64());
                                    }
                                    pending.lock().expect("pending lock").push(Reverse(Pending {
                                        due: now + delay,
                                        seq,
                                        data: buf[..len].to_vec(),
                                    }));
                                    seq += 1;
                                    wakeup.notify_all();
                                }
                            }
                        }
                        wakeup.notify_all();
                    })
                    .expect("spawn emulator recv thread"),
            );
        }

        // Delivery loop: release each admitted datagram at its due time.
        // On stop, anything already due still goes out; not-yet-due
        // datagrams are dropped with the queue.
        {
            let stop = stop.clone();
            let pending = pending.clone();
            let wakeup = wakeup.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("badabing-emu-deliver".into())
                    .spawn(move || loop {
                        let mut heap = pending.lock().expect("pending lock");
                        let now = Instant::now();
                        match heap.peek() {
                            Some(Reverse(p)) if p.due <= now => {
                                let p = heap.pop().expect("peeked").0;
                                drop(heap);
                                let _ = out.send(&p.data);
                            }
                            Some(Reverse(p)) => {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                                let wait = (p.due - now).min(POLL_INTERVAL);
                                let _ = wakeup.wait_timeout(heap, wait).expect("pending lock");
                            }
                            None => {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                                let _ = wakeup
                                    .wait_timeout(heap, POLL_INTERVAL)
                                    .expect("pending lock");
                            }
                        }
                    })
                    .expect("spawn emulator delivery thread"),
            );
        }

        // Episode scripting: during an episode window, inject overload
        // every tick so the queue pins at capacity and arrivals drop.
        if cfg.episode_mean_gap_secs.is_finite() {
            let queue = queue.clone();
            let stats = stats.clone();
            let stop = stop.clone();
            let mean_gap = cfg.episode_mean_gap_secs;
            let loss_secs = cfg.episode_loss_secs;
            let burst_factor = cfg.burst_factor;
            let rate_bps = cfg.rate_bps as f64;
            let fill_secs = cfg.buffer_secs() / (burst_factor - 1.0).max(1e-6);
            threads.push(
                std::thread::Builder::new()
                    .name("badabing-emu-episodes".into())
                    .spawn(move || {
                        let gap = Exponential::with_mean(mean_gap);
                        let tick = Duration::from_millis(1);
                        'episodes: loop {
                            let wait = Duration::from_secs_f64(gap.sample(&mut rng));
                            let resume = Instant::now() + wait;
                            while Instant::now() < resume {
                                if stop.load(Ordering::Relaxed) {
                                    break 'episodes;
                                }
                                std::thread::sleep((resume - Instant::now()).min(POLL_INTERVAL));
                            }
                            stats.lock().expect("stats lock").episodes += 1;
                            if let Some(c) = &m_episodes {
                                c.inc();
                            }
                            let end =
                                Instant::now() + Duration::from_secs_f64(fill_secs + loss_secs);
                            // Inject synthetic load based on *elapsed* time,
                            // not the nominal tick: the OS timer floor would
                            // otherwise silently scale the offered load down
                            // and the queue might never reach capacity.
                            let mut last = Instant::now();
                            while Instant::now() < end {
                                if stop.load(Ordering::Relaxed) {
                                    break 'episodes;
                                }
                                let now = Instant::now();
                                let elapsed = now.duration_since(last).as_secs_f64();
                                last = now;
                                queue
                                    .lock()
                                    .expect("queue lock")
                                    .inject(now, burst_factor * rate_bps * elapsed / 8.0);
                                std::thread::sleep(tick);
                            }
                        }
                    })
                    .expect("spawn emulator episode thread"),
            );
        }

        Ok(Self {
            stop,
            stats,
            local_addr,
            wakeup,
            threads,
        })
    }

    /// The address probes should be sent to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> EmulatorStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// Stop forwarding and scripting.
    pub fn stop(self) -> EmulatorStats {
        self.stop.store(true, Ordering::Relaxed);
        self.wakeup.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
        self.stats.lock().expect("stats lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_stats::rng::seeded;
    use std::net::UdpSocket;

    fn local0() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn virtual_queue_admits_and_drains() {
        let t0 = Instant::now();
        let mut q = VirtualQueue {
            depth_bytes: 0.0,
            last_update: t0,
            rate_bps: 8_000_000.0, // 1 MB/s
            capacity_bytes: 10_000.0,
        };
        // Admit 5 KB → drain delay 5 ms.
        let d = q.offer(t0, 5_000.0).expect("admitted");
        assert!((d.as_secs_f64() - 0.005).abs() < 1e-9);
        // Another 6 KB does not fit.
        assert!(q.offer(t0, 6_000.0).is_none());
        // 4 ms later, 4 KB drained: 6 KB fits now.
        let t1 = t0 + Duration::from_millis(4);
        assert!(q.offer(t1, 6_000.0).is_some());
    }

    #[test]
    fn virtual_queue_injection_saturates() {
        let t0 = Instant::now();
        let mut q = VirtualQueue {
            depth_bytes: 0.0,
            last_update: t0,
            rate_bps: 8_000_000.0,
            capacity_bytes: 10_000.0,
        };
        q.inject(t0, 50_000.0);
        assert!(
            (q.depth_bytes - 10_000.0).abs() < 1e-9,
            "clamped at capacity"
        );
        assert!(q.is_full(t0, 1.0));
        assert!(q.offer(t0, 100.0).is_none());
    }

    #[test]
    fn forwards_when_uncongested() {
        let sink = UdpSocket::bind(local0()).unwrap();
        sink.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let target = sink.local_addr().unwrap();
        let metrics = Arc::new(Registry::new("emu-test"));
        let cfg = EmulatorConfig {
            episode_mean_gap_secs: f64::INFINITY,
            metrics: Some(metrics.clone()),
            ..EmulatorConfig::loopback_default(local0(), target)
        };
        let emu = Emulator::start(cfg, seeded(1, "emu")).unwrap();
        let sender = UdpSocket::bind(local0()).unwrap();
        for i in 0..20u8 {
            sender.send_to(&[i; 100], emu.local_addr()).unwrap();
        }
        let mut got = 0;
        let mut buf = [0u8; 256];
        while sink.recv(&mut buf).is_ok() {
            got += 1;
            if got == 20 {
                break;
            }
        }
        assert_eq!(got, 20);
        let stats = emu.stop();
        assert_eq!(stats.forwarded, 20);
        assert_eq!(stats.dropped, 0);
        assert_eq!(metrics.counter("forwarded").get(), 20);
    }

    #[test]
    fn per_session_flows_are_attributed() {
        let sink = UdpSocket::bind(local0()).unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = EmulatorConfig {
            episode_mean_gap_secs: f64::INFINITY,
            ..EmulatorConfig::loopback_default(local0(), target)
        };
        let emu = Emulator::start(cfg, seeded(4, "emu")).unwrap();
        let sender = UdpSocket::bind(local0()).unwrap();
        for (session, count) in [(101u32, 5u64), (202, 3)] {
            for i in 0..count {
                let h = ProbeHeader {
                    session,
                    experiment: 0,
                    slot: i,
                    seq: i,
                    send_ns: 0,
                    idx: 0,
                    probe_len: 1,
                };
                sender.send_to(&h.encode(100), emu.local_addr()).unwrap();
            }
        }
        // Non-probe datagrams are forwarded but attributed to no session.
        sender.send_to(b"not-a-probe", emu.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let stats = emu.stop();
        assert_eq!(stats.forwarded, 9);
        assert_eq!(stats.per_session.len(), 2);
        assert_eq!(stats.per_session[&101].forwarded, 5);
        assert_eq!(stats.per_session[&202].forwarded, 3);
        assert_eq!(stats.per_session[&101].dropped, 0);
    }

    #[test]
    fn small_buffer_drops_bursts() {
        let sink = UdpSocket::bind(local0()).unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = EmulatorConfig {
            rate_bps: 1_000_000, // 125 kB/s
            buffer_bytes: 3_000,
            episode_mean_gap_secs: f64::INFINITY,
            episode_loss_secs: 0.0,
            burst_factor: 2.0,
            bind: local0(),
            target,
            metrics: None,
            provider: Provider::default(),
        };
        let emu = Emulator::start(cfg, seeded(2, "emu")).unwrap();
        let sender = UdpSocket::bind(local0()).unwrap();
        // 20 kB burst into a 3 kB buffer: most must drop.
        for _ in 0..20 {
            sender.send_to(&[0u8; 1000], emu.local_addr()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(300));
        let stats = emu.stop();
        assert!(stats.dropped >= 10, "dropped {}", stats.dropped);
        assert!(stats.forwarded <= 10);
    }

    #[test]
    fn scripted_episodes_fill_the_queue() {
        let sink = UdpSocket::bind(local0()).unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = EmulatorConfig {
            rate_bps: 10_000_000,
            buffer_bytes: 50_000,
            episode_mean_gap_secs: 0.2, // episodes almost immediately
            episode_loss_secs: 0.3,
            burst_factor: 4.0,
            bind: local0(),
            target,
            metrics: None,
            provider: Provider::default(),
        };
        let emu = Emulator::start(cfg, seeded(3, "emu")).unwrap();
        let sender = UdpSocket::bind(local0()).unwrap();
        // Trickle probes through one second of scripted congestion.
        for _ in 0..200 {
            sender.send_to(&[0u8; 200], emu.local_addr()).unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = emu.stop();
        assert!(
            stats.episodes > 0 && stats.dropped > 0,
            "episodes {} drops {}",
            stats.episodes,
            stats.dropped
        );
    }
}
