//! Clock offset and skew removal for one-way delay series.
//!
//! §7: "To accurately calculate end-to-end delay for inferring congestion
//! requires time synchronization of end hosts. While we can trivially
//! eliminate offset, clock skew is still a concern." Raw receiver-minus-
//! sender timestamps have the form
//!
//! ```text
//! raw(t) = queueing_delay(t) + C + ρ·t
//! ```
//!
//! with unknown constant offset `C` and relative clock skew `ρ` (tens of
//! ppm on commodity hardware — ~36 ms/hour at 10 ppm, enough to swamp a
//! 100 ms queueing signal over a long run). Since `queueing_delay ≥ 0`
//! and the path is idle at least occasionally, the *lower envelope* of
//! the raw series is the clock line `C + ρ·t`. [`fit_baseline`]
//! estimates it with the classic two-window-minima construction (as in
//! Zhang, Liu & Xia's fixed-segment scheme [38 in the paper]): take the
//! minimum point of the first and last thirds of the run and pass a line
//! through them; [`Baseline::correct`] then yields queueing delays that
//! are non-negative up to numerical error. The residual is deliberately
//! *not* clamped at zero: the envelope samples themselves land a few
//! float-rounding ULPs below the fitted line, and clamping would turn
//! "touching the baseline" into a phantom exact 0.0 that hides
//! record-level inconsistencies (a max seeded at 0.0 can then exceed the
//! last observed value). Consumers that need a non-negative quantity
//! (histograms, plotting) clamp at their own edge.

/// A fitted clock baseline `offset + slope·t` (seconds, seconds/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Estimated constant offset `C` at `t = 0`, in seconds.
    pub offset: f64,
    /// Estimated relative skew `ρ` in seconds per second.
    pub slope: f64,
}

impl Baseline {
    /// Queueing delay implied by a raw delay sample at receiver time `t`.
    ///
    /// For samples the baseline was fitted over, the result is bounded
    /// below by roughly float rounding (see the module docs for why it
    /// is not clamped at exactly zero).
    pub fn correct(&self, t: f64, raw: f64) -> f64 {
        raw - (self.offset + self.slope * t)
    }
}

/// Fit the lower-envelope clock line to `(receiver time, raw delay)`
/// points. Returns `None` for an empty input.
///
/// Robustness notes:
/// * with fewer than 8 points, or a run too short to resolve a slope
///   (< 1 s between the window minima), the slope is pinned to zero and
///   only the offset (global minimum) is removed — the behaviour of the
///   simple min-subtraction estimator;
/// * the fit never reports a baseline above any sample by more than
///   numerical error, so corrected delays are non-negative by
///   construction.
pub fn fit_baseline(points: &[(f64, f64)]) -> Option<Baseline> {
    if points.is_empty() {
        return None;
    }
    let global_min = points.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
    let (t_min, t_max) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(t, _)| {
            (lo.min(t), hi.max(t))
        });

    if points.len() < 8 || t_max - t_min < 1.0 {
        return Some(Baseline {
            offset: global_min,
            slope: 0.0,
        });
    }

    // Minimum point of the first third and of the last third.
    let span = t_max - t_min;
    let first_end = t_min + span / 3.0;
    let last_start = t_max - span / 3.0;
    let min_in = |lo: f64, hi: f64| -> Option<(f64, f64)> {
        points
            .iter()
            .filter(|&&(t, _)| t >= lo && t <= hi)
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    };
    let (t1, d1) = min_in(t_min, first_end)?;
    let (t2, d2) = min_in(last_start, t_max)?;
    if (t2 - t1).abs() < 1.0 {
        return Some(Baseline {
            offset: global_min,
            slope: 0.0,
        });
    }
    let slope = (d2 - d1) / (t2 - t1);
    let offset = d1 - slope * t1;

    // Guard: if the fitted line sits above some sample (e.g. both window
    // minima were congested), lower it to touch the envelope.
    let undershoot = points
        .iter()
        .map(|&(t, d)| d - (offset + slope * t))
        .fold(f64::INFINITY, f64::min);
    let offset = if undershoot < 0.0 {
        offset + undershoot
    } else {
        offset
    };
    Some(Baseline { offset, slope })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(
        n: usize,
        span_secs: f64,
        offset: f64,
        skew: f64,
        congestion: impl Fn(f64) -> f64,
    ) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let t = i as f64 * span_secs / n as f64;
                (t, congestion(t) + offset + skew * t)
            })
            .collect()
    }

    #[test]
    fn removes_pure_offset() {
        // Idle path with one 50 ms congestion bump; offset 5 s, no skew.
        let pts = synthetic(100, 60.0, 5.0, 0.0, |t| {
            if (20.0..22.0).contains(&t) {
                0.05
            } else {
                0.0
            }
        });
        let b = fit_baseline(&pts).unwrap();
        assert!(b.slope.abs() < 1e-9);
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            if (20.0..22.0).contains(&t) {
                assert!((q - 0.05).abs() < 1e-9, "bump read {q}");
            } else {
                assert!(q < 1e-9, "idle read {q}");
            }
        }
    }

    #[test]
    fn removes_linear_skew() {
        // 20 ppm skew over 10 minutes = 12 ms of drift; idle baseline with
        // occasional 80 ms congestion bumps.
        let pts = synthetic(2000, 600.0, -3.0, 20e-6, |t| {
            if (50.0..52.0).contains(&t) || (400.0..403.0).contains(&t) {
                0.08
            } else {
                0.0005
            }
        });
        let b = fit_baseline(&pts).unwrap();
        assert!((b.slope - 20e-6).abs() < 2e-6, "slope {}", b.slope);
        // Congested samples read ~80 ms after correction, idle ~0.5 ms.
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            if (50.0..52.0).contains(&t) {
                assert!((q - 0.08).abs() < 0.005, "congested sample read {q}");
            } else if !(400.0..403.0).contains(&t) {
                assert!(q < 0.005, "idle sample read {q}");
            }
        }
    }

    #[test]
    fn short_runs_fall_back_to_min_subtraction() {
        let pts = synthetic(5, 0.5, 2.0, 1e-3, |_| 0.0);
        let b = fit_baseline(&pts).unwrap();
        assert_eq!(b.slope, 0.0);
        let min_corrected = pts
            .iter()
            .map(|&(t, d)| b.correct(t, d))
            .fold(f64::INFINITY, f64::min);
        assert!(min_corrected.abs() < 1e-12);
    }

    #[test]
    fn corrected_delays_are_never_negative() {
        // "Never negative" up to float rounding: correct() is unclamped,
        // so envelope samples may read a few ULPs below zero.
        let pts = synthetic(500, 120.0, -7.0, -15e-6, |t| (t.sin().abs()) * 0.05);
        let b = fit_baseline(&pts).unwrap();
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            assert!(q >= -1e-9, "residual {q} below numerical error");
        }
    }

    #[test]
    fn congested_window_minima_are_guarded() {
        // Force the first-third minimum to be a congested sample: constant
        // 50 ms congestion early, idle late. The guard must still keep
        // every corrected sample non-negative.
        let pts = synthetic(
            300,
            300.0,
            1.0,
            10e-6,
            |t| if t < 120.0 { 0.05 } else { 0.0 },
        );
        let b = fit_baseline(&pts).unwrap();
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            assert!(q >= -1e-9, "residual {q} below numerical error");
        }
    }

    #[test]
    fn recovers_negative_skew() {
        // Receiver clock running *fast* relative to the sender: raw
        // delays shrink over the run. A fit that assumed non-negative
        // slope would report phantom congestion at the start.
        let pts = synthetic(2000, 600.0, 4.0, -25e-6, |t| {
            if (200.0..205.0).contains(&t) {
                0.06
            } else {
                0.0002
            }
        });
        let b = fit_baseline(&pts).unwrap();
        assert!((b.slope + 25e-6).abs() < 2e-6, "slope {}", b.slope);
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            if (200.0..205.0).contains(&t) {
                assert!((q - 0.06).abs() < 0.005, "congested sample read {q}");
            } else {
                assert!(q < 0.005, "idle sample read {q} at t={t}");
            }
        }
    }

    #[test]
    fn both_window_minima_congested_still_touches_envelope() {
        // Congestion covers the entire first AND last thirds; only the
        // middle of the run is idle. Both anchor points of the two-window
        // fit are then congested samples, placing the candidate line
        // *above* the idle middle — the guard must lower it back onto the
        // envelope so no corrected delay goes negative and the idle
        // middle reads ~0.
        let pts = synthetic(600, 300.0, 2.0, 5e-6, |t| {
            if !(110.0..190.0).contains(&t) {
                0.04
            } else {
                0.0
            }
        });
        let b = fit_baseline(&pts).unwrap();
        let mut idle_max = 0.0f64;
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            assert!(q >= -1e-9, "corrected delay {q} below numerical error");
            if (110.0..190.0).contains(&t) {
                idle_max = idle_max.max(q);
            }
        }
        // The idle middle must not inherit the congested windows' 40 ms.
        assert!(idle_max < 0.01, "idle middle reads {idle_max}");
    }

    #[test]
    fn sub_second_runs_pin_slope_to_zero() {
        // Plenty of points but a span too short to resolve ppm-scale
        // skew: slope estimation from a < 1 s lever arm would amplify
        // noise, so the fit must fall back to offset-only.
        let pts = synthetic(200, 0.9, 1.5, 100e-6, |t| if t > 0.5 { 0.02 } else { 0.0 });
        let b = fit_baseline(&pts).unwrap();
        assert_eq!(b.slope, 0.0, "sub-second run must not fit a slope");
        let min_corrected = pts
            .iter()
            .map(|&(t, d)| b.correct(t, d))
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_corrected.abs() < 1e-12,
            "offset removal must touch zero"
        );
    }

    #[test]
    fn extreme_negative_skew_is_recovered() {
        // 1000 ppm of negative skew (a broken clock, not commodity
        // drift): raw delays fall by 0.6 s over a 10-minute run, dwarfing
        // the 60 ms congestion signal. The envelope fit must still track
        // the line instead of reporting phantom congestion at the start.
        let pts = synthetic(2000, 600.0, 4.0, -1e-3, |t| {
            if (200.0..205.0).contains(&t) {
                0.06
            } else {
                0.0002
            }
        });
        let b = fit_baseline(&pts).unwrap();
        assert!((b.slope + 1e-3).abs() < 1e-5, "slope {}", b.slope);
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            assert!(q >= -1e-9, "residual {q} below numerical error");
            if (200.0..205.0).contains(&t) {
                assert!((q - 0.06).abs() < 0.005, "congested sample read {q}");
            } else {
                assert!(q < 0.005, "idle sample read {q} at t={t}");
            }
        }
    }

    #[test]
    fn seven_points_pin_slope_even_over_a_long_span() {
        // The span is long enough to resolve a slope, but 7 points are
        // below the 8-point floor: the fit must still fall back to
        // offset-only rather than draw a line through noise.
        let pts = synthetic(7, 30.0, 2.0, 50e-6, |_| 0.001);
        assert_eq!(pts.len(), 7);
        let b = fit_baseline(&pts).unwrap();
        assert_eq!(b.slope, 0.0, "7-point run must not fit a slope");
        let min_corrected = pts
            .iter()
            .map(|&(t, d)| b.correct(t, d))
            .fold(f64::INFINITY, f64::min);
        assert!(min_corrected.abs() < 1e-12);
        assert!(pts.iter().all(|&(t, d)| b.correct(t, d) >= -1e-12));
    }

    #[test]
    fn window_minima_in_the_same_second_pin_slope() {
        // A 2.4 s run whose only idle dips sit at t≈0.75 and t≈1.65:
        // both land inside their thirds ([0, 0.8] and [1.6, 2.4]), but
        // the lever arm between them is 0.9 s < 1 s, far too short for a
        // ppm-scale slope. The fit must detect the degenerate anchors
        // and pin the slope to zero instead of fitting the dip noise.
        let pts: Vec<(f64, f64)> = (0..240)
            .map(|i| {
                let t = i as f64 * 0.01;
                let congestion = if (0.74..0.76).contains(&t) || (1.64..1.66).contains(&t) {
                    0.0
                } else {
                    0.05
                };
                (t, congestion + 3.0 + 20e-6 * t)
            })
            .collect();
        let b = fit_baseline(&pts).unwrap();
        assert_eq!(b.slope, 0.0, "same-second minima must not fit a slope");
        // Offset-only fallback still touches the envelope: the global
        // minimum corrects to ~0 and nothing goes negative.
        let min_corrected = pts
            .iter()
            .map(|&(t, d)| b.correct(t, d))
            .fold(f64::INFINITY, f64::min);
        assert!(min_corrected.abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(fit_baseline(&[]), None);
    }

    /// A delay series mixing kernel-stamped and userspace-stamped
    /// arrivals, mirroring the offload tier: kernel stamps sit on the
    /// clock line exactly; userspace stamps carry one-sided positive
    /// staleness (batch-granular stamping can only *delay* the observed
    /// arrival, never advance it).
    fn mixed_source(
        n: usize,
        span_secs: f64,
        offset: f64,
        skew: f64,
        user_every: usize,
        user_noise: impl Fn(u64) -> f64,
    ) -> Vec<(f64, f64)> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        (0..n)
            .map(|i| {
                let t = i as f64 * span_secs / n as f64;
                let clean = offset + skew * t;
                if user_every > 0 && i % user_every == 0 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (t, clean + user_noise(state >> 33))
                } else {
                    (t, clean)
                }
            })
            .collect()
    }

    #[test]
    fn user_stamp_noise_does_not_pull_the_baseline_off_the_kernel_floor() {
        // Every 5th point is userspace-stamped with up to 400 µs of
        // positive staleness; the rest are kernel-stamped and sit on the
        // clock line. The window minima — and therefore the fit — must
        // come from the kernel-stamped floor, so the recovered slope and
        // offset match the clock parameters, not the noise.
        let offset = 2.0;
        let skew = 30e-6;
        let pts = mixed_source(600, 300.0, offset, skew, 5, |r| (r % 400) as f64 * 1e-6);
        let b = fit_baseline(&pts).unwrap();
        assert!((b.slope - skew).abs() < 1e-6, "slope {}", b.slope);
        assert!((b.offset - offset).abs() < 1e-4, "offset {}", b.offset);
        for &(t, raw) in &pts {
            let q = b.correct(t, raw);
            assert!(q >= -1e-9, "residual {q} went negative");
            assert!(q < 0.5e-3, "residual {q} exceeds the staleness bound");
        }
    }

    #[test]
    fn mixed_fit_matches_the_pure_kernel_fit() {
        // The same clock line fitted from a pure kernel-stamped series
        // and from a mixed series must agree: user-stamped points only
        // ever sit *above* the envelope, so they are invisible to the
        // lower-envelope construction.
        let kernel = mixed_source(400, 200.0, 1.25, -15e-6, 0, |_| 0.0);
        let mixed = mixed_source(400, 200.0, 1.25, -15e-6, 3, |r| {
            50e-6 + (r % 300) as f64 * 1e-6
        });
        let bk = fit_baseline(&kernel).unwrap();
        let bm = fit_baseline(&mixed).unwrap();
        assert!(
            (bk.slope - bm.slope).abs() < 1e-6,
            "slopes diverged: kernel {} vs mixed {}",
            bk.slope,
            bm.slope
        );
        assert!(
            (bk.offset - bm.offset).abs() < 1e-4,
            "offsets diverged: kernel {} vs mixed {}",
            bk.offset,
            bm.offset
        );
    }

    #[test]
    fn all_user_stamped_series_still_yields_nonnegative_residuals() {
        // Degraded run (offload unavailable): every point carries batch
        // staleness. Accuracy necessarily suffers, but the fit's own
        // invariant — no residual below numerical error — must hold.
        let pts = mixed_source(300, 150.0, 0.8, 40e-6, 1, |r| (r % 1000) as f64 * 1e-6);
        let b = fit_baseline(&pts).unwrap();
        for &(t, raw) in &pts {
            assert!(b.correct(t, raw) >= -1e-9);
        }
    }
}
