//! The live probe receiver.
//!
//! Collects probe packets on a plain `std::net::UdpSocket` (one thread,
//! no async runtime), computes per-packet delay against its own
//! monotonic clock, and removes the unknown clock offset and skew by
//! fitting the lower envelope of the raw delay series (§7; see
//! [`crate::skew`]). What remains is queueing delay above the path
//! minimum — exactly the quantity the §6.1 `(1-α)·OWDmax` threshold
//! discriminates on.
//!
//! Sample-record integrity: real networks duplicate and reorder
//! datagrams, and a duplicated arrival must not make a lost probe look
//! complete (the estimator's input is the per-probe loss record, so
//! inflation there corrupts everything downstream). Arrivals are
//! deduplicated by `(seq, idx)`; duplicates are counted separately and
//! never touch the loss accounting. Reordering is harmless by
//! construction — records are keyed by `(experiment, slot)`, not arrival
//! order.
//!
//! The receiver also serves the control plane on the same socket
//! (handshake, heartbeats, FIN + chunked report retrieval — see
//! `badabing_wire::control`), and an idle-timeout watchdog reclaims the
//! session if the sender vanishes mid-run.

use badabing_metrics::Registry;
use badabing_wire::control::{
    chunk_records, ControlMessage, ReportRecord, ReportSummary, SessionParams,
};
use badabing_wire::ProbeHeader;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Address to listen on.
    pub bind: SocketAddr,
    /// Only accept packets stamped with this session id.
    pub session: u32,
    /// Watchdog: exit after this long without any datagram, once a
    /// session has started. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Answer control-plane messages (handshake, heartbeat, report
    /// retrieval). Disable for raw packet-capture use.
    pub serve_control: bool,
    /// Run counters and delay histograms, if observability is wanted.
    pub metrics: Option<Arc<Registry>>,
}

impl ReceiverConfig {
    /// A receiver on `bind` for `session`: control plane on, no
    /// watchdog, no metrics.
    pub fn new(bind: SocketAddr, session: u32) -> Self {
        Self {
            bind,
            session,
            idle_timeout: None,
            serve_control: true,
            metrics: None,
        }
    }
}

/// Per-probe arrival record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalRecord {
    /// Distinct packets of this probe that arrived.
    pub received: u8,
    /// Duplicated datagrams observed for this probe (saturating).
    pub duplicates: u8,
    /// Queueing delay (seconds above path minimum) of the most recent
    /// arrival.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay over the probe's arrivals.
    pub qdelay_max_secs: f64,
}

/// Everything the receiver collected.
#[derive(Debug, Clone, Default)]
pub struct ReceiverLog {
    /// Arrival records keyed by (experiment, slot).
    pub arrivals: HashMap<(u64, u64), ArrivalRecord>,
    /// Distinct probe packets accepted.
    pub packets: u64,
    /// Datagrams rejected (wrong session, undecodable).
    pub rejected: u64,
    /// Duplicated probe datagrams detected (not counted in `packets`
    /// or any arrival record's `received`).
    pub duplicates: u64,
    /// The minimum raw delay used as the clock-offset estimate, in
    /// nanoseconds (signed: clocks are unrelated across processes).
    pub min_raw_delay_ns: Option<i64>,
    /// Tool parameters announced by the sender's handshake, if any.
    pub handshake: Option<SessionParams>,
}

impl ReceiverLog {
    /// The control-plane summary of this log.
    pub fn summary(&self) -> ReportSummary {
        ReportSummary {
            packets: self.packets,
            rejected: self.rejected,
            duplicates: self.duplicates,
            min_raw_delay_ns: self.min_raw_delay_ns,
        }
    }

    /// Flatten the arrival map into control-plane report records,
    /// sorted by (experiment, slot) for deterministic chunking.
    pub fn to_records(&self) -> Vec<ReportRecord> {
        let mut records: Vec<ReportRecord> = self
            .arrivals
            .iter()
            .map(|(&(experiment, slot), r)| ReportRecord {
                experiment,
                slot,
                received: r.received,
                duplicates: r.duplicates,
                qdelay_last_secs: r.qdelay_last_secs,
                qdelay_max_secs: r.qdelay_max_secs,
            })
            .collect();
        records.sort_by_key(|r| (r.experiment, r.slot));
        records
    }

    /// Rebuild a log from a fetched report (the sender-side inverse of
    /// [`ReceiverLog::to_records`]).
    pub fn from_report(summary: ReportSummary, records: &[ReportRecord]) -> Self {
        let mut log = ReceiverLog {
            packets: summary.packets,
            rejected: summary.rejected,
            duplicates: summary.duplicates,
            min_raw_delay_ns: summary.min_raw_delay_ns,
            ..Default::default()
        };
        for r in records {
            log.arrivals.insert(
                (r.experiment, r.slot),
                ArrivalRecord {
                    received: r.received,
                    duplicates: r.duplicates,
                    qdelay_last_secs: r.qdelay_last_secs,
                    qdelay_max_secs: r.qdelay_max_secs,
                },
            );
        }
        log
    }
}

/// Handle to a running receiver thread.
pub struct ReceiverHandle {
    stop: Arc<AtomicBool>,
    joined: std::thread::JoinHandle<ReceiverLog>,
    local_addr: SocketAddr,
}

impl ReceiverHandle {
    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the receiver exited on its own (session complete or
    /// watchdog fired).
    pub fn is_finished(&self) -> bool {
        self.joined.is_finished()
    }

    /// Stop the receiver and collect its log.
    pub fn stop(self) -> ReceiverLog {
        self.stop.store(true, Ordering::Relaxed);
        self.joined.join().expect("receiver thread panicked")
    }

    /// Wait for the receiver to exit on its own (session completion or
    /// idle watchdog) and collect its log. Blocks indefinitely if the
    /// config has no watchdog and no sender ever completes a session.
    pub fn join(self) -> ReceiverLog {
        self.joined.join().expect("receiver thread panicked")
    }
}

/// How often the receive loop wakes to check the stop flag and watchdog.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-probe accumulation state.
#[derive(Default)]
struct ProbeArrivals {
    seen_idx: HashSet<u8>,
    probe_len: u8,
    duplicates: u8,
}

/// Start a receiver thread; it records until stopped, until its idle
/// watchdog fires, or until a sender completes the control-plane
/// session (FIN + full report retrieval).
pub fn start_receiver(cfg: ReceiverConfig) -> std::io::Result<ReceiverHandle> {
    let socket = UdpSocket::bind(cfg.bind)?;
    let local_addr = socket.local_addr()?;
    socket.set_read_timeout(Some(POLL_INTERVAL))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let anchor = Instant::now();

    let joined = std::thread::Builder::new()
        .name("badabing-recv".into())
        .spawn(move || receive_loop(&socket, &cfg, anchor, &stop_flag))
        .expect("spawn receiver thread");

    Ok(ReceiverHandle {
        stop,
        joined,
        local_addr,
    })
}

fn receive_loop(
    socket: &UdpSocket,
    cfg: &ReceiverConfig,
    anchor: Instant,
    stop: &AtomicBool,
) -> ReceiverLog {
    // (exp, slot, receive time secs, raw delay ns) — first copies only.
    let mut raw_delays: Vec<(u64, u64, f64, i64)> = Vec::new();
    let mut probes: HashMap<(u64, u64), ProbeArrivals> = HashMap::new();
    let mut seen: HashSet<(u64, u8)> = HashSet::new();
    let mut packets = 0u64;
    let mut rejected = 0u64;
    let mut duplicates = 0u64;
    let mut min_raw: Option<i64> = None;
    let mut handshake: Option<SessionParams> = None;

    // Control-plane session state.
    let mut session_active = false;
    let mut last_activity = Instant::now();
    let mut finalized: Option<(Vec<ControlMessage>, ReportSummary)> = None;
    let mut complete = false;

    let m_packets = cfg.metrics.as_ref().map(|m| m.counter("packets_accepted"));
    let m_rejected = cfg
        .metrics
        .as_ref()
        .map(|m| m.counter("datagrams_rejected"));
    let m_dup = cfg.metrics.as_ref().map(|m| m.counter("duplicates"));
    let m_ctrl = cfg.metrics.as_ref().map(|m| m.counter("control_messages"));

    let mut buf = vec![0u8; 65_536];
    while !stop.load(Ordering::Relaxed) && !complete {
        if let (Some(timeout), true) = (cfg.idle_timeout, session_active) {
            if last_activity.elapsed() >= timeout {
                break; // watchdog: sender went silent
            }
        }
        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let now = anchor.elapsed();
        let data = &buf[..len];

        if let Ok(h) = ProbeHeader::decode(data) {
            if h.session != cfg.session {
                rejected += 1;
                if let Some(c) = &m_rejected {
                    c.inc();
                }
                continue;
            }
            session_active = true;
            last_activity = Instant::now();
            if !seen.insert((h.seq, h.idx)) {
                // Duplicated datagram: a copy of (seq, idx) was already
                // counted. Track it, but never let it inflate arrival
                // counts — a lost probe must not look complete.
                duplicates += 1;
                let entry = probes.entry((h.experiment, h.slot)).or_default();
                entry.duplicates = entry.duplicates.saturating_add(1);
                if let Some(c) = &m_dup {
                    c.inc();
                }
                continue;
            }
            packets += 1;
            if let Some(c) = &m_packets {
                c.inc();
            }
            let raw = now.as_nanos() as i64 - h.send_ns as i64;
            min_raw = Some(min_raw.map_or(raw, |m| m.min(raw)));
            raw_delays.push((h.experiment, h.slot, now.as_secs_f64(), raw));
            let entry = probes.entry((h.experiment, h.slot)).or_default();
            entry.seen_idx.insert(h.idx);
            entry.probe_len = entry.probe_len.max(h.probe_len);
            continue;
        }

        let Ok(msg) = ControlMessage::decode(data) else {
            rejected += 1;
            if let Some(c) = &m_rejected {
                c.inc();
            }
            continue;
        };
        if !cfg.serve_control || msg.session() != cfg.session {
            rejected += 1;
            if let Some(c) = &m_rejected {
                c.inc();
            }
            continue;
        }
        session_active = true;
        last_activity = Instant::now();
        if let Some(c) = &m_ctrl {
            c.inc();
        }
        match msg {
            ControlMessage::Syn { session, params } => {
                handshake = Some(params);
                let _ = socket.send_to(&ControlMessage::SynAck { session }.encode(), src);
            }
            ControlMessage::Heartbeat { session, seq } => {
                let _ =
                    socket.send_to(&ControlMessage::HeartbeatAck { session, seq }.encode(), src);
            }
            ControlMessage::Fin { session, .. } => {
                // Finalize once; FIN retransmits re-serve the same
                // snapshot so retrieval is idempotent.
                if finalized.is_none() {
                    let log = build_log(
                        &raw_delays,
                        &probes,
                        packets,
                        rejected,
                        duplicates,
                        min_raw,
                        handshake,
                        None,
                    );
                    let summary = log.summary();
                    finalized = Some((chunk_records(session, &log.to_records()), summary));
                }
                let (chunks, summary) = finalized.as_ref().expect("just finalized");
                let ack = ControlMessage::FinAck {
                    session,
                    total_chunks: chunks.len() as u32,
                    summary: *summary,
                };
                let _ = socket.send_to(&ack.encode(), src);
            }
            ControlMessage::ReportRequest { chunk, .. } => {
                if let Some((chunks, _)) = &finalized {
                    if let Some(msg) = chunks.get(chunk as usize) {
                        let _ = socket.send_to(&msg.encode(), src);
                    }
                }
            }
            ControlMessage::ReportAck { chunk, .. } => {
                if let Some((chunks, _)) = &finalized {
                    if chunk as usize >= chunks.len() {
                        complete = true; // sender has everything
                    }
                }
            }
            // Receiver-emitted messages arriving here are stray
            // reflections; ignore them.
            ControlMessage::SynAck { .. }
            | ControlMessage::HeartbeatAck { .. }
            | ControlMessage::FinAck { .. }
            | ControlMessage::ReportChunk { .. } => {}
        }
    }

    build_log(
        &raw_delays,
        &probes,
        packets,
        rejected,
        duplicates,
        min_raw,
        handshake,
        cfg.metrics.as_deref(),
    )
}

/// Assemble the final log: fit the clock baseline over the whole run and
/// convert raw delays into queueing delays (§7). A running minimum would
/// bias early records upward; min-subtraction alone would let clock skew
/// masquerade as queueing delay on long runs.
#[allow(clippy::too_many_arguments)]
fn build_log(
    raw_delays: &[(u64, u64, f64, i64)],
    probes: &HashMap<(u64, u64), ProbeArrivals>,
    packets: u64,
    rejected: u64,
    duplicates: u64,
    min_raw_delay_ns: Option<i64>,
    handshake: Option<SessionParams>,
    metrics: Option<&Registry>,
) -> ReceiverLog {
    let points: Vec<(f64, f64)> = raw_delays
        .iter()
        .map(|&(_, _, t, raw)| (t, raw as f64 / 1e9))
        .collect();
    let baseline = crate::skew::fit_baseline(&points).unwrap_or(crate::skew::Baseline {
        offset: 0.0,
        slope: 0.0,
    });

    let mut log = ReceiverLog {
        packets,
        rejected,
        duplicates,
        min_raw_delay_ns,
        handshake,
        ..Default::default()
    };
    let qdelay_hist = metrics.map(|m| m.histogram("qdelay_secs"));
    for &(exp, slot, t, raw) in raw_delays {
        let q = baseline.correct(t, raw as f64 / 1e9);
        if let Some(h) = &qdelay_hist {
            h.record_secs(q);
        }
        let state = &probes[&(exp, slot)];
        let rec = log.arrivals.entry((exp, slot)).or_default();
        // Clamp: even a malformed sender reusing (seq, idx) pairs across
        // more datagrams than the probe announces cannot push `received`
        // past the probe length.
        rec.received = (state.seen_idx.len() as u8).min(state.probe_len);
        rec.duplicates = state.duplicates;
        rec.qdelay_last_secs = q;
        rec.qdelay_max_secs = rec.qdelay_max_secs.max(q);
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local0() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn send_header(sock: &UdpSocket, target: SocketAddr, h: &ProbeHeader, bytes: usize) {
        sock.send_to(&h.encode(bytes), target).unwrap();
    }

    fn settle() {
        std::thread::sleep(Duration::from_millis(120));
    }

    #[test]
    fn accepts_session_packets_and_rejects_others() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 42)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        let good = ProbeHeader {
            session: 42,
            experiment: 1,
            slot: 10,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 2,
        };
        let bad_session = ProbeHeader { session: 9, ..good };
        send_header(&sock, target, &good, 100);
        send_header(&sock, target, &bad_session, 100);
        sock.send_to(b"garbage", target).unwrap();
        settle();
        let log = handle.stop();
        assert_eq!(log.packets, 1);
        assert_eq!(log.rejected, 2);
        assert_eq!(log.duplicates, 0);
        assert_eq!(log.arrivals.len(), 1);
        assert_eq!(log.arrivals[&(1, 10)].received, 1);
    }

    #[test]
    fn offset_removal_yields_relative_queueing_delay() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 1)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Two packets with send timestamps from an unrelated clock: the
        // second "left" 50 ms earlier than its arrival spacing implies,
        // i.e. it queued ~50 ms longer.
        let base = 1_000_000_000_000u64; // arbitrary foreign clock
        let h1 = ProbeHeader {
            session: 1,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: base,
            idx: 0,
            probe_len: 1,
        };
        let h2 = ProbeHeader {
            experiment: 1,
            slot: 5,
            seq: 1,
            send_ns: base,
            ..h1
        };
        send_header(&sock, target, &h1, 100);
        std::thread::sleep(Duration::from_millis(50));
        send_header(&sock, target, &h2, 100);
        settle();
        let log = handle.stop();
        let q1 = log.arrivals[&(0, 0)].qdelay_max_secs;
        let q2 = log.arrivals[&(1, 5)].qdelay_max_secs;
        assert!(q1 < 0.01, "first packet defines the baseline, got {q1}");
        assert!(
            (q2 - 0.05).abs() < 0.03,
            "second packet ~50 ms of queueing, got {q2}"
        );
    }

    #[test]
    fn skewed_sender_clock_is_corrected() {
        // A sender whose clock runs fast by 1% (exaggerated for a 2 s
        // test; real skews are ppm over hours): send_ns grows 1.01× real
        // time. Without skew removal the early packets would read tens
        // of ms of phantom queueing.
        let handle = start_receiver(ReceiverConfig::new(local0(), 5)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        let start = Instant::now();
        for i in 0..40u64 {
            let real_ns = start.elapsed().as_nanos() as u64;
            let skewed_ns = (real_ns as f64 * 1.01) as u64;
            let h = ProbeHeader {
                session: 5,
                experiment: i,
                slot: i,
                seq: i,
                send_ns: skewed_ns,
                idx: 0,
                probe_len: 1,
            };
            send_header(&sock, target, &h, 64);
            std::thread::sleep(Duration::from_millis(50));
        }
        settle();
        let log = handle.stop();
        assert_eq!(log.packets, 40);
        // Every packet is idle; after baseline removal all queueing
        // delays must be small. (1% over 2 s = 20 ms of drift, so the
        // naive min-subtraction would report up to ~20 ms on one end.)
        let max_q = log
            .arrivals
            .values()
            .map(|r| r.qdelay_max_secs)
            .fold(0.0f64, f64::max);
        assert!(
            max_q < 0.008,
            "residual queueing delay {max_q} after skew removal"
        );
    }

    #[test]
    fn multi_packet_probe_aggregates() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 3)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        for idx in 0..3u8 {
            let h = ProbeHeader {
                session: 3,
                experiment: 8,
                slot: 2,
                seq: idx as u64,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            send_header(&sock, target, &h, 64);
        }
        settle();
        let log = handle.stop();
        assert_eq!(log.arrivals[&(8, 2)].received, 3);
    }

    #[test]
    fn duplicates_are_counted_but_never_inflate_arrivals() {
        let metrics = Arc::new(Registry::new("recv-dup-test"));
        let handle = start_receiver(ReceiverConfig {
            metrics: Some(metrics.clone()),
            ..ReceiverConfig::new(local0(), 6)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // A 3-packet probe that loses packet idx 2 but has idx 0
        // duplicated three times: without dedup the count would read 4
        // (debug-overflow territory on a u8 under longer floods) and the
        // lost packet would be masked.
        for (seq, idx) in [(0u64, 0u8), (0, 0), (0, 0), (0, 0), (1, 1)] {
            let h = ProbeHeader {
                session: 6,
                experiment: 4,
                slot: 9,
                seq,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            send_header(&sock, target, &h, 64);
        }
        settle();
        let log = handle.stop();
        let rec = log.arrivals[&(4, 9)];
        assert_eq!(rec.received, 2, "one packet genuinely lost");
        assert_eq!(rec.duplicates, 3);
        assert_eq!(log.packets, 2);
        assert_eq!(log.duplicates, 3);
        assert_eq!(metrics.counter("duplicates").get(), 3);
    }

    #[test]
    fn watchdog_exits_after_idle_timeout() {
        let handle = start_receiver(ReceiverConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ReceiverConfig::new(local0(), 2)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Watchdog arms only once a session starts.
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            !handle.is_finished(),
            "watchdog must not fire before any activity"
        );
        let h = ProbeHeader {
            session: 2,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 1,
        };
        send_header(&sock, target, &h, 64);
        let started = Instant::now();
        let log = handle.join();
        assert!(
            started.elapsed() >= Duration::from_millis(140),
            "exited before the idle timeout"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "watchdog too slow"
        );
        assert_eq!(log.packets, 1);
    }

    #[test]
    fn report_roundtrips_through_records() {
        let mut log = ReceiverLog {
            packets: 5,
            duplicates: 1,
            ..Default::default()
        };
        log.arrivals.insert(
            (3, 7),
            ArrivalRecord {
                received: 2,
                duplicates: 1,
                qdelay_last_secs: 0.01,
                qdelay_max_secs: 0.02,
            },
        );
        log.arrivals.insert(
            (4, 1),
            ArrivalRecord {
                received: 3,
                duplicates: 0,
                qdelay_last_secs: 0.0,
                qdelay_max_secs: 0.0,
            },
        );
        let records = log.to_records();
        assert_eq!(records.len(), 2);
        assert!(records[0].experiment < records[1].experiment);
        let back = ReceiverLog::from_report(log.summary(), &records);
        assert_eq!(back.packets, 5);
        assert_eq!(back.duplicates, 1);
        assert_eq!(back.arrivals[&(3, 7)].received, 2);
        assert_eq!(back.arrivals[&(3, 7)].duplicates, 1);
    }
}
