//! The live probe receiver: a multi-session server.
//!
//! Collects probe packets on a plain `std::net::UdpSocket` (one thread,
//! no async runtime), computes per-packet delay against its own
//! monotonic clock, and removes the unknown clock offset and skew by
//! fitting the lower envelope of the raw delay series (§7; see
//! [`crate::skew`]). What remains is queueing delay above the path
//! minimum — exactly the quantity the §6.1 `(1-α)·OWDmax` threshold
//! discriminates on.
//!
//! One process serves **many concurrent sender sessions**: a session
//! registry keyed by session id holds per-session accumulation state
//! (arrival map, raw-delay series for the skew fit, control-plane
//! finalization snapshot, idle deadline, metrics). Under
//! [`SessionPolicy::Any`] sessions are opened dynamically by the
//! control-plane SYN handshake, bounded by `max_sessions` — a SYN past
//! the cap is refused with an explicit NACK, and sessions are reaped on
//! completion or per-session idle timeout *without* terminating the
//! serve loop. [`SessionPolicy::Single`] preserves the original
//! one-sender tool shape (probes may open the session without a
//! handshake, and the loop exits when that session ends);
//! [`start_receiver`] is a thin wrapper over it.
//!
//! Sample-record integrity: real networks duplicate and reorder
//! datagrams, and a duplicated arrival must not make a lost probe look
//! complete (the estimator's input is the per-probe loss record, so
//! inflation there corrupts everything downstream). Arrivals are
//! deduplicated per session by `(seq, idx)`; duplicates are counted
//! separately and never touch the loss accounting. Reordering is
//! harmless by construction — records are keyed by `(experiment, slot)`,
//! not arrival order.
//!
//! The receiver also serves the control plane on the same socket
//! (handshake, heartbeats, FIN + chunked report retrieval — see
//! `badabing_wire::control`). The skew-baseline fit and record assembly
//! run per session at that session's finalization, so concurrent
//! sessions never contaminate each other's clock model or records.

use badabing_metrics::{Counter, Registry};
use badabing_wire::control::{
    chunk_records, ControlMessage, RejectReason, ReportRecord, ReportSummary, SessionParams,
};
use badabing_wire::ProbeHeader;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Single-session receiver configuration (the original tool shape).
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Address to listen on.
    pub bind: SocketAddr,
    /// Only accept packets stamped with this session id.
    pub session: u32,
    /// Watchdog: exit after this long without any datagram, once a
    /// session has started. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Answer control-plane messages (handshake, heartbeat, report
    /// retrieval). Disable for raw packet-capture use.
    pub serve_control: bool,
    /// Run counters and delay histograms, if observability is wanted.
    pub metrics: Option<Arc<Registry>>,
}

impl ReceiverConfig {
    /// A receiver on `bind` for `session`: control plane on, no
    /// watchdog, no metrics.
    pub fn new(bind: SocketAddr, session: u32) -> Self {
        Self {
            bind,
            session,
            idle_timeout: None,
            serve_control: true,
            metrics: None,
        }
    }
}

/// Which sessions the server admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPolicy {
    /// Accept exactly this pre-configured session id. Probes may open
    /// the session without a handshake, and the serve loop exits when
    /// the session completes or its idle watchdog fires — the original
    /// one-sender/one-receiver tool shape.
    Single(u32),
    /// Accept any session that opens with a SYN handshake, up to
    /// `max_sessions` concurrently. Completion or idle timeout reaps
    /// the individual session; the serve loop keeps running until
    /// stopped. Probe or control datagrams for unregistered sessions
    /// are not accepted (probes count as rejected; stale control
    /// retransmits are ignored).
    Any,
}

/// Multi-session server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on.
    pub bind: SocketAddr,
    /// Session admission policy.
    pub policy: SessionPolicy,
    /// Registry capacity: SYNs arriving while this many sessions are
    /// active are refused with [`RejectReason::Capacity`]. Completion
    /// and idle reaping free capacity.
    pub max_sessions: usize,
    /// Per-session idle watchdog: a session without any datagram for
    /// this long is finalized and reaped. `None` keeps idle sessions
    /// forever.
    pub idle_timeout: Option<Duration>,
    /// Answer control-plane messages (handshake, heartbeat, report
    /// retrieval). Disable for raw packet-capture use.
    pub serve_control: bool,
    /// Run counters and delay histograms, if observability is wanted.
    /// Per-session instruments are published under a `session_<id>_`
    /// prefix alongside the server-wide ones.
    pub metrics: Option<Arc<Registry>>,
}

impl ServerConfig {
    /// A server on `bind` admitting any session up to `max_sessions`:
    /// control plane on, no idle watchdog, no metrics.
    pub fn any(bind: SocketAddr, max_sessions: usize) -> Self {
        Self {
            bind,
            policy: SessionPolicy::Any,
            max_sessions,
            idle_timeout: None,
            serve_control: true,
            metrics: None,
        }
    }
}

/// Per-probe arrival record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalRecord {
    /// Distinct packets of this probe that arrived.
    pub received: u8,
    /// Duplicated datagrams observed for this probe (saturating).
    pub duplicates: u8,
    /// Queueing delay (seconds above path minimum) of the most recent
    /// arrival. May be marginally negative: the lower-envelope clock
    /// fit touches the samples only to within numerical error.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay over the probe's arrivals.
    pub qdelay_max_secs: f64,
}

/// Everything the receiver collected for one session.
#[derive(Debug, Clone, Default)]
pub struct ReceiverLog {
    /// Arrival records keyed by (experiment, slot).
    pub arrivals: HashMap<(u64, u64), ArrivalRecord>,
    /// Distinct probe packets accepted.
    pub packets: u64,
    /// Datagrams rejected (unknown session, undecodable). This is a
    /// server-wide count, not a per-session one: rejected datagrams by
    /// definition could not be attributed to a session.
    pub rejected: u64,
    /// Duplicated probe datagrams detected (not counted in `packets`
    /// or any arrival record's `received`).
    pub duplicates: u64,
    /// The minimum raw delay used as the clock-offset estimate, in
    /// nanoseconds (signed: clocks are unrelated across processes).
    pub min_raw_delay_ns: Option<i64>,
    /// Tool parameters announced by the sender's handshake, if any.
    pub handshake: Option<SessionParams>,
}

impl ReceiverLog {
    /// The control-plane summary of this log.
    pub fn summary(&self) -> ReportSummary {
        ReportSummary {
            packets: self.packets,
            rejected: self.rejected,
            duplicates: self.duplicates,
            min_raw_delay_ns: self.min_raw_delay_ns,
        }
    }

    /// Flatten the arrival map into control-plane report records,
    /// sorted by (experiment, slot) for deterministic chunking.
    pub fn to_records(&self) -> Vec<ReportRecord> {
        let mut records: Vec<ReportRecord> = self
            .arrivals
            .iter()
            .map(|(&(experiment, slot), r)| ReportRecord {
                experiment,
                slot,
                received: r.received,
                duplicates: r.duplicates,
                qdelay_last_secs: r.qdelay_last_secs,
                qdelay_max_secs: r.qdelay_max_secs,
            })
            .collect();
        records.sort_by_key(|r| (r.experiment, r.slot));
        records
    }

    /// Rebuild a log from a fetched report (the sender-side inverse of
    /// [`ReceiverLog::to_records`]).
    pub fn from_report(summary: ReportSummary, records: &[ReportRecord]) -> Self {
        let mut log = ReceiverLog {
            packets: summary.packets,
            rejected: summary.rejected,
            duplicates: summary.duplicates,
            min_raw_delay_ns: summary.min_raw_delay_ns,
            ..Default::default()
        };
        for r in records {
            log.arrivals.insert(
                (r.experiment, r.slot),
                ArrivalRecord {
                    received: r.received,
                    duplicates: r.duplicates,
                    qdelay_last_secs: r.qdelay_last_secs,
                    qdelay_max_secs: r.qdelay_max_secs,
                },
            );
        }
        log
    }
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The sender acknowledged the full report (clean completion).
    Completed,
    /// The per-session idle watchdog reclaimed it.
    IdleTimeout,
    /// The server was stopped while the session was still open.
    Stopped,
}

/// One finished session: its id, how it ended, and its finalized log.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Session id.
    pub session: u32,
    /// How the session ended.
    pub end: SessionEnd,
    /// The session's finalized log. For a completed session this is the
    /// FIN snapshot — exactly what the sender fetched.
    pub log: ReceiverLog,
}

/// Everything a server run produced.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Finished sessions in the order they ended (sessions still open
    /// at stop are appended last, sorted by id, as
    /// [`SessionEnd::Stopped`]).
    pub sessions: Vec<SessionOutcome>,
    /// Datagrams rejected across the whole run (unknown-session probes,
    /// undecodable noise, wrong-session traffic in single mode).
    pub rejected: u64,
    /// SYNs refused because the registry was at `max_sessions`.
    pub syns_rejected: u64,
}

impl ServerReport {
    /// The finalized log of `session`, if it finished during this run.
    pub fn log_for(&self, session: u32) -> Option<&ReceiverLog> {
        self.sessions
            .iter()
            .find(|o| o.session == session)
            .map(|o| &o.log)
    }
}

/// Handle to a running multi-session server thread.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    joined: std::thread::JoinHandle<ServerReport>,
    local_addr: SocketAddr,
}

impl ServerHandle {
    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the serve loop exited on its own (single-session
    /// completion or watchdog; an any-policy server only exits when
    /// stopped).
    pub fn is_finished(&self) -> bool {
        self.joined.is_finished()
    }

    /// Stop the server and collect its report.
    pub fn stop(self) -> ServerReport {
        self.stop.store(true, Ordering::Relaxed);
        self.joined.join().expect("receiver thread panicked")
    }

    /// Wait for the serve loop to exit on its own and collect the
    /// report. Blocks indefinitely for an any-policy server that is
    /// never stopped.
    pub fn join(self) -> ServerReport {
        self.joined.join().expect("receiver thread panicked")
    }
}

/// Handle to a running single-session receiver (thin wrapper over the
/// session server).
pub struct ReceiverHandle {
    session: u32,
    inner: ServerHandle,
}

impl ReceiverHandle {
    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Whether the receiver exited on its own (session complete or
    /// watchdog fired).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// Stop the receiver and collect its log.
    pub fn stop(self) -> ReceiverLog {
        let session = self.session;
        Self::extract(session, self.inner.stop())
    }

    /// Wait for the receiver to exit on its own (session completion or
    /// idle watchdog) and collect its log. Blocks indefinitely if the
    /// config has no watchdog and no sender ever completes a session.
    pub fn join(self) -> ReceiverLog {
        let session = self.session;
        Self::extract(session, self.inner.join())
    }

    fn extract(session: u32, report: ServerReport) -> ReceiverLog {
        let mut log = report
            .sessions
            .into_iter()
            .find(|o| o.session == session)
            .map(|o| o.log)
            .unwrap_or_default();
        // Single-session semantics: the one log owns the global reject
        // count (it predates the multi-session registry).
        log.rejected = report.rejected;
        log
    }
}

/// How often the receive loop wakes to check the stop flag and watchdog.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-probe accumulation state.
#[derive(Default)]
struct ProbeArrivals {
    seen_idx: HashSet<u8>,
    probe_len: u8,
    duplicates: u8,
}

/// A finalized session snapshot: frozen at the first FIN (or at reap
/// time) and re-served verbatim on every retransmit.
struct Finalized {
    chunks: Vec<ControlMessage>,
    summary: ReportSummary,
    log: ReceiverLog,
}

/// Per-session accumulation state in the registry.
struct SessionState {
    /// (exp, slot, receive time secs, raw delay ns) — first copies only.
    raw_delays: Vec<(u64, u64, f64, i64)>,
    probes: HashMap<(u64, u64), ProbeArrivals>,
    seen: HashSet<(u64, u8)>,
    packets: u64,
    duplicates: u64,
    min_raw: Option<i64>,
    handshake: Option<SessionParams>,
    last_activity: Instant,
    finalized: Option<Finalized>,
    m_packets: Option<Arc<Counter>>,
    m_duplicates: Option<Arc<Counter>>,
}

impl SessionState {
    fn new(session: u32, metrics: Option<&Registry>) -> Self {
        let scope = metrics.map(|m| m.scope(format!("session_{session}")));
        Self {
            raw_delays: Vec::new(),
            probes: HashMap::new(),
            seen: HashSet::new(),
            packets: 0,
            duplicates: 0,
            min_raw: None,
            handshake: None,
            last_activity: Instant::now(),
            finalized: None,
            m_packets: scope.as_ref().map(|s| s.counter("packets_accepted")),
            m_duplicates: scope.as_ref().map(|s| s.counter("duplicates")),
        }
    }

    fn touch(&mut self) {
        self.last_activity = Instant::now();
    }

    /// Freeze the session log on first call; later calls re-serve the
    /// same snapshot (FIN idempotency).
    fn finalize(&mut self, session: u32, rejected: u64, metrics: Option<&Registry>) -> &Finalized {
        if self.finalized.is_none() {
            let log = build_log(
                &self.raw_delays,
                &self.probes,
                self.packets,
                rejected,
                self.duplicates,
                self.min_raw,
                self.handshake,
                metrics,
            );
            let summary = log.summary();
            let chunks = chunk_records(session, &log.to_records());
            self.finalized = Some(Finalized {
                chunks,
                summary,
                log,
            });
        }
        self.finalized.as_ref().expect("just finalized")
    }

    fn into_outcome(
        mut self,
        session: u32,
        end: SessionEnd,
        rejected: u64,
        metrics: Option<&Registry>,
    ) -> SessionOutcome {
        self.finalize(session, rejected, metrics);
        let log = self.finalized.expect("just finalized").log;
        SessionOutcome { session, end, log }
    }
}

/// Start a single-session receiver; it records until stopped, until its
/// idle watchdog fires, or until the sender completes the control-plane
/// session (FIN + full report retrieval).
pub fn start_receiver(cfg: ReceiverConfig) -> std::io::Result<ReceiverHandle> {
    let session = cfg.session;
    let inner = start_server(ServerConfig {
        bind: cfg.bind,
        policy: SessionPolicy::Single(session),
        max_sessions: 1,
        idle_timeout: cfg.idle_timeout,
        serve_control: cfg.serve_control,
        metrics: cfg.metrics,
    })?;
    Ok(ReceiverHandle { session, inner })
}

/// Start a multi-session server thread; it serves sessions under the
/// configured policy until stopped (or, under
/// [`SessionPolicy::Single`], until that session ends).
pub fn start_server(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let socket = UdpSocket::bind(cfg.bind)?;
    let local_addr = socket.local_addr()?;
    socket.set_read_timeout(Some(POLL_INTERVAL))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let anchor = Instant::now();

    let joined = std::thread::Builder::new()
        .name("badabing-recv".into())
        .spawn(move || serve_loop(&socket, &cfg, anchor, &stop_flag))
        .expect("spawn receiver thread");

    Ok(ServerHandle {
        stop,
        joined,
        local_addr,
    })
}

fn serve_loop(
    socket: &UdpSocket,
    cfg: &ServerConfig,
    anchor: Instant,
    stop: &AtomicBool,
) -> ServerReport {
    let single_id = match cfg.policy {
        SessionPolicy::Single(id) => Some(id),
        SessionPolicy::Any => None,
    };
    let metrics = cfg.metrics.as_deref();

    let mut sessions: HashMap<u32, SessionState> = HashMap::new();
    let mut outcomes: Vec<SessionOutcome> = Vec::new();
    let mut rejected = 0u64;
    let mut syns_rejected = 0u64;

    let m_packets = metrics.map(|m| m.counter("packets_accepted"));
    let m_rejected = metrics.map(|m| m.counter("datagrams_rejected"));
    let m_dup = metrics.map(|m| m.counter("duplicates"));
    let m_ctrl = metrics.map(|m| m.counter("control_messages"));
    let m_opened = metrics.map(|m| m.counter("sessions_opened"));
    let m_completed = metrics.map(|m| m.counter("sessions_completed"));
    let m_idle_reaped = metrics.map(|m| m.counter("sessions_idle_reaped"));
    let m_syn_rejected = metrics.map(|m| m.counter("syns_rejected"));
    let m_stale = metrics.map(|m| m.counter("control_stale"));
    let inc = |c: &Option<Arc<Counter>>| {
        if let Some(c) = c {
            c.inc();
        }
    };

    let mut done = false;
    let mut buf = vec![0u8; 65_536];
    while !stop.load(Ordering::Relaxed) && !done {
        // Per-session idle watchdog: reap silent sessions without
        // killing the loop (single mode: the one session ending ends
        // the loop, preserving the original watchdog semantics).
        if let Some(timeout) = cfg.idle_timeout {
            let expired: Vec<u32> = sessions
                .iter()
                .filter(|(_, s)| s.last_activity.elapsed() >= timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let state = sessions.remove(&id).expect("expired session present");
                outcomes.push(state.into_outcome(id, SessionEnd::IdleTimeout, rejected, metrics));
                inc(&m_idle_reaped);
                if single_id == Some(id) {
                    done = true;
                }
            }
            if done {
                break;
            }
        }

        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let now = anchor.elapsed();
        let data = &buf[..len];

        if let Ok(h) = ProbeHeader::decode(data) {
            // Probes open the session only in single mode (the legacy
            // open-loop tool has no handshake); under `Any` the SYN is
            // the sole door in.
            let state = match single_id {
                Some(id) if h.session == id => Some(sessions.entry(id).or_insert_with(|| {
                    inc(&m_opened);
                    SessionState::new(id, metrics)
                })),
                Some(_) => None,
                None => sessions.get_mut(&h.session),
            };
            let Some(state) = state else {
                rejected += 1;
                inc(&m_rejected);
                continue;
            };
            state.touch();
            if !state.seen.insert((h.seq, h.idx)) {
                // Duplicated datagram: a copy of (seq, idx) was already
                // counted. Track it, but never let it inflate arrival
                // counts — a lost probe must not look complete.
                state.duplicates += 1;
                let entry = state.probes.entry((h.experiment, h.slot)).or_default();
                entry.duplicates = entry.duplicates.saturating_add(1);
                inc(&m_dup);
                inc(&state.m_duplicates);
                continue;
            }
            state.packets += 1;
            inc(&m_packets);
            inc(&state.m_packets);
            let raw = now.as_nanos() as i64 - h.send_ns as i64;
            state.min_raw = Some(state.min_raw.map_or(raw, |m| m.min(raw)));
            state
                .raw_delays
                .push((h.experiment, h.slot, now.as_secs_f64(), raw));
            let entry = state.probes.entry((h.experiment, h.slot)).or_default();
            entry.seen_idx.insert(h.idx);
            entry.probe_len = entry.probe_len.max(h.probe_len);
            continue;
        }

        let Ok(msg) = ControlMessage::decode(data) else {
            rejected += 1;
            inc(&m_rejected);
            continue;
        };
        if !cfg.serve_control || matches!((single_id, msg.session()), (Some(id), s) if s != id) {
            rejected += 1;
            inc(&m_rejected);
            continue;
        }
        inc(&m_ctrl);
        let id = msg.session();
        match msg {
            ControlMessage::Syn { session, params } => {
                // Admission: an existing session's SYN retransmit is
                // refreshed and re-acked (idempotent); a new session is
                // admitted only below the registry cap.
                if !sessions.contains_key(&session) {
                    if single_id.is_none() && sessions.len() >= cfg.max_sessions {
                        syns_rejected += 1;
                        inc(&m_syn_rejected);
                        let nack = ControlMessage::SynNack {
                            session,
                            reason: RejectReason::Capacity,
                        };
                        let _ = socket.send_to(&nack.encode(), src);
                        continue;
                    }
                    inc(&m_opened);
                }
                let state = sessions
                    .entry(session)
                    .or_insert_with(|| SessionState::new(session, metrics));
                state.touch();
                state.handshake = Some(params);
                let _ = socket.send_to(&ControlMessage::SynAck { session }.encode(), src);
            }
            ControlMessage::Heartbeat { session, seq } => {
                // In single mode a heartbeat may arrive before any probe
                // and still opens the session (arming the watchdog, as
                // the pre-registry receiver did). Under `Any` a
                // heartbeat for an unknown session is a stale
                // retransmit from a reaped session: ignoring it (no
                // ack) lets the sender's own watchdog conclude death.
                let state = match single_id {
                    Some(id) => Some(sessions.entry(id).or_insert_with(|| {
                        inc(&m_opened);
                        SessionState::new(id, metrics)
                    })),
                    None => sessions.get_mut(&session),
                };
                let Some(state) = state else {
                    inc(&m_stale);
                    continue;
                };
                state.touch();
                let _ =
                    socket.send_to(&ControlMessage::HeartbeatAck { session, seq }.encode(), src);
            }
            ControlMessage::Fin { session, .. } => {
                let state = match single_id {
                    Some(id) => Some(sessions.entry(id).or_insert_with(|| {
                        inc(&m_opened);
                        SessionState::new(id, metrics)
                    })),
                    None => sessions.get_mut(&session),
                };
                let Some(state) = state else {
                    inc(&m_stale);
                    continue;
                };
                state.touch();
                // Finalize once; FIN retransmits re-serve the same
                // snapshot so retrieval is idempotent.
                let finalized = state.finalize(session, rejected, metrics);
                let ack = ControlMessage::FinAck {
                    session,
                    total_chunks: finalized.chunks.len() as u32,
                    summary: finalized.summary,
                };
                let _ = socket.send_to(&ack.encode(), src);
            }
            ControlMessage::ReportRequest { chunk, .. } => {
                let Some(state) = sessions.get_mut(&id) else {
                    inc(&m_stale);
                    continue;
                };
                state.touch();
                if let Some(finalized) = &state.finalized {
                    if let Some(msg) = finalized.chunks.get(chunk as usize) {
                        let _ = socket.send_to(&msg.encode(), src);
                    }
                }
            }
            ControlMessage::ReportAck { chunk, .. } => {
                let complete = match sessions.get_mut(&id) {
                    Some(state) => {
                        state.touch();
                        state
                            .finalized
                            .as_ref()
                            .is_some_and(|f| chunk as usize >= f.chunks.len())
                    }
                    None => {
                        // Duplicate closing ack to an already-reaped
                        // session.
                        inc(&m_stale);
                        false
                    }
                };
                if complete {
                    // The sender holds the full report: reap the
                    // session. Other sessions keep flowing.
                    let state = sessions.remove(&id).expect("completed session present");
                    outcomes.push(state.into_outcome(id, SessionEnd::Completed, rejected, metrics));
                    inc(&m_completed);
                    if single_id == Some(id) {
                        done = true;
                    }
                }
            }
            // Receiver-emitted messages arriving here are stray
            // reflections; ignore them.
            ControlMessage::SynAck { .. }
            | ControlMessage::SynNack { .. }
            | ControlMessage::HeartbeatAck { .. }
            | ControlMessage::FinAck { .. }
            | ControlMessage::ReportChunk { .. } => {}
        }
    }

    // Anything still open when the loop ends is finalized as stopped,
    // in id order for determinism.
    let mut open: Vec<(u32, SessionState)> = sessions.drain().collect();
    open.sort_by_key(|&(id, _)| id);
    for (id, state) in open {
        outcomes.push(state.into_outcome(id, SessionEnd::Stopped, rejected, metrics));
    }

    ServerReport {
        sessions: outcomes,
        rejected,
        syns_rejected,
    }
}

/// Assemble a session's final log: fit the clock baseline over the whole
/// session and convert raw delays into queueing delays (§7). A running
/// minimum would bias early records upward; min-subtraction alone would
/// let clock skew masquerade as queueing delay on long runs.
#[allow(clippy::too_many_arguments)]
fn build_log(
    raw_delays: &[(u64, u64, f64, i64)],
    probes: &HashMap<(u64, u64), ProbeArrivals>,
    packets: u64,
    rejected: u64,
    duplicates: u64,
    min_raw_delay_ns: Option<i64>,
    handshake: Option<SessionParams>,
    metrics: Option<&Registry>,
) -> ReceiverLog {
    let points: Vec<(f64, f64)> = raw_delays
        .iter()
        .map(|&(_, _, t, raw)| (t, raw as f64 / 1e9))
        .collect();
    let baseline = crate::skew::fit_baseline(&points).unwrap_or(crate::skew::Baseline {
        offset: 0.0,
        slope: 0.0,
    });

    let mut log = ReceiverLog {
        packets,
        rejected,
        duplicates,
        min_raw_delay_ns,
        handshake,
        ..Default::default()
    };
    let qdelay_hist = metrics.map(|m| m.histogram("qdelay_secs"));
    apply_baseline(
        &baseline,
        raw_delays,
        probes,
        &mut log,
        qdelay_hist.as_deref(),
    );
    log
}

/// Convert raw delays into per-probe arrival records under `baseline`.
fn apply_baseline(
    baseline: &crate::skew::Baseline,
    raw_delays: &[(u64, u64, f64, i64)],
    probes: &HashMap<(u64, u64), ProbeArrivals>,
    log: &mut ReceiverLog,
    qdelay_hist: Option<&badabing_metrics::Histogram>,
) {
    for &(exp, slot, t, raw) in raw_delays {
        let q = baseline.correct(t, raw as f64 / 1e9);
        if let Some(h) = qdelay_hist {
            h.record_secs(q);
        }
        let state = &probes[&(exp, slot)];
        // Seed the max from the probe's first arrival: folding via
        // f64::max from a 0.0 default would report
        // `qdelay_max_secs = 0.0 > qdelay_last_secs` for a probe whose
        // baseline-corrected residuals are all slightly negative.
        let rec = log.arrivals.entry((exp, slot)).or_insert(ArrivalRecord {
            qdelay_max_secs: f64::NEG_INFINITY,
            ..Default::default()
        });
        // Clamp: even a malformed sender reusing (seq, idx) pairs across
        // more datagrams than the probe announces cannot push `received`
        // past the probe length.
        rec.received = (state.seen_idx.len() as u8).min(state.probe_len);
        rec.duplicates = state.duplicates;
        rec.qdelay_last_secs = q;
        rec.qdelay_max_secs = rec.qdelay_max_secs.max(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local0() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn send_header(sock: &UdpSocket, target: SocketAddr, h: &ProbeHeader, bytes: usize) {
        sock.send_to(&h.encode(bytes), target).unwrap();
    }

    fn settle() {
        std::thread::sleep(Duration::from_millis(120));
    }

    #[test]
    fn accepts_session_packets_and_rejects_others() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 42)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        let good = ProbeHeader {
            session: 42,
            experiment: 1,
            slot: 10,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 2,
        };
        let bad_session = ProbeHeader { session: 9, ..good };
        send_header(&sock, target, &good, 100);
        send_header(&sock, target, &bad_session, 100);
        sock.send_to(b"garbage", target).unwrap();
        settle();
        let log = handle.stop();
        assert_eq!(log.packets, 1);
        assert_eq!(log.rejected, 2);
        assert_eq!(log.duplicates, 0);
        assert_eq!(log.arrivals.len(), 1);
        assert_eq!(log.arrivals[&(1, 10)].received, 1);
    }

    #[test]
    fn offset_removal_yields_relative_queueing_delay() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 1)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Two packets with send timestamps from an unrelated clock: the
        // second "left" 50 ms earlier than its arrival spacing implies,
        // i.e. it queued ~50 ms longer.
        let base = 1_000_000_000_000u64; // arbitrary foreign clock
        let h1 = ProbeHeader {
            session: 1,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: base,
            idx: 0,
            probe_len: 1,
        };
        let h2 = ProbeHeader {
            experiment: 1,
            slot: 5,
            seq: 1,
            send_ns: base,
            ..h1
        };
        send_header(&sock, target, &h1, 100);
        std::thread::sleep(Duration::from_millis(50));
        send_header(&sock, target, &h2, 100);
        settle();
        let log = handle.stop();
        let q1 = log.arrivals[&(0, 0)].qdelay_max_secs;
        let q2 = log.arrivals[&(1, 5)].qdelay_max_secs;
        assert!(q1 < 0.01, "first packet defines the baseline, got {q1}");
        assert!(
            (q2 - 0.05).abs() < 0.03,
            "second packet ~50 ms of queueing, got {q2}"
        );
    }

    #[test]
    fn skewed_sender_clock_is_corrected() {
        // A sender whose clock runs fast by 1% (exaggerated for a 2 s
        // test; real skews are ppm over hours): send_ns grows 1.01× real
        // time. Without skew removal the early packets would read tens
        // of ms of phantom queueing.
        let handle = start_receiver(ReceiverConfig::new(local0(), 5)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        let start = Instant::now();
        for i in 0..40u64 {
            let real_ns = start.elapsed().as_nanos() as u64;
            let skewed_ns = (real_ns as f64 * 1.01) as u64;
            let h = ProbeHeader {
                session: 5,
                experiment: i,
                slot: i,
                seq: i,
                send_ns: skewed_ns,
                idx: 0,
                probe_len: 1,
            };
            send_header(&sock, target, &h, 64);
            std::thread::sleep(Duration::from_millis(50));
        }
        settle();
        let log = handle.stop();
        assert_eq!(log.packets, 40);
        // Every packet is idle; after baseline removal all queueing
        // delays must be small. (1% over 2 s = 20 ms of drift, so the
        // naive min-subtraction would report up to ~20 ms on one end.)
        let max_q = log
            .arrivals
            .values()
            .map(|r| r.qdelay_max_secs)
            .fold(0.0f64, f64::max);
        assert!(
            max_q < 0.008,
            "residual queueing delay {max_q} after skew removal"
        );
    }

    #[test]
    fn multi_packet_probe_aggregates() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 3)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        for idx in 0..3u8 {
            let h = ProbeHeader {
                session: 3,
                experiment: 8,
                slot: 2,
                seq: idx as u64,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            send_header(&sock, target, &h, 64);
        }
        settle();
        let log = handle.stop();
        assert_eq!(log.arrivals[&(8, 2)].received, 3);
    }

    #[test]
    fn duplicates_are_counted_but_never_inflate_arrivals() {
        let metrics = Arc::new(Registry::new("recv-dup-test"));
        let handle = start_receiver(ReceiverConfig {
            metrics: Some(metrics.clone()),
            ..ReceiverConfig::new(local0(), 6)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // A 3-packet probe that loses packet idx 2 but has idx 0
        // duplicated three times: without dedup the count would read 4
        // (debug-overflow territory on a u8 under longer floods) and the
        // lost packet would be masked.
        for (seq, idx) in [(0u64, 0u8), (0, 0), (0, 0), (0, 0), (1, 1)] {
            let h = ProbeHeader {
                session: 6,
                experiment: 4,
                slot: 9,
                seq,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            send_header(&sock, target, &h, 64);
        }
        settle();
        let log = handle.stop();
        let rec = log.arrivals[&(4, 9)];
        assert_eq!(rec.received, 2, "one packet genuinely lost");
        assert_eq!(rec.duplicates, 3);
        assert_eq!(log.packets, 2);
        assert_eq!(log.duplicates, 3);
        assert_eq!(metrics.counter("duplicates").get(), 3);
        // Per-session instruments ride alongside the server-wide ones.
        assert_eq!(metrics.counter("session_6_duplicates").get(), 3);
        assert_eq!(metrics.counter("session_6_packets_accepted").get(), 2);
    }

    #[test]
    fn watchdog_exits_after_idle_timeout() {
        let handle = start_receiver(ReceiverConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ReceiverConfig::new(local0(), 2)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Watchdog arms only once a session starts.
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            !handle.is_finished(),
            "watchdog must not fire before any activity"
        );
        let h = ProbeHeader {
            session: 2,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 1,
        };
        send_header(&sock, target, &h, 64);
        let started = Instant::now();
        let log = handle.join();
        assert!(
            started.elapsed() >= Duration::from_millis(140),
            "exited before the idle timeout"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "watchdog too slow"
        );
        assert_eq!(log.packets, 1);
    }

    #[test]
    fn report_roundtrips_through_records() {
        let mut log = ReceiverLog {
            packets: 5,
            duplicates: 1,
            ..Default::default()
        };
        log.arrivals.insert(
            (3, 7),
            ArrivalRecord {
                received: 2,
                duplicates: 1,
                qdelay_last_secs: 0.01,
                qdelay_max_secs: 0.02,
            },
        );
        log.arrivals.insert(
            (4, 1),
            ArrivalRecord {
                received: 3,
                duplicates: 0,
                qdelay_last_secs: 0.0,
                qdelay_max_secs: 0.0,
            },
        );
        let records = log.to_records();
        assert_eq!(records.len(), 2);
        assert!(records[0].experiment < records[1].experiment);
        let back = ReceiverLog::from_report(log.summary(), &records);
        assert_eq!(back.packets, 5);
        assert_eq!(back.duplicates, 1);
        assert_eq!(back.arrivals[&(3, 7)].received, 2);
        assert_eq!(back.arrivals[&(3, 7)].duplicates, 1);
    }

    #[test]
    fn qdelay_max_is_seeded_from_the_first_arrival() {
        // Regression: the fold used to start from the ArrivalRecord
        // default of 0.0, so a probe whose baseline-corrected residuals
        // were all slightly negative (the lower-envelope fit touches the
        // samples only to within numerical error) reported
        // qdelay_max_secs = 0.0 > qdelay_last_secs — an inconsistent
        // record.
        let baseline = crate::skew::Baseline {
            offset: 0.005, // sits 5 ms above this probe's raw delays
            slope: 0.0,
        };
        // Two arrivals of one probe: raw delays 4.8 ms and 4.9 ms, so
        // corrected residuals are -0.2 ms then -0.1 ms.
        let raw_delays = vec![(0u64, 0u64, 0.0, 4_800_000i64), (0, 0, 0.1, 4_900_000)];
        let mut probes = HashMap::new();
        probes.insert(
            (0u64, 0u64),
            ProbeArrivals {
                seen_idx: [0u8, 1].into_iter().collect(),
                probe_len: 2,
                duplicates: 0,
            },
        );
        let mut log = ReceiverLog::default();
        apply_baseline(&baseline, &raw_delays, &probes, &mut log, None);
        let rec = log.arrivals[&(0, 0)];
        assert!(
            (rec.qdelay_last_secs - (-1e-4)).abs() < 1e-12,
            "last residual, got {}",
            rec.qdelay_last_secs
        );
        assert!(
            (rec.qdelay_max_secs - (-1e-4)).abs() < 1e-12,
            "max must be the larger *observed* residual, got {}",
            rec.qdelay_max_secs
        );
        assert!(
            rec.qdelay_max_secs >= rec.qdelay_last_secs,
            "record must be internally consistent"
        );
        assert!(
            rec.qdelay_max_secs < 0.0,
            "an all-negative probe must not report a phantom 0.0 max"
        );
    }
}
