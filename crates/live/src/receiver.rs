//! The live probe receiver: a multi-session server.
//!
//! Collects probe packets on a plain `std::net::UdpSocket` (plain
//! threads, no async runtime), computes per-packet delay against its
//! own monotonic clock, and removes the unknown clock offset and skew
//! by fitting the lower envelope of the raw delay series (§7; see
//! [`crate::skew`]). What remains is queueing delay above the path
//! minimum — exactly the quantity the §6.1 `(1-α)·OWDmax` threshold
//! discriminates on.
//!
//! The datapath is split in two. Probes take the **fast path**: drained
//! in batches (Linux `recvmmsg` via [`crate::batch_io`], one-datagram
//! fallback elsewhere), timestamped once per batch, and dispatched into
//! a **sharded** session registry (`session_id % shards`, one lock per
//! shard) through allocation-free accounting
//! ([`SessionState::ingest`]). Control messages take the slow path and
//! reply through a reused stack buffer. `recv_threads > 1` drains the
//! same socket from several threads; the batched and fallback paths
//! produce byte-identical per-session reports for the same arrival
//! sequence (see the differential tests).
//!
//! One process serves **many concurrent sender sessions**: a session
//! registry keyed by session id holds per-session accumulation state
//! (arrival map, raw-delay series for the skew fit, control-plane
//! finalization snapshot, idle deadline, metrics). Under
//! [`SessionPolicy::Any`] sessions are opened dynamically by the
//! control-plane SYN handshake, bounded by `max_sessions` — a SYN past
//! the cap is refused with an explicit NACK, and sessions are reaped on
//! completion or per-session idle timeout *without* terminating the
//! serve loop. [`SessionPolicy::Single`] preserves the original
//! one-sender tool shape (probes may open the session without a
//! handshake, and the loop exits when that session ends);
//! [`start_receiver`] is a thin wrapper over it.
//!
//! Sample-record integrity: real networks duplicate and reorder
//! datagrams, and a duplicated arrival must not make a lost probe look
//! complete (the estimator's input is the per-probe loss record, so
//! inflation there corrupts everything downstream). Arrivals are
//! deduplicated per session by `(seq, idx)`; duplicates are counted
//! separately and never touch the loss accounting. Reordering is
//! harmless by construction — records are keyed by `(experiment, slot)`,
//! not arrival order.
//!
//! The receiver also serves the control plane on the same socket
//! (handshake, heartbeats, FIN + chunked report retrieval — see
//! `badabing_wire::control`). The skew-baseline fit and record assembly
//! run per session at that session's finalization, so concurrent
//! sessions never contaminate each other's clock model or records.

use crate::batch_io::DEFAULT_RECV_BATCH;
use crate::control::estimate_counters;
use crate::event_loop::{PollMode, PollWaker, Poller, Wait};
use crate::provider::{Clock, Provider, RecvBatch, Socket, TimestampSource};
use badabing_core::estimator::Estimates;
use badabing_core::outcome::Outcome;
use badabing_metrics::{Counter, Registry};
use badabing_stats::DelaySketch;
use badabing_wire::control::{
    chunk_count, chunk_window, encode_report_chunk_into, ControlMessage, DelaySummary,
    EstimateScope, RejectReason, ReportRecord, ReportSummary, SessionParams, MAX_CONTROL_BYTES,
    RECORD_FLAG_KERNEL_STAMPED,
};
use badabing_wire::ProbeHeader;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Single-session receiver configuration (the original tool shape).
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Address to listen on.
    pub bind: SocketAddr,
    /// Only accept packets stamped with this session id.
    pub session: u32,
    /// Watchdog: exit after this long without any datagram, once a
    /// session has started. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Answer control-plane messages (handshake, heartbeat, report
    /// retrieval). Disable for raw packet-capture use.
    pub serve_control: bool,
    /// Run counters and delay histograms, if observability is wanted.
    pub metrics: Option<Arc<Registry>>,
    /// Which I/O backend to bind through (real UDP by default).
    pub provider: Provider,
}

impl ReceiverConfig {
    /// A receiver on `bind` for `session`: control plane on, no
    /// watchdog, no metrics, real UDP.
    pub fn new(bind: SocketAddr, session: u32) -> Self {
        Self {
            bind,
            session,
            idle_timeout: None,
            serve_control: true,
            metrics: None,
            provider: Provider::default(),
        }
    }
}

/// Which sessions the server admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPolicy {
    /// Accept exactly this pre-configured session id. Probes may open
    /// the session without a handshake, and the serve loop exits when
    /// the session completes or its idle watchdog fires — the original
    /// one-sender/one-receiver tool shape.
    Single(u32),
    /// Accept any session that opens with a SYN handshake, up to
    /// `max_sessions` concurrently. Completion or idle timeout reaps
    /// the individual session; the serve loop keeps running until
    /// stopped. Probe or control datagrams for unregistered sessions
    /// are not accepted (probes count as rejected; stale control
    /// retransmits are ignored).
    Any,
}

/// Multi-session server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on.
    pub bind: SocketAddr,
    /// Session admission policy.
    pub policy: SessionPolicy,
    /// Registry capacity: SYNs arriving while this many sessions are
    /// active are refused with [`RejectReason::Capacity`]. Completion
    /// and idle reaping free capacity.
    pub max_sessions: usize,
    /// Per-session idle watchdog: a session without any datagram for
    /// this long is finalized and reaped. `None` keeps idle sessions
    /// forever.
    pub idle_timeout: Option<Duration>,
    /// Answer control-plane messages (handshake, heartbeat, report
    /// retrieval). Disable for raw packet-capture use.
    pub serve_control: bool,
    /// Run counters and delay histograms, if observability is wanted.
    /// Per-session instruments are published under a `session_<id>_`
    /// prefix alongside the server-wide ones.
    pub metrics: Option<Arc<Registry>>,
    /// The I/O backend everything binds through: real UDP with batched
    /// syscalls where available (the default), real UDP with the
    /// portable path forced ([`Provider::udp`]), or a seeded in-process
    /// [`crate::faultnet::FaultNet`] — the differential tests pin the
    /// real backends and hold them to identical reports.
    pub provider: Provider,
    /// Threads draining the shared socket (≥ 1). Every thread runs the
    /// full loop (probe fast path + control slow path); the sharded
    /// session registry keeps concurrent sessions from serializing on
    /// one lock. The default of 1 preserves strictly sequential
    /// datagram handling.
    pub recv_threads: usize,
    /// Session-registry shards (sessions map to `session_id % shards`,
    /// each shard behind its own lock).
    pub shards: usize,
    /// How the drain loops wait for work: epoll readiness where
    /// available ([`PollMode::Auto`]), or the portable timeout loop.
    /// Idle sessions cost zero wakeups under epoll — the loop parks
    /// until a datagram or the next watchdog deadline.
    pub poll: PollMode,
    /// Per-session memory ceiling (approximate, capacity-based — see
    /// [`ServerReport::mem_peak_bytes`]). Bounds what one session's
    /// SYN-announced pre-sizing may reserve *and* what its probe stream
    /// may accumulate: probe datagrams that would push the session past
    /// the ceiling are dropped and counted instead of stored.
    pub session_budget_bytes: usize,
    /// Global memory ceiling across every open session. `None` is
    /// unlimited. A SYN whose (budget-capped) projected reservation
    /// would cross it triggers [`ServerConfig::on_pressure`].
    pub global_budget_bytes: Option<usize>,
    /// What to do when admitting a session would exceed the global
    /// budget.
    pub on_pressure: PressurePolicy,
    /// Periodically merge every live session's online estimator
    /// counters and delay sketch into fleet-wide metrics gauges
    /// (`fleet_*`). `None` disables the snapshots; they also require
    /// [`ServerConfig::metrics`] to be set to have anywhere to land.
    pub estimate_interval: Option<Duration>,
}

/// Admission behaviour under global-budget pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PressurePolicy {
    /// Refuse the new session with [`RejectReason::Budget`].
    #[default]
    Reject,
    /// Evict the longest-idle open session(s) to make room; refuse with
    /// [`RejectReason::Budget`] only if eviction cannot free enough.
    /// Evicted sessions are finalized as [`SessionEnd::Evicted`] and
    /// their later control messages answered with
    /// [`RejectReason::Evicted`] so the far sender fails fast.
    EvictIdle,
}

impl std::str::FromStr for PressurePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reject" => Ok(PressurePolicy::Reject),
            "evict" | "evict-idle" => Ok(PressurePolicy::EvictIdle),
            other => Err(format!(
                "unknown pressure policy {other:?} (expected reject|evict)"
            )),
        }
    }
}

/// Default shard count for the session registry: enough to make lock
/// collisions between a handful of concurrent sessions unlikely, small
/// enough that the watchdog sweep stays trivial.
pub const DEFAULT_SHARDS: usize = 8;

/// Default per-session memory ceiling. Generous enough for the paper's
/// largest runs (a 180k-slot improved run at 3 packets/probe accounts
/// ~45 MB); tight enough that one hostile session cannot claim the box.
pub const DEFAULT_SESSION_BUDGET_BYTES: usize = 256 << 20;

impl ServerConfig {
    /// A server on `bind` admitting any session up to `max_sessions`:
    /// control plane on, no idle watchdog, no metrics, auto-batched I/O
    /// on a single drain thread, epoll readiness where available, and
    /// the default per-session budget with no global ceiling.
    pub fn any(bind: SocketAddr, max_sessions: usize) -> Self {
        Self {
            bind,
            policy: SessionPolicy::Any,
            max_sessions,
            idle_timeout: None,
            serve_control: true,
            metrics: None,
            provider: Provider::default(),
            recv_threads: 1,
            shards: DEFAULT_SHARDS,
            poll: PollMode::Auto,
            session_budget_bytes: DEFAULT_SESSION_BUDGET_BYTES,
            global_budget_bytes: None,
            on_pressure: PressurePolicy::default(),
            estimate_interval: None,
        }
    }
}

/// Per-probe arrival record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalRecord {
    /// Distinct packets of this probe that arrived.
    pub received: u8,
    /// Duplicated datagrams observed for this probe (saturating).
    pub duplicates: u8,
    /// Queueing delay (seconds above path minimum) of the most recent
    /// arrival. May be marginally negative: the lower-envelope clock
    /// fit touches the samples only to within numerical error.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay over the probe's arrivals.
    pub qdelay_max_secs: f64,
    /// Whether every arrival of this probe carried a kernel RX stamp
    /// (precision-grade delay; a userspace-stamped arrival anywhere in
    /// the probe clears it).
    pub kernel_stamped: bool,
}

/// Everything the receiver collected for one session.
#[derive(Debug, Clone, Default)]
pub struct ReceiverLog {
    /// Arrival records keyed by (experiment, slot).
    pub arrivals: HashMap<(u64, u64), ArrivalRecord>,
    /// Distinct probe packets accepted.
    pub packets: u64,
    /// Datagrams rejected (unknown session, undecodable). This is a
    /// server-wide count, not a per-session one: rejected datagrams by
    /// definition could not be attributed to a session.
    pub rejected: u64,
    /// Duplicated probe datagrams detected (not counted in `packets`
    /// or any arrival record's `received`).
    pub duplicates: u64,
    /// The minimum raw delay used as the clock-offset estimate, in
    /// nanoseconds (signed: clocks are unrelated across processes).
    pub min_raw_delay_ns: Option<i64>,
    /// Tool parameters announced by the sender's handshake, if any.
    pub handshake: Option<SessionParams>,
}

impl ReceiverLog {
    /// The control-plane summary of this log.
    pub fn summary(&self) -> ReportSummary {
        ReportSummary {
            packets: self.packets,
            rejected: self.rejected,
            duplicates: self.duplicates,
            min_raw_delay_ns: self.min_raw_delay_ns,
        }
    }

    /// Flatten the arrival map into control-plane report records,
    /// sorted by (experiment, slot) for deterministic chunking.
    pub fn to_records(&self) -> Vec<ReportRecord> {
        let mut records: Vec<ReportRecord> = self
            .arrivals
            .iter()
            .map(|(&(experiment, slot), r)| ReportRecord {
                experiment,
                slot,
                received: r.received,
                duplicates: r.duplicates,
                qdelay_last_secs: r.qdelay_last_secs,
                qdelay_max_secs: r.qdelay_max_secs,
                flags: if r.kernel_stamped {
                    RECORD_FLAG_KERNEL_STAMPED
                } else {
                    0
                },
            })
            .collect();
        records.sort_by_key(|r| (r.experiment, r.slot));
        records
    }

    /// Rebuild a log from a fetched report (the sender-side inverse of
    /// [`ReceiverLog::to_records`]).
    pub fn from_report(summary: ReportSummary, records: &[ReportRecord]) -> Self {
        let mut log = ReceiverLog {
            packets: summary.packets,
            rejected: summary.rejected,
            duplicates: summary.duplicates,
            min_raw_delay_ns: summary.min_raw_delay_ns,
            ..Default::default()
        };
        for r in records {
            log.arrivals.insert(
                (r.experiment, r.slot),
                ArrivalRecord {
                    received: r.received,
                    duplicates: r.duplicates,
                    qdelay_last_secs: r.qdelay_last_secs,
                    qdelay_max_secs: r.qdelay_max_secs,
                    kernel_stamped: r.flags & RECORD_FLAG_KERNEL_STAMPED != 0,
                },
            );
        }
        log
    }
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The sender acknowledged the full report (clean completion).
    Completed,
    /// The per-session idle watchdog reclaimed it.
    IdleTimeout,
    /// Evicted as the longest-idle session to relieve global memory
    /// pressure ([`PressurePolicy::EvictIdle`]). Its sender's later
    /// control messages are answered with [`RejectReason::Evicted`].
    Evicted,
    /// The server was stopped while the session was still open.
    Stopped,
}

/// One finished session: its id, how it ended, and its finalized log.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Session id.
    pub session: u32,
    /// How the session ended.
    pub end: SessionEnd,
    /// The session's finalized log. For a completed session this is the
    /// FIN snapshot — exactly what the sender fetched.
    pub log: ReceiverLog,
}

/// Everything a server run produced.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Finished sessions in the order they ended (sessions still open
    /// at stop are appended last, sorted by id, as
    /// [`SessionEnd::Stopped`]).
    pub sessions: Vec<SessionOutcome>,
    /// Datagrams rejected across the whole run (unknown-session probes,
    /// undecodable noise, wrong-session traffic in single mode,
    /// over-budget probe drops).
    pub rejected: u64,
    /// SYNs refused at admission — registry at `max_sessions`, or over
    /// the global memory budget.
    pub syns_rejected: u64,
    /// The subset of `syns_rejected` refused for the memory budget
    /// specifically ([`RejectReason::Budget`]).
    pub budget_rejects: u64,
    /// Sessions evicted to relieve global-budget pressure
    /// ([`SessionEnd::Evicted`]).
    pub sessions_evicted: u64,
    /// Out-of-range or pre-FIN report requests answered with an empty
    /// deterministic chunk instead of silence.
    pub chunk_nacks: u64,
    /// High-water mark of the capacity-based session memory accounting,
    /// in bytes (an estimate of registry RSS, not an allocator audit).
    pub mem_peak_bytes: usize,
    /// Logical datagrams produced by splitting GRO super-datagrams.
    pub gro_segments_split: u64,
    /// Control messages (cmsgs) that failed to decode sanely.
    pub cmsg_decode_errors: u64,
    /// Datagrams whose arrival time came from a kernel RX stamp.
    pub rx_timestamp_kernel: u64,
    /// Datagrams that fell back to the userspace per-batch clock read.
    pub rx_timestamp_user_fallback: u64,
}

impl ServerReport {
    /// The finalized log of `session`, if it finished during this run.
    pub fn log_for(&self, session: u32) -> Option<&ReceiverLog> {
        self.sessions
            .iter()
            .find(|o| o.session == session)
            .map(|o| &o.log)
    }
}

/// Handle to a running multi-session server thread.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    joined: std::thread::JoinHandle<ServerReport>,
    local_addr: SocketAddr,
    clock: Clock,
    waker: Arc<PollWaker>,
}

impl ServerHandle {
    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the serve loop exited on its own (single-session
    /// completion or watchdog; an any-policy server only exits when
    /// stopped).
    pub fn is_finished(&self) -> bool {
        self.joined.is_finished()
    }

    /// Stop the server and collect its report.
    pub fn stop(self) -> ServerReport {
        self.stop.store(true, Ordering::Relaxed);
        // Kick every parked drain thread out of epoll_wait; no-op on
        // the timeout loop (its blocking recv times out on its own).
        self.waker.wake();
        self.clock.notify_waiters();
        // Join outside the virtual busy count, or a fault-backed serve
        // thread could never be scheduled to observe the stop flag.
        let joined = self.joined;
        self.clock
            .unenrolled(|| joined.join())
            .expect("receiver thread panicked")
    }

    /// Wait for the serve loop to exit on its own and collect the
    /// report. Blocks indefinitely for an any-policy server that is
    /// never stopped.
    pub fn join(self) -> ServerReport {
        let joined = self.joined;
        self.clock
            .unenrolled(|| joined.join())
            .expect("receiver thread panicked")
    }
}

/// Handle to a running single-session receiver (thin wrapper over the
/// session server).
pub struct ReceiverHandle {
    session: u32,
    inner: ServerHandle,
}

impl ReceiverHandle {
    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Whether the receiver exited on its own (session complete or
    /// watchdog fired).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// Stop the receiver and collect its log.
    pub fn stop(self) -> ReceiverLog {
        let session = self.session;
        Self::extract(session, self.inner.stop())
    }

    /// Wait for the receiver to exit on its own (session completion or
    /// idle watchdog) and collect its log. Blocks indefinitely if the
    /// config has no watchdog and no sender ever completes a session.
    pub fn join(self) -> ReceiverLog {
        let session = self.session;
        Self::extract(session, self.inner.join())
    }

    fn extract(session: u32, report: ServerReport) -> ReceiverLog {
        let mut log = report
            .sessions
            .into_iter()
            .find(|o| o.session == session)
            .map(|o| o.log)
            .unwrap_or_default();
        // Single-session semantics: the one log owns the global reject
        // count (it predates the multi-session registry).
        log.rejected = report.rejected;
        log
    }
}

/// How often the receive loop wakes to check the stop flag and watchdog.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Upper bound on one epoll park: keeps stop-flag latency bounded even
/// if a wake is somehow lost, without costing idle CPU (one wakeup per
/// half-second is noise).
const EPOLL_MAX_PARK: Duration = Duration::from_millis(500);

/// Floor between two watchdog sweeps, so clustered session deadlines
/// cannot turn the sweep into a hot spin.
const MIN_SWEEP_GAP: Duration = Duration::from_millis(5);

/// Sweep cadence when no idle timeout schedules one: sweeps still
/// re-settle per-session memory accounting and reconcile the global
/// budget, so they must keep running.
const SWEEP_FALLBACK: Duration = Duration::from_millis(200);

/// Capacity-based per-entry cost estimates for the memory budgets.
/// Hash entries include bucket/control-byte overhead, vector elements
/// their size; deliberately round and slightly generous — the budget is
/// a guard rail against hostile or runaway sessions, not an allocator
/// audit.
const PROBE_ENTRY_BYTES: usize = 96;
/// Dedup-set entry: `(u64, u8)` key plus hash overhead.
const SEEN_ENTRY_BYTES: usize = 24;
/// Raw-delay element: `(u64, u64, f64, i64)`.
const RAW_ENTRY_BYTES: usize = 32;
/// Finalized report record plus its share of the snapshot log.
const RECORD_ENTRY_BYTES: usize = 112;
/// Online-estimator assembly entry: `u64` key, [`ExpAssembly`], hash
/// overhead.
const EXP_ENTRY_BYTES: usize = 80;

/// Per-probe accumulation state.
struct ProbeArrivals {
    seen_idx: HashSet<u8>,
    probe_len: u8,
    duplicates: u8,
    /// Stays set only while every distinct arrival of the probe carried
    /// a kernel RX stamp.
    kernel_stamped: bool,
}

impl Default for ProbeArrivals {
    fn default() -> Self {
        Self {
            seen_idx: HashSet::new(),
            probe_len: 0,
            duplicates: 0,
            kernel_stamped: true,
        }
    }
}

/// Per-experiment assembly state for the online estimator fold: just
/// enough to re-derive the experiment's current [`Outcome`] from the
/// probe map without walking it (bounds + distinct-slot count), plus
/// the outcome currently folded into the session's [`Estimates`] so a
/// revision can retract it exactly.
#[derive(Default)]
struct ExpAssembly {
    /// Lowest slot seen for this experiment.
    lo: u64,
    /// Highest slot seen for this experiment.
    hi: u64,
    /// Distinct slots seen (saturating; 0 = nothing yet).
    slots: u8,
    /// The outcome currently counted in the session's online
    /// [`Estimates`], if the experiment has ever looked complete.
    folded: Option<Outcome>,
}

/// A finalized session snapshot: frozen at the first FIN (or at reap
/// time) and re-served verbatim on every retransmit. Chunks are not
/// materialized: any requested chunk is encoded on demand straight from
/// a window of `records` ([`encode_report_chunk_into`]), byte-identical
/// across re-requests, with no per-chunk record clone.
struct Finalized {
    records: Vec<ReportRecord>,
    total_chunks: u32,
    summary: ReportSummary,
    log: ReceiverLog,
}

/// Per-session accumulation state in the registry.
struct SessionState {
    /// (exp, slot, receive time secs, raw delay ns) — first copies only.
    raw_delays: Vec<(u64, u64, f64, i64)>,
    probes: HashMap<(u64, u64), ProbeArrivals>,
    seen: HashSet<(u64, u8)>,
    packets: u64,
    duplicates: u64,
    min_raw: Option<i64>,
    handshake: Option<SessionParams>,
    /// Clock time (absolute, since the provider clock's epoch) of the
    /// last datagram for this session — the idle watchdog's input.
    last_activity: Duration,
    finalized: Option<Finalized>,
    /// §5 pattern counters maintained incrementally on the ingest fast
    /// path (loss-only outcome derivation — see [`derive_outcome`]).
    /// Frozen once the session finalizes, so post-FIN strays cannot
    /// drift the snapshot the differential contract pins.
    online: Estimates,
    /// Fixed log-scale sketch of offset-adjusted raw delays (seconds
    /// above the running path minimum), mergeable across sessions.
    delay_sketch: DelaySketch,
    /// Online assembly state, one entry per experiment seen.
    exps: HashMap<u64, ExpAssembly>,
    /// What this session last settled against the server's global
    /// memory tally ([`Shared::settle_mem`]); released when the session
    /// leaves the registry.
    accounted_bytes: usize,
    m_packets: Option<Arc<Counter>>,
    m_duplicates: Option<Arc<Counter>>,
}

impl SessionState {
    fn new(session: u32, metrics: Option<&Registry>, now: Duration) -> Self {
        let scope = metrics.map(|m| m.scope(format!("session_{session}")));
        Self {
            raw_delays: Vec::new(),
            probes: HashMap::new(),
            seen: HashSet::new(),
            packets: 0,
            duplicates: 0,
            min_raw: None,
            handshake: None,
            last_activity: now,
            finalized: None,
            online: Estimates::default(),
            delay_sketch: DelaySketch::new(),
            exps: HashMap::new(),
            accounted_bytes: 0,
            m_packets: scope.as_ref().map(|s| s.counter("packets_accepted")),
            m_duplicates: scope.as_ref().map(|s| s.counter("duplicates")),
        }
    }

    /// Approximate bytes this session's containers hold, computed from
    /// their *capacities* (what was reserved, not merely filled) — that
    /// is what a hostile SYN inflates and what the budgets must bound.
    /// Pure arithmetic on a handful of fields: cheap enough for the
    /// per-datagram fast path.
    fn mem_bytes(&self) -> usize {
        self.probes.capacity() * PROBE_ENTRY_BYTES
            + self.seen.capacity() * SEEN_ENTRY_BYTES
            + self.raw_delays.capacity() * RAW_ENTRY_BYTES
            + self.exps.capacity() * EXP_ENTRY_BYTES
            + self
                .finalized
                .as_ref()
                .map_or(0, |f| f.records.capacity() * RECORD_ENTRY_BYTES)
    }

    /// What a SYN announcing `params` asks to have reserved, after the
    /// hard anti-hostile caps. Both the probe map *and* the per-packet
    /// containers are capped: the earlier code capped only the probe
    /// count and then multiplied it by `probe_packets` (up to 255),
    /// which let one datagram demand gigabytes of reservation.
    fn desired_entries(params: &SessionParams) -> (usize, usize, usize) {
        const MAX_RESERVED_PROBES: usize = 1 << 21;
        const MAX_RESERVED_PACKETS: usize = 1 << 22;
        let slots_per_exp: usize = if params.improved { 3 } else { 2 };
        let experiments = (params.n_slots as f64 * params.p).ceil() as usize;
        let probes = experiments
            .saturating_mul(slots_per_exp)
            .min(MAX_RESERVED_PROBES);
        let packets = probes
            .saturating_mul(usize::from(params.probe_packets.max(1)))
            .min(MAX_RESERVED_PACKETS);
        // The online assembly map holds one entry per experiment; the
        // probe cap bounds it transitively.
        (probes / slots_per_exp, probes, packets)
    }

    /// The bytes [`SessionState::reserve_for`] would take a fresh
    /// session to, clamped by the per-session budget — what admission
    /// charges against the global budget before any container exists.
    fn projected_bytes(params: &SessionParams, session_budget: usize) -> usize {
        let (exps, probes, packets) = Self::desired_entries(params);
        (probes * PROBE_ENTRY_BYTES
            + packets * (SEEN_ENTRY_BYTES + RAW_ENTRY_BYTES)
            + exps * EXP_ENTRY_BYTES)
            .min(session_budget)
    }

    /// Pre-size the accumulation maps from the SYN-carried tool config,
    /// so a full-length run never rehashes mid-flight: the expected
    /// probe count is `p·n_slots` experiments times the slots each one
    /// probes (3 under the improved §5.3 schedule, 2 basic), and the
    /// dedup set / raw-delay series see one entry per *packet*. Hard
    /// caps on both counts ([`SessionState::desired_entries`]) plus the
    /// per-session byte budget bound what a malicious SYN can balloon;
    /// `reserve` is additive, so re-announcing (SYN retransmit) never
    /// shrinks anything.
    fn reserve_for(&mut self, params: &SessionParams, session_budget: usize) {
        let (mut exps, mut probes, mut packets) = Self::desired_entries(params);
        // Scale the reservation down to what the per-session budget
        // leaves: a SYN may promise any run size, the receiver only
        // pays up to the budget for it.
        let want = probes * PROBE_ENTRY_BYTES
            + packets * (SEEN_ENTRY_BYTES + RAW_ENTRY_BYTES)
            + exps * EXP_ENTRY_BYTES;
        let remaining = session_budget.saturating_sub(self.mem_bytes());
        if want > remaining {
            let scale = remaining as f64 / want.max(1) as f64;
            probes = (probes as f64 * scale) as usize;
            packets = (packets as f64 * scale) as usize;
            exps = (exps as f64 * scale) as usize;
        }
        self.probes
            .reserve(probes.saturating_sub(self.probes.len()));
        self.seen.reserve(packets.saturating_sub(self.seen.len()));
        self.raw_delays
            .reserve(packets.saturating_sub(self.raw_delays.len()));
        self.exps.reserve(exps.saturating_sub(self.exps.len()));
    }

    /// Record the SYN-announced tool configuration: keep the params for
    /// the final log, seed the online estimator's slot width (the same
    /// expression the report-side fold uses, so the FIN differential is
    /// bit-exact), and pre-size the accumulation maps.
    fn apply_handshake(&mut self, params: SessionParams, session_budget: usize) {
        self.handshake = Some(params);
        self.online.slot_secs = params.slot_ns as f64 / 1e9;
        self.reserve_for(&params, session_budget);
    }

    /// Per-probe accounting shared verbatim by the batched and fallback
    /// datapaths (the differential test feeds both through here with
    /// identical timestamps and demands byte-identical reports).
    /// Returns `false` for a duplicated `(seq, idx)` datagram, which is
    /// tracked but never inflates arrival counts — a lost probe must
    /// not look complete.
    fn ingest(&mut self, h: &ProbeHeader, now: Duration, source: TimestampSource) -> bool {
        if !self.seen.insert((h.seq, h.idx)) {
            self.duplicates += 1;
            let entry = self.probes.entry((h.experiment, h.slot)).or_default();
            entry.duplicates = entry.duplicates.saturating_add(1);
            return false;
        }
        self.packets += 1;
        let raw = now.as_nanos() as i64 - h.send_ns as i64;
        self.min_raw = Some(self.min_raw.map_or(raw, |m| m.min(raw)));
        self.raw_delays
            .push((h.experiment, h.slot, now.as_secs_f64(), raw));
        let new_slot = !self.probes.contains_key(&(h.experiment, h.slot));
        let entry = self.probes.entry((h.experiment, h.slot)).or_default();
        entry.seen_idx.insert(h.idx);
        entry.probe_len = entry.probe_len.max(h.probe_len);
        // A probe is precision-grade only if every one of its arrivals
        // was; duplicates don't weigh in (they never touch delays).
        entry.kernel_stamped &= source == TimestampSource::Kernel;
        // Online estimator fold + delay sketch, frozen once the session
        // has finalized: the FIN snapshot is the contract, and a stray
        // post-FIN probe must not drift the live estimate away from it.
        if self.finalized.is_none() {
            self.fold_online(h.experiment, h.slot, new_slot);
            let min = self.min_raw.unwrap_or(raw);
            self.delay_sketch.push((raw - min) as f64 / 1e9);
        }
        true
    }

    /// Revise this experiment's contribution to the online counters
    /// after one accepted packet: update the assembly bounds, re-derive
    /// the experiment's current outcome, and retract-old/push-new on
    /// any change — so at every instant the online `Estimates` equal a
    /// fold over the outcomes derivable from the data received so far.
    fn fold_online(&mut self, exp: u64, slot: u64, new_slot: bool) {
        let a = self.exps.entry(exp).or_default();
        if new_slot {
            if a.slots == 0 {
                a.lo = slot;
                a.hi = slot;
            } else {
                a.lo = a.lo.min(slot);
                a.hi = a.hi.max(slot);
            }
            a.slots = a.slots.saturating_add(1);
        }
        let (lo, hi, slots, old) = (a.lo, a.hi, a.slots, a.folded);
        let new = derive_outcome(&self.probes, exp, lo, hi, slots);
        if new != old {
            if let Some(o) = &old {
                self.online.retract(o);
            }
            if let Some(o) = &new {
                self.online.push(o);
            }
            self.exps
                .get_mut(&exp)
                .expect("assembly just touched")
                .folded = new;
        }
    }

    /// Freeze the session log on first call; later calls re-serve the
    /// same snapshot (FIN idempotency).
    fn finalize(&mut self, rejected: u64, metrics: Option<&Registry>) -> &Finalized {
        if self.finalized.is_none() {
            let log = build_log(
                &self.raw_delays,
                &self.probes,
                self.packets,
                rejected,
                self.duplicates,
                self.min_raw,
                self.handshake,
                metrics,
            );
            let summary = log.summary();
            let records = log.to_records();
            self.finalized = Some(Finalized {
                total_chunks: chunk_count(records.len()),
                records,
                summary,
                log,
            });
        }
        self.finalized.as_ref().expect("just finalized")
    }

    fn into_outcome(
        mut self,
        session: u32,
        end: SessionEnd,
        rejected: u64,
        metrics: Option<&Registry>,
    ) -> SessionOutcome {
        self.finalize(rejected, metrics);
        let log = self.finalized.expect("just finalized").log;
        SessionOutcome { session, end, log }
    }
}

/// Start a single-session receiver; it records until stopped, until its
/// idle watchdog fires, or until the sender completes the control-plane
/// session (FIN + full report retrieval).
pub fn start_receiver(cfg: ReceiverConfig) -> std::io::Result<ReceiverHandle> {
    let session = cfg.session;
    let inner = start_server(ServerConfig {
        bind: cfg.bind,
        policy: SessionPolicy::Single(session),
        max_sessions: 1,
        idle_timeout: cfg.idle_timeout,
        serve_control: cfg.serve_control,
        metrics: cfg.metrics,
        provider: cfg.provider,
        recv_threads: 1,
        shards: 1,
        poll: PollMode::Auto,
        session_budget_bytes: DEFAULT_SESSION_BUDGET_BYTES,
        global_budget_bytes: None,
        on_pressure: PressurePolicy::default(),
        estimate_interval: None,
    })?;
    Ok(ReceiverHandle { session, inner })
}

/// Start a multi-session server thread; it serves sessions under the
/// configured policy until stopped (or, under
/// [`SessionPolicy::Single`], until that session ends).
pub fn start_server(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let socket = cfg.provider.bind(cfg.bind)?;
    let local_addr = socket.local_addr()?;
    socket.set_read_timeout(Some(POLL_INTERVAL))?;
    // Best effort: at probe rates worth batching for, the default kernel
    // rcvbuf overflows between scheduler quanta.
    socket.set_buffer_sizes(1 << 22, 1 << 22);
    // Resolve the readiness backend up front so a forced-epoll config
    // fails here, synchronously, not inside the serve thread.
    let use_epoll = cfg.poll.use_epoll(&socket);
    if cfg.poll == PollMode::Epoll && !use_epoll {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll polling needs a Linux fd-backed (real UDP) socket",
        ));
    }
    let waker = Arc::new(PollWaker::new(use_epoll)?);
    let serve_waker = waker.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let clock = cfg.provider.clock();
    let serve_clock = clock.clone();
    let t0 = clock.now();

    // Pre-register the serve thread so a virtual net cannot advance
    // time (and let the sender's handshake retries expire) before the
    // OS has even scheduled it.
    let enlistment = clock.enlist();
    let joined = std::thread::Builder::new()
        .name("badabing-recv".into())
        .spawn(move || {
            serve_clock.adopt(enlistment);
            serve_loop(&socket, &cfg, &serve_clock, t0, &stop_flag, &serve_waker)
        })
        .expect("spawn receiver thread");

    Ok(ServerHandle {
        stop,
        joined,
        local_addr,
        clock,
        waker,
    })
}

fn inc(c: &Option<Arc<Counter>>) {
    if let Some(c) = c {
        c.inc();
    }
}

/// Batch-friendly counter bump: one atomic add for a whole batch.
fn add(c: &Option<Arc<Counter>>, n: u64) {
    if let Some(c) = c {
        if n > 0 {
            c.add(n);
        }
    }
}

/// Server-wide instruments, shared by every drain thread.
struct ServeCounters {
    packets: Option<Arc<Counter>>,
    rejected: Option<Arc<Counter>>,
    dup: Option<Arc<Counter>>,
    ctrl: Option<Arc<Counter>>,
    opened: Option<Arc<Counter>>,
    completed: Option<Arc<Counter>>,
    idle_reaped: Option<Arc<Counter>>,
    syn_rejected: Option<Arc<Counter>>,
    stale: Option<Arc<Counter>>,
    truncated: Option<Arc<Counter>>,
    recv_syscalls: Option<Arc<Counter>>,
    recv_datagrams: Option<Arc<Counter>>,
    evicted: Option<Arc<Counter>>,
    budget_rejected: Option<Arc<Counter>>,
    chunk_nacks: Option<Arc<Counter>>,
    over_budget: Option<Arc<Counter>>,
    gro_split: Option<Arc<Counter>>,
    cmsg_errors: Option<Arc<Counter>>,
    ts_kernel: Option<Arc<Counter>>,
    ts_user: Option<Arc<Counter>>,
}

impl ServeCounters {
    fn new(metrics: Option<&Registry>) -> Self {
        Self {
            packets: metrics.map(|m| m.counter("packets_accepted")),
            rejected: metrics.map(|m| m.counter("datagrams_rejected")),
            dup: metrics.map(|m| m.counter("duplicates")),
            ctrl: metrics.map(|m| m.counter("control_messages")),
            opened: metrics.map(|m| m.counter("sessions_opened")),
            completed: metrics.map(|m| m.counter("sessions_completed")),
            idle_reaped: metrics.map(|m| m.counter("sessions_idle_reaped")),
            syn_rejected: metrics.map(|m| m.counter("syns_rejected")),
            stale: metrics.map(|m| m.counter("control_stale")),
            truncated: metrics.map(|m| m.counter("packets_truncated")),
            recv_syscalls: metrics.map(|m| m.counter("recv_syscalls")),
            recv_datagrams: metrics.map(|m| m.counter("recv_datagrams")),
            evicted: metrics.map(|m| m.counter("sessions_evicted")),
            budget_rejected: metrics.map(|m| m.counter("syns_budget_rejected")),
            chunk_nacks: metrics.map(|m| m.counter("report_chunk_nacks")),
            over_budget: metrics.map(|m| m.counter("probes_dropped_over_budget")),
            gro_split: metrics.map(|m| m.counter("gro_segments_split")),
            cmsg_errors: metrics.map(|m| m.counter("cmsg_decode_errors")),
            ts_kernel: metrics.map(|m| m.counter("rx_timestamp_kernel")),
            ts_user: metrics.map(|m| m.counter("rx_timestamp_user_fallback")),
        }
    }
}

/// Recently evicted session ids, bounded: enough to answer a stale
/// sender's next control message with an explicit
/// [`RejectReason::Evicted`] NACK instead of silence, small enough to
/// never matter for the budgets it exists to serve.
#[derive(Default)]
struct Tombstones {
    order: VecDeque<u32>,
    set: HashSet<u32>,
}

/// How many evicted session ids the tombstone ring remembers.
const TOMBSTONE_CAP: usize = 4096;

/// Everything the drain threads share. The session registry is sharded
/// by `session_id % shards`, each shard behind its own lock, so probe
/// bursts for different sessions land on different locks instead of
/// serializing on one map; global tallies are atomics bumped once per
/// batch.
struct Shared<'a> {
    cfg: &'a ServerConfig,
    socket: &'a Socket,
    clock: &'a Clock,
    /// Clock reading at serve start; per-packet delay stamps are taken
    /// relative to it so the time base matches the old `Instant` anchor.
    t0: Duration,
    single_id: Option<u32>,
    shards: Vec<Mutex<HashMap<u32, SessionState>>>,
    /// Open sessions across all shards (registry admission cap).
    active: AtomicUsize,
    outcomes: Mutex<Vec<SessionOutcome>>,
    rejected: AtomicU64,
    syns_rejected: AtomicU64,
    budget_rejects: AtomicU64,
    sessions_evicted: AtomicU64,
    chunk_nacks: AtomicU64,
    gro_segments_split: AtomicU64,
    cmsg_decode_errors: AtomicU64,
    rx_timestamp_kernel: AtomicU64,
    rx_timestamp_user: AtomicU64,
    /// Capacity-based bytes currently settled across open sessions.
    mem_used: AtomicUsize,
    /// High-water mark of `mem_used`.
    mem_peak: AtomicUsize,
    tombstones: Mutex<Tombstones>,
    /// Set when the serve loop should exit: single-session completion,
    /// a hard socket error, or external stop.
    done: AtomicBool,
    stop: &'a AtomicBool,
    /// Kicks parked epoll waiters on `done`/stop transitions.
    waker: &'a PollWaker,
    c: ServeCounters,
}

impl Shared<'_> {
    fn metrics(&self) -> Option<&Registry> {
        self.cfg.metrics.as_deref()
    }

    fn shard(&self, session: u32) -> &Mutex<HashMap<u32, SessionState>> {
        &self.shards[session as usize % self.shards.len()]
    }

    /// Reserve one admission slot below `max_sessions`, exactly (CAS
    /// loop: concurrent SYNs on different shards cannot over-admit).
    fn try_admit(&self) -> bool {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.cfg.max_sessions {
                return false;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Finalize a session already removed from its shard and record its
    /// outcome. Releases its settled memory and ends the whole serve
    /// loop in single mode.
    fn end_session(&self, id: u32, state: SessionState, end: SessionEnd) {
        self.mem_used
            .fetch_sub(state.accounted_bytes, Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let outcome = state.into_outcome(id, end, rejected, self.metrics());
        self.outcomes.lock().expect("outcomes lock").push(outcome);
        self.active.fetch_sub(1, Ordering::Relaxed);
        if self.single_id == Some(id) {
            self.done.store(true, Ordering::Relaxed);
            self.waker.wake();
        }
    }

    /// Re-settle a session's capacity-based memory estimate against the
    /// global tally, after anything that may have grown (or shrunk) its
    /// containers.
    fn settle_mem(&self, state: &mut SessionState) {
        let now = state.mem_bytes();
        let before = std::mem::replace(&mut state.accounted_bytes, now);
        if now > before {
            let used = self.mem_used.fetch_add(now - before, Ordering::Relaxed) + (now - before);
            self.mem_peak.fetch_max(used, Ordering::Relaxed);
        } else if before > now {
            self.mem_used.fetch_sub(before - now, Ordering::Relaxed);
        }
    }

    /// Charge `bytes` against the global budget, evicting idle sessions
    /// under [`PressurePolicy::EvictIdle`] until it fits. Must be
    /// called with NO shard lock held — the eviction path takes them
    /// one at a time.
    fn try_charge(&self, bytes: usize) -> bool {
        let Some(global) = self.cfg.global_budget_bytes else {
            let used = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
            self.mem_peak.fetch_max(used, Ordering::Relaxed);
            return true;
        };
        loop {
            let used = self.mem_used.load(Ordering::Relaxed);
            if used.saturating_add(bytes) <= global {
                if self
                    .mem_used
                    .compare_exchange_weak(used, used + bytes, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    self.mem_peak.fetch_max(used + bytes, Ordering::Relaxed);
                    return true;
                }
                continue;
            }
            match self.cfg.on_pressure {
                PressurePolicy::Reject => return false,
                PressurePolicy::EvictIdle => {
                    if !self.evict_oldest_idle() {
                        return false;
                    }
                }
            }
        }
    }

    /// Evict the longest-idle open session to relieve memory pressure:
    /// it is finalized as [`SessionEnd::Evicted`] and tombstoned so its
    /// sender's next control message gets an explicit NACK. Returns
    /// `false` when the registry is empty (nothing left to shed).
    /// Shard locks are taken one at a time — never nested.
    fn evict_oldest_idle(&self) -> bool {
        let mut oldest: Option<(usize, u32, Duration)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let sessions = shard.lock().expect("shard lock");
            for (&id, s) in sessions.iter() {
                if oldest.is_none_or(|(_, _, t)| s.last_activity < t) {
                    oldest = Some((i, id, s.last_activity));
                }
            }
        }
        let Some((i, id, _)) = oldest else {
            return false;
        };
        let mut sessions = self.shards[i].lock().expect("shard lock");
        let Some(state) = sessions.remove(&id) else {
            // Raced with completion or reaping between the scan and the
            // re-lock; memory was freed either way, let the caller
            // re-evaluate.
            return true;
        };
        drop(sessions);
        self.tombstone(id);
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
        inc(&self.c.evicted);
        self.end_session(id, state, SessionEnd::Evicted);
        true
    }

    fn tombstone(&self, id: u32) {
        let mut t = self.tombstones.lock().expect("tombstones lock");
        if t.set.insert(id) {
            t.order.push_back(id);
            if t.order.len() > TOMBSTONE_CAP {
                if let Some(old) = t.order.pop_front() {
                    t.set.remove(&old);
                }
            }
        }
    }

    /// A session id re-admitted by a fresh SYN is no longer "evicted".
    fn untombstone(&self, id: u32) {
        let mut t = self.tombstones.lock().expect("tombstones lock");
        if t.set.remove(&id) {
            t.order.retain(|&o| o != id);
        }
    }

    /// If `id` was evicted, answer its stale control message with an
    /// explicit [`RejectReason::Evicted`] NACK so the far sender fails
    /// fast instead of burning its whole retry schedule.
    fn reply_if_evicted(&self, id: u32, src: SocketAddr, scratch: &mut [u8; MAX_CONTROL_BYTES]) {
        let evicted = self
            .tombstones
            .lock()
            .expect("tombstones lock")
            .set
            .contains(&id);
        if evicted {
            let nack = ControlMessage::SynNack {
                session: id,
                reason: RejectReason::Evicted,
            };
            send_reply(self.socket, &nack, src, scratch);
        }
    }

    /// Merge every live session's online counters and delay sketch into
    /// one fleet summary. Shard locks are taken one at a time — never
    /// nested — and both merges are counter additions, so neither the
    /// visit order nor sessions completing mid-walk can produce a sum
    /// that no sequential merge order would.
    fn fleet_estimate(&self) -> (u32, Estimates, DelaySketch) {
        let mut est = Estimates::default();
        let mut sketch = DelaySketch::new();
        let mut sessions_merged = 0u32;
        for shard in &self.shards {
            let sessions = shard.lock().expect("shard lock");
            for s in sessions.values() {
                est.merge(&s.online);
                sketch.merge(&s.delay_sketch);
                sessions_merged += 1;
            }
        }
        (sessions_merged, est, sketch)
    }

    /// Refuse a SYN with `reason` (counted in both the total and, where
    /// applicable, the per-reason tallies by the caller).
    fn refuse_syn(
        &self,
        session: u32,
        reason: RejectReason,
        src: SocketAddr,
        scratch: &mut [u8; MAX_CONTROL_BYTES],
    ) {
        self.syns_rejected.fetch_add(1, Ordering::Relaxed);
        inc(&self.c.syn_rejected);
        let nack = ControlMessage::SynNack { session, reason };
        send_reply(self.socket, &nack, src, scratch);
    }
}

fn serve_loop(
    socket: &Socket,
    cfg: &ServerConfig,
    clock: &Clock,
    t0: Duration,
    stop: &AtomicBool,
    waker: &PollWaker,
) -> ServerReport {
    let single_id = match cfg.policy {
        SessionPolicy::Single(id) => Some(id),
        SessionPolicy::Any => None,
    };
    let shared = Shared {
        cfg,
        socket,
        clock,
        t0,
        single_id,
        shards: (0..cfg.shards.max(1))
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        active: AtomicUsize::new(0),
        outcomes: Mutex::new(Vec::new()),
        rejected: AtomicU64::new(0),
        syns_rejected: AtomicU64::new(0),
        budget_rejects: AtomicU64::new(0),
        sessions_evicted: AtomicU64::new(0),
        chunk_nacks: AtomicU64::new(0),
        gro_segments_split: AtomicU64::new(0),
        cmsg_decode_errors: AtomicU64::new(0),
        rx_timestamp_kernel: AtomicU64::new(0),
        rx_timestamp_user: AtomicU64::new(0),
        mem_used: AtomicUsize::new(0),
        mem_peak: AtomicUsize::new(0),
        tombstones: Mutex::new(Tombstones::default()),
        done: AtomicBool::new(false),
        stop,
        waker,
        c: ServeCounters::new(cfg.metrics.as_deref()),
    };

    // One readiness poller shared by every drain thread: they all park
    // in epoll_wait on the same epoll fd. If the epoll backend cannot
    // come up (forced-mode configs were validated in `start_server`),
    // fall back to the timeout loop — readiness is an optimization, the
    // socket read timeout keeps the loop correct without it.
    let poller = Poller::new(socket, cfg.poll, waker).unwrap_or_else(|_| Poller::timeout());

    std::thread::scope(|s| {
        for _ in 1..cfg.recv_threads.max(1) {
            s.spawn(|| drain_loop(&shared, &poller, false));
        }
        // The main thread drains too, and owns the idle watchdog.
        drain_loop(&shared, &poller, true);
        // Workers notice `done`/`stop` within one poll interval (the
        // flag transitions also kick the waker); the scope joins them
        // before the registry is torn down.
    });

    let metrics = cfg.metrics.as_deref();
    let Shared {
        shards,
        outcomes,
        rejected,
        syns_rejected,
        budget_rejects,
        sessions_evicted,
        chunk_nacks,
        gro_segments_split,
        cmsg_decode_errors,
        rx_timestamp_kernel,
        rx_timestamp_user,
        mem_peak,
        ..
    } = shared;
    let rejected = rejected.into_inner();
    let mut outcomes = outcomes.into_inner().expect("outcomes lock");
    // Anything still open when the loop ends is finalized as stopped,
    // in id order for determinism.
    let mut open: Vec<(u32, SessionState)> = shards
        .into_iter()
        .flat_map(|m| m.into_inner().expect("shard lock"))
        .collect();
    open.sort_by_key(|&(id, _)| id);
    for (id, state) in open {
        outcomes.push(state.into_outcome(id, SessionEnd::Stopped, rejected, metrics));
    }

    ServerReport {
        sessions: outcomes,
        rejected,
        syns_rejected: syns_rejected.into_inner(),
        budget_rejects: budget_rejects.into_inner(),
        sessions_evicted: sessions_evicted.into_inner(),
        chunk_nacks: chunk_nacks.into_inner(),
        mem_peak_bytes: mem_peak.into_inner(),
        gro_segments_split: gro_segments_split.into_inner(),
        cmsg_decode_errors: cmsg_decode_errors.into_inner(),
        rx_timestamp_kernel: rx_timestamp_kernel.into_inner(),
        rx_timestamp_user_fallback: rx_timestamp_user.into_inner(),
    }
}

/// One drain thread: park on readiness (epoll where available), batched
/// receive (one syscall per batch where the platform allows), one
/// timestamp per batch, probe fast path into the sharded registry,
/// control messages on the slow path. All reply encoding goes through a
/// reused stack buffer — the steady-state probe path allocates nothing
/// per datagram.
fn drain_loop(shared: &Shared<'_>, poller: &Poller, run_watchdog: bool) {
    let mut ring = RecvBatch::new(DEFAULT_RECV_BATCH, &shared.cfg.provider);
    let mut scratch = [0u8; MAX_CONTROL_BYTES];
    let mut next_sweep: Option<Duration> = None;
    let mut next_estimate: Option<Duration> = None;
    while !shared.stop.load(Ordering::Relaxed) && !shared.done.load(Ordering::Relaxed) {
        if run_watchdog {
            maybe_sweep(shared, &mut next_sweep);
            maybe_estimate(shared, &mut next_estimate);
            if shared.done.load(Ordering::Relaxed) {
                break;
            }
        }
        // Under epoll, park until a datagram arrives, the waker fires
        // (stop / single-session completion), or the next watchdog /
        // estimate-snapshot deadline — idle sessions cost zero wakeups.
        // The timeout backend reports ready immediately and lets the
        // socket's own read timeout pace the loop (the pre-epoll shape).
        if poller.is_epoll() {
            let now = shared.clock.now();
            let horizon = now + EPOLL_MAX_PARK;
            let mut due = horizon;
            if run_watchdog {
                if let Some(d) = next_sweep {
                    due = due.min(d);
                }
                if let Some(d) = next_estimate {
                    due = due.min(d);
                }
            }
            match poller.wait(due.saturating_sub(now), shared.waker) {
                Wait::Ready => {}
                Wait::TimedOut | Wait::Woken => continue,
            }
        }
        let n = match ring.recv(shared.socket) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => {
                // Hard socket error: bring the whole server down (open
                // sessions become `Stopped` outcomes), as the
                // single-loop implementation did.
                shared.done.store(true, Ordering::Relaxed);
                shared.waker.wake();
                break;
            }
        };
        // One receive timestamp per batch: every datagram a single
        // recvmmsg return delivered shares it, unless the backend
        // stamped the datagram itself (the fault net stamps every
        // delivery exactly, which is what makes same-seed runs
        // byte-identical). The fallback path's batches are single
        // datagrams, so it degenerates to the old per-datagram stamping.
        let batch_abs = shared.clock.now();
        process_batch(shared, &ring, n, batch_abs, &mut scratch);
    }
    add(&shared.c.recv_syscalls, ring.syscalls());
    add(&shared.c.recv_datagrams, ring.datagrams());
    add(&shared.c.gro_split, ring.gro_segments_split());
    add(&shared.c.cmsg_errors, ring.cmsg_decode_errors());
    shared
        .gro_segments_split
        .fetch_add(ring.gro_segments_split(), Ordering::Relaxed);
    shared
        .cmsg_decode_errors
        .fetch_add(ring.cmsg_decode_errors(), Ordering::Relaxed);
}

/// The deadline-scheduled watchdog. Reaps sessions idle past the
/// configured timeout without stopping the loop (single mode: that one
/// session ending ends the loop, preserving the original watchdog
/// semantics), re-settles per-session memory accounting (ingest growth
/// since the last sweep), and — under [`PressurePolicy::EvictIdle`] —
/// evicts until back under the global budget.
///
/// `next_sweep` is the absolute clock time before which nothing can
/// possibly expire: the minimum session deadline at the last sweep. At
/// fleet scale this is the difference between one registry walk per
/// deadline and one per 25 ms poll tick; it is also exactly how long
/// the epoll loop may park.
fn maybe_sweep(shared: &Shared<'_>, next_sweep: &mut Option<Duration>) {
    let now = shared.clock.now();
    if let Some(due) = *next_sweep {
        if now < due {
            return;
        }
    }
    let timeout = shared.cfg.idle_timeout;
    let mut earliest: Option<Duration> = None;
    for shard in &shared.shards {
        let mut sessions = shard.lock().expect("shard lock");
        if let Some(timeout) = timeout {
            let expired: Vec<u32> = sessions
                .iter()
                .filter(|(_, s)| now.saturating_sub(s.last_activity) >= timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let state = sessions.remove(&id).expect("expired session present");
                shared.end_session(id, state, SessionEnd::IdleTimeout);
                inc(&shared.c.idle_reaped);
            }
        }
        for state in sessions.values_mut() {
            shared.settle_mem(state);
            if let Some(timeout) = timeout {
                let deadline = state.last_activity + timeout;
                earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
            }
        }
    }
    // Probe ingest can grow sessions past the global budget between
    // sweeps (admission only gates SYNs); under the eviction policy,
    // shed the longest-idle sessions until back under.
    if let (Some(global), PressurePolicy::EvictIdle) =
        (shared.cfg.global_budget_bytes, shared.cfg.on_pressure)
    {
        while shared.mem_used.load(Ordering::Relaxed) > global {
            if !shared.evict_oldest_idle() {
                break;
            }
        }
    }
    let fallback = now + timeout.unwrap_or(SWEEP_FALLBACK);
    *next_sweep = Some(earliest.unwrap_or(fallback).max(now + MIN_SWEEP_GAP));
}

/// Deadline-scheduled fleet-estimate snapshot (watchdog thread only):
/// merge every live session's online counters and publish the derived
/// §5 estimates as `fleet_*` gauges in the metrics registry. Derived
/// estimates that do not exist yet (`None`) leave their gauge at its
/// last value rather than publishing a NaN.
fn maybe_estimate(shared: &Shared<'_>, next: &mut Option<Duration>) {
    let Some(interval) = shared.cfg.estimate_interval else {
        return;
    };
    let Some(metrics) = shared.metrics() else {
        return;
    };
    let now = shared.clock.now();
    if let Some(due) = *next {
        if now < due {
            return;
        }
    }
    *next = Some(now + interval.max(MIN_SWEEP_GAP));
    let (sessions_merged, est, sketch) = shared.fleet_estimate();
    metrics
        .gauge("fleet_sessions")
        .set(f64::from(sessions_merged));
    metrics
        .gauge("fleet_outcomes_malformed")
        .set(est.outcomes_malformed as f64);
    let derived = [
        ("fleet_frequency", est.frequency()),
        ("fleet_duration_slots_basic", est.duration_slots_basic()),
        (
            "fleet_duration_slots_improved",
            est.duration_slots_improved(),
        ),
        ("fleet_duration_slots_pooled", est.duration_slots_pooled()),
        ("fleet_episode_rate_per_slot", est.episode_rate_per_slot()),
        ("fleet_delay_p50_secs", sketch.quantile(0.5)),
        ("fleet_delay_p99_secs", sketch.quantile(0.99)),
    ];
    for (name, value) in derived {
        if let Some(v) = value {
            metrics.gauge(name).set(v);
        }
    }
    metrics.counter("estimate_snapshots").inc();
}

enum Ingest {
    Accepted,
    Duplicate,
    Rejected,
    /// Dropped because storing it would push the session past its
    /// memory budget (counted as rejected, plus its own counter).
    OverBudget,
}

fn process_batch(
    shared: &Shared<'_>,
    ring: &RecvBatch,
    n: usize,
    batch_abs: Duration,
    scratch: &mut [u8; MAX_CONTROL_BYTES],
) {
    // Hot counters accumulate across the batch and land as one atomic
    // add each, instead of one per datagram.
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut duplicates = 0u64;
    let mut truncated = 0u64;
    let mut over_budget = 0u64;
    let mut ts_kernel = 0u64;
    let mut ts_user = 0u64;
    for i in 0..n {
        // A clipped datagram's payload is incomplete: decoding it would
        // either fail noisily or, worse, parse a valid-looking prefix
        // into garbage accounting. Drop it and make the drop countable.
        if ring.is_truncated(i) {
            truncated += 1;
            continue;
        }
        let (abs, source) = ring.stamp(i, batch_abs);
        match source {
            TimestampSource::Kernel => ts_kernel += 1,
            TimestampSource::User => ts_user += 1,
        }
        let rel = abs.saturating_sub(shared.t0);
        let (data, src) = ring.datagram(i);
        if let Ok(h) = ProbeHeader::decode(data) {
            match ingest_probe(shared, &h, rel, abs, source) {
                Ingest::Accepted => accepted += 1,
                Ingest::Duplicate => duplicates += 1,
                Ingest::Rejected => rejected += 1,
                Ingest::OverBudget => {
                    rejected += 1;
                    over_budget += 1;
                }
            }
        } else if let Ok(msg) = ControlMessage::decode(data) {
            rejected += u64::from(!handle_control(shared, msg, src, abs, scratch));
        } else {
            rejected += 1;
        }
    }
    add(&shared.c.packets, accepted);
    add(&shared.c.dup, duplicates);
    add(&shared.c.truncated, truncated);
    add(&shared.c.over_budget, over_budget);
    add(&shared.c.ts_kernel, ts_kernel);
    add(&shared.c.ts_user, ts_user);
    if ts_kernel > 0 {
        shared
            .rx_timestamp_kernel
            .fetch_add(ts_kernel, Ordering::Relaxed);
    }
    if ts_user > 0 {
        shared
            .rx_timestamp_user
            .fetch_add(ts_user, Ordering::Relaxed);
    }
    if rejected > 0 {
        shared.rejected.fetch_add(rejected, Ordering::Relaxed);
        add(&shared.c.rejected, rejected);
    }
}

/// The probe fast path: one shard lock, the shared [`SessionState::ingest`]
/// accounting, no socket writes, no allocation.
fn ingest_probe(
    shared: &Shared<'_>,
    h: &ProbeHeader,
    rel: Duration,
    abs: Duration,
    source: TimestampSource,
) -> Ingest {
    let mut sessions = shared.shard(h.session).lock().expect("shard lock");
    // Probes open the session only in single mode (the legacy open-loop
    // tool has no handshake); under `Any` the SYN is the sole door in.
    let state = match shared.single_id {
        Some(id) if h.session == id => Some(sessions.entry(id).or_insert_with(|| {
            shared.active.fetch_add(1, Ordering::Relaxed);
            inc(&shared.c.opened);
            SessionState::new(id, shared.metrics(), abs)
        })),
        Some(_) => None,
        None => sessions.get_mut(&h.session),
    };
    let Some(state) = state else {
        return Ingest::Rejected;
    };
    state.last_activity = abs;
    // Per-session budget on the hot path: a sender that announced a
    // small run and then floods must not grow the maps without bound.
    // Capacity arithmetic only — no atomics, no allocation; the global
    // tally catches up at the next watchdog sweep.
    if state.mem_bytes() >= shared.cfg.session_budget_bytes {
        return Ingest::OverBudget;
    }
    if state.ingest(h, rel, source) {
        inc(&state.m_packets);
        Ingest::Accepted
    } else {
        inc(&state.m_duplicates);
        Ingest::Duplicate
    }
}

/// Encode a reply into the reused scratch buffer and send it (replies
/// are best-effort, like every control datagram).
fn send_reply(
    socket: &Socket,
    msg: &ControlMessage,
    src: SocketAddr,
    scratch: &mut [u8; MAX_CONTROL_BYTES],
) {
    let n = msg.encode_into(scratch);
    let _ = socket.send_to(&scratch[..n], src);
}

/// The control slow path. Returns `false` when the datagram is counted
/// as rejected (control plane off, or wrong session in single mode).
fn handle_control(
    shared: &Shared<'_>,
    msg: ControlMessage,
    src: SocketAddr,
    abs: Duration,
    scratch: &mut [u8; MAX_CONTROL_BYTES],
) -> bool {
    let cfg = shared.cfg;
    if !cfg.serve_control || matches!((shared.single_id, msg.session()), (Some(id), s) if s != id) {
        return false;
    }
    inc(&shared.c.ctrl);
    let id = msg.session();
    match msg {
        ControlMessage::Syn { session, params } => {
            // An existing session's SYN retransmit is refreshed and
            // re-acked (idempotent) under its own shard lock, without
            // touching admission.
            {
                let mut sessions = shared.shard(session).lock().expect("shard lock");
                if let Some(state) = sessions.get_mut(&session) {
                    state.last_activity = abs;
                    state.apply_handshake(params, cfg.session_budget_bytes);
                    shared.settle_mem(state);
                    drop(sessions);
                    send_reply(
                        shared.socket,
                        &ControlMessage::SynAck { session },
                        src,
                        scratch,
                    );
                    return true;
                }
            }
            // New session: admission below the registry cap, then below
            // the global memory budget — both checked with NO shard
            // lock held, so the eviction path can walk the shards
            // without nesting locks. The budget charge uses the SYN's
            // budget-capped projected reservation, so a fleet of
            // hostile SYNs cannot over-commit memory that is only
            // allocated a moment later.
            let projected = SessionState::projected_bytes(&params, cfg.session_budget_bytes);
            if shared.single_id.is_none() {
                if !shared.try_admit() {
                    shared.refuse_syn(session, RejectReason::Capacity, src, scratch);
                    return true;
                }
                if !shared.try_charge(projected) {
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    shared.budget_rejects.fetch_add(1, Ordering::Relaxed);
                    inc(&shared.c.budget_rejected);
                    shared.refuse_syn(session, RejectReason::Budget, src, scratch);
                    return true;
                }
            } else {
                // Single mode: probes and heartbeats can open the one
                // session too; no admission beyond the id filter above.
                shared.mem_used.fetch_add(projected, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::Relaxed);
            }
            let mut sessions = shared.shard(session).lock().expect("shard lock");
            match sessions.entry(session) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    // Lost a race with this same session's SYN on
                    // another drain thread: hand back the slot and the
                    // charge, then refresh like a retransmit.
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    shared.mem_used.fetch_sub(projected, Ordering::Relaxed);
                    let state = e.get_mut();
                    state.last_activity = abs;
                    state.apply_handshake(params, cfg.session_budget_bytes);
                    shared.settle_mem(state);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    inc(&shared.c.opened);
                    let state = e.insert(SessionState::new(session, shared.metrics(), abs));
                    // The SYN announces the run size: pre-size the
                    // accumulation maps so the hot path never rehashes
                    // mid-run.
                    state.apply_handshake(params, cfg.session_budget_bytes);
                    // The admission charge holds `projected`; settle to
                    // the actual capacity-based figure.
                    state.accounted_bytes = projected;
                    shared.settle_mem(state);
                }
            }
            drop(sessions);
            shared.untombstone(session);
            send_reply(
                shared.socket,
                &ControlMessage::SynAck { session },
                src,
                scratch,
            );
        }
        ControlMessage::Heartbeat { session, seq } => {
            // In single mode a heartbeat may arrive before any probe
            // and still opens the session (arming the watchdog, as
            // the pre-registry receiver did). Under `Any` a
            // heartbeat for an unknown session is a stale
            // retransmit from a reaped session: ignoring it (no
            // ack) lets the sender's own watchdog conclude death.
            let mut sessions = shared.shard(id).lock().expect("shard lock");
            let state = match shared.single_id {
                Some(sid) => Some(sessions.entry(sid).or_insert_with(|| {
                    shared.active.fetch_add(1, Ordering::Relaxed);
                    inc(&shared.c.opened);
                    SessionState::new(sid, shared.metrics(), abs)
                })),
                None => sessions.get_mut(&session),
            };
            let Some(state) = state else {
                drop(sessions);
                shared.reply_if_evicted(session, src, scratch);
                inc(&shared.c.stale);
                return true;
            };
            state.last_activity = abs;
            send_reply(
                shared.socket,
                &ControlMessage::HeartbeatAck { session, seq },
                src,
                scratch,
            );
        }
        ControlMessage::Fin { session, .. } => {
            let mut sessions = shared.shard(id).lock().expect("shard lock");
            let state = match shared.single_id {
                Some(sid) => Some(sessions.entry(sid).or_insert_with(|| {
                    shared.active.fetch_add(1, Ordering::Relaxed);
                    inc(&shared.c.opened);
                    SessionState::new(sid, shared.metrics(), abs)
                })),
                None => sessions.get_mut(&session),
            };
            let Some(state) = state else {
                drop(sessions);
                shared.reply_if_evicted(session, src, scratch);
                inc(&shared.c.stale);
                return true;
            };
            state.last_activity = abs;
            // Finalize once; FIN retransmits re-serve the same
            // snapshot so retrieval is idempotent.
            let rejected = shared.rejected.load(Ordering::Relaxed);
            let finalized = state.finalize(rejected, shared.metrics());
            let ack = ControlMessage::FinAck {
                session,
                total_chunks: finalized.total_chunks,
                summary: finalized.summary,
            };
            // Finalization just materialized the record snapshot:
            // settle it against the global tally.
            shared.settle_mem(state);
            send_reply(shared.socket, &ack, src, scratch);
        }
        ControlMessage::ReportRequest { chunk, .. } => {
            let mut sessions = shared.shard(id).lock().expect("shard lock");
            let Some(state) = sessions.get_mut(&id) else {
                drop(sessions);
                shared.reply_if_evicted(id, src, scratch);
                inc(&shared.c.stale);
                return true;
            };
            state.last_activity = abs;
            // Every request from a live session gets a deterministic
            // reply. In-range chunks are served straight from the
            // snapshot's record slice ([`chunk_window`]): no clone,
            // byte-identical on every re-request. Out-of-range chunks
            // (sender bug, corrupted index) get an *empty* chunk
            // echoing the true `total_chunks`; requests before any FIN
            // get one with `total_chunks: 0`. Silence in either case
            // would leave the sender burning its full retry/backoff
            // schedule per chunk before concluding anything.
            let (total, window) = match &state.finalized {
                Some(f) if chunk < f.total_chunks => {
                    (f.total_chunks, chunk_window(&f.records, chunk))
                }
                Some(f) => {
                    shared.chunk_nacks.fetch_add(1, Ordering::Relaxed);
                    inc(&shared.c.chunk_nacks);
                    (f.total_chunks, &[][..])
                }
                None => {
                    shared.chunk_nacks.fetch_add(1, Ordering::Relaxed);
                    inc(&shared.c.chunk_nacks);
                    (0, &[][..])
                }
            };
            let n = encode_report_chunk_into(id, chunk, total, window, scratch);
            let _ = shared.socket.send_to(&scratch[..n], src);
        }
        ControlMessage::ReportAck { chunk, .. } => {
            let mut sessions = shared.shard(id).lock().expect("shard lock");
            let mut stale = false;
            let complete = match sessions.get_mut(&id) {
                Some(state) => {
                    state.last_activity = abs;
                    state
                        .finalized
                        .as_ref()
                        .is_some_and(|f| chunk >= f.total_chunks)
                }
                None => {
                    // Duplicate closing ack to an already-reaped
                    // session.
                    stale = true;
                    false
                }
            };
            if complete {
                // The sender holds the full report: reap the
                // session. Other sessions keep flowing.
                let state = sessions.remove(&id).expect("completed session present");
                drop(sessions);
                shared.end_session(id, state, SessionEnd::Completed);
                inc(&shared.c.completed);
            } else if stale {
                drop(sessions);
                shared.reply_if_evicted(id, src, scratch);
                inc(&shared.c.stale);
            }
        }
        ControlMessage::EstimateRequest { session, scope } => match scope {
            EstimateScope::Session => {
                let mut sessions = shared.shard(id).lock().expect("shard lock");
                let Some(state) = sessions.get_mut(&id) else {
                    drop(sessions);
                    shared.reply_if_evicted(id, src, scratch);
                    inc(&shared.c.stale);
                    return true;
                };
                state.last_activity = abs;
                let reply = estimate_reply(session, scope, 1, &state.online, &state.delay_sketch);
                drop(sessions);
                send_reply(shared.socket, &reply, src, scratch);
            }
            EstimateScope::Fleet => {
                let (sessions_merged, est, sketch) = shared.fleet_estimate();
                let reply = estimate_reply(session, scope, sessions_merged, &est, &sketch);
                send_reply(shared.socket, &reply, src, scratch);
            }
            // A scope from a newer peer: stay silent rather than answer
            // with the wrong population and let it mis-merge.
            EstimateScope::Other(_) => {}
        },
        // Receiver-emitted messages arriving here are stray
        // reflections; ignore them.
        ControlMessage::SynAck { .. }
        | ControlMessage::SynNack { .. }
        | ControlMessage::HeartbeatAck { .. }
        | ControlMessage::FinAck { .. }
        | ControlMessage::ReportChunk { .. }
        | ControlMessage::EstimateReply { .. } => {}
    }
    true
}

/// Build an [`ControlMessage::EstimateReply`] from online state: raw
/// mergeable counters plus the sketch's deterministic bucket-edge
/// quantiles (`0.0` when empty — see [`DelaySummary`]).
fn estimate_reply(
    session: u32,
    scope: EstimateScope,
    sessions: u32,
    est: &Estimates,
    sketch: &DelaySketch,
) -> ControlMessage {
    ControlMessage::EstimateReply {
        session,
        scope,
        sessions,
        counters: estimate_counters(est),
        delay: DelaySummary {
            samples: sketch.count(),
            p50_secs: sketch.quantile(0.5).unwrap_or(0.0),
            p99_secs: sketch.quantile(0.99).unwrap_or(0.0),
        },
    }
}

/// The outcome the report-side pipeline would currently derive for one
/// experiment from loss alone.
///
/// Mirrors the FIN path exactly: a probe is congested iff its clamped
/// arrival count is short (`(seen.min(probe_len)) < probe_len`, the
/// same clamp [`apply_baseline`] writes into `ReportRecord::received`),
/// and an experiment only yields an outcome while its slots are
/// contiguous and 2 or 3 wide (the `detector::assemble` grouping rule).
/// Anything else — one slot so far, a gap, a hostile slot spray — is
/// `None`, and whatever was previously folded gets retracted.
fn derive_outcome(
    probes: &HashMap<(u64, u64), ProbeArrivals>,
    exp: u64,
    lo: u64,
    hi: u64,
    slots: u8,
) -> Option<Outcome> {
    let span = (hi - lo).saturating_add(1);
    if !(slots == 2 || slots == 3) || span != u64::from(slots) {
        return None;
    }
    let mut states = [false; 3];
    for (k, s) in states.iter_mut().take(usize::from(slots)).enumerate() {
        let p = &probes[&(exp, lo + k as u64)];
        *s = (p.seen_idx.len() as u8).min(p.probe_len) < p.probe_len;
    }
    Some(Outcome {
        id: exp,
        start_slot: lo,
        probes: slots,
        states,
    })
}

/// Assemble a session's final log: fit the clock baseline over the whole
/// session and convert raw delays into queueing delays (§7). A running
/// minimum would bias early records upward; min-subtraction alone would
/// let clock skew masquerade as queueing delay on long runs.
#[allow(clippy::too_many_arguments)]
fn build_log(
    raw_delays: &[(u64, u64, f64, i64)],
    probes: &HashMap<(u64, u64), ProbeArrivals>,
    packets: u64,
    rejected: u64,
    duplicates: u64,
    min_raw_delay_ns: Option<i64>,
    handshake: Option<SessionParams>,
    metrics: Option<&Registry>,
) -> ReceiverLog {
    let points: Vec<(f64, f64)> = raw_delays
        .iter()
        .map(|&(_, _, t, raw)| (t, raw as f64 / 1e9))
        .collect();
    let baseline = crate::skew::fit_baseline(&points).unwrap_or(crate::skew::Baseline {
        offset: 0.0,
        slope: 0.0,
    });

    let mut log = ReceiverLog {
        packets,
        rejected,
        duplicates,
        min_raw_delay_ns,
        handshake,
        ..Default::default()
    };
    let qdelay_hist = metrics.map(|m| m.histogram("qdelay_secs"));
    apply_baseline(
        &baseline,
        raw_delays,
        probes,
        &mut log,
        qdelay_hist.as_deref(),
    );
    log
}

/// Convert raw delays into per-probe arrival records under `baseline`.
fn apply_baseline(
    baseline: &crate::skew::Baseline,
    raw_delays: &[(u64, u64, f64, i64)],
    probes: &HashMap<(u64, u64), ProbeArrivals>,
    log: &mut ReceiverLog,
    qdelay_hist: Option<&badabing_metrics::Histogram>,
) {
    for &(exp, slot, t, raw) in raw_delays {
        let q = baseline.correct(t, raw as f64 / 1e9);
        if let Some(h) = qdelay_hist {
            h.record_secs(q);
        }
        let state = &probes[&(exp, slot)];
        // Seed the max from the probe's first arrival: folding via
        // f64::max from a 0.0 default would report
        // `qdelay_max_secs = 0.0 > qdelay_last_secs` for a probe whose
        // baseline-corrected residuals are all slightly negative.
        let rec = log.arrivals.entry((exp, slot)).or_insert(ArrivalRecord {
            qdelay_max_secs: f64::NEG_INFINITY,
            ..Default::default()
        });
        // Clamp: even a malformed sender reusing (seq, idx) pairs across
        // more datagrams than the probe announces cannot push `received`
        // past the probe length.
        rec.received = (state.seen_idx.len() as u8).min(state.probe_len);
        rec.duplicates = state.duplicates;
        rec.qdelay_last_secs = q;
        rec.qdelay_max_secs = rec.qdelay_max_secs.max(q);
        rec.kernel_stamped = state.kernel_stamped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::time::Instant;

    fn local0() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn send_header(sock: &UdpSocket, target: SocketAddr, h: &ProbeHeader, bytes: usize) {
        sock.send_to(&h.encode(bytes), target).unwrap();
    }

    fn settle() {
        std::thread::sleep(Duration::from_millis(120));
    }

    #[test]
    fn accepts_session_packets_and_rejects_others() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 42)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        let good = ProbeHeader {
            session: 42,
            experiment: 1,
            slot: 10,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 2,
        };
        let bad_session = ProbeHeader { session: 9, ..good };
        send_header(&sock, target, &good, 100);
        send_header(&sock, target, &bad_session, 100);
        sock.send_to(b"garbage", target).unwrap();
        settle();
        let log = handle.stop();
        assert_eq!(log.packets, 1);
        assert_eq!(log.rejected, 2);
        assert_eq!(log.duplicates, 0);
        assert_eq!(log.arrivals.len(), 1);
        assert_eq!(log.arrivals[&(1, 10)].received, 1);
    }

    #[test]
    fn offset_removal_yields_relative_queueing_delay() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 1)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Two packets with send timestamps from an unrelated clock: the
        // second "left" 50 ms earlier than its arrival spacing implies,
        // i.e. it queued ~50 ms longer.
        let base = 1_000_000_000_000u64; // arbitrary foreign clock
        let h1 = ProbeHeader {
            session: 1,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: base,
            idx: 0,
            probe_len: 1,
        };
        let h2 = ProbeHeader {
            experiment: 1,
            slot: 5,
            seq: 1,
            send_ns: base,
            ..h1
        };
        send_header(&sock, target, &h1, 100);
        std::thread::sleep(Duration::from_millis(50));
        send_header(&sock, target, &h2, 100);
        settle();
        let log = handle.stop();
        let q1 = log.arrivals[&(0, 0)].qdelay_max_secs;
        let q2 = log.arrivals[&(1, 5)].qdelay_max_secs;
        assert!(q1 < 0.01, "first packet defines the baseline, got {q1}");
        assert!(
            (q2 - 0.05).abs() < 0.03,
            "second packet ~50 ms of queueing, got {q2}"
        );
    }

    #[test]
    fn skewed_sender_clock_is_corrected() {
        // A sender whose clock runs fast by 1% (exaggerated for a 2 s
        // test; real skews are ppm over hours): send_ns grows 1.01× real
        // time. Without skew removal the early packets would read tens
        // of ms of phantom queueing.
        let handle = start_receiver(ReceiverConfig::new(local0(), 5)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        let start = Instant::now();
        for i in 0..40u64 {
            let real_ns = start.elapsed().as_nanos() as u64;
            let skewed_ns = (real_ns as f64 * 1.01) as u64;
            let h = ProbeHeader {
                session: 5,
                experiment: i,
                slot: i,
                seq: i,
                send_ns: skewed_ns,
                idx: 0,
                probe_len: 1,
            };
            send_header(&sock, target, &h, 64);
            std::thread::sleep(Duration::from_millis(50));
        }
        settle();
        let log = handle.stop();
        assert_eq!(log.packets, 40);
        // Every packet is idle; after baseline removal all queueing
        // delays must be small. (1% over 2 s = 20 ms of drift, so the
        // naive min-subtraction would report up to ~20 ms on one end.)
        let max_q = log
            .arrivals
            .values()
            .map(|r| r.qdelay_max_secs)
            .fold(0.0f64, f64::max);
        assert!(
            max_q < 0.008,
            "residual queueing delay {max_q} after skew removal"
        );
    }

    #[test]
    fn multi_packet_probe_aggregates() {
        let handle = start_receiver(ReceiverConfig::new(local0(), 3)).unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        for idx in 0..3u8 {
            let h = ProbeHeader {
                session: 3,
                experiment: 8,
                slot: 2,
                seq: idx as u64,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            send_header(&sock, target, &h, 64);
        }
        settle();
        let log = handle.stop();
        assert_eq!(log.arrivals[&(8, 2)].received, 3);
    }

    #[test]
    fn duplicates_are_counted_but_never_inflate_arrivals() {
        let metrics = Arc::new(Registry::new("recv-dup-test"));
        let handle = start_receiver(ReceiverConfig {
            metrics: Some(metrics.clone()),
            ..ReceiverConfig::new(local0(), 6)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // A 3-packet probe that loses packet idx 2 but has idx 0
        // duplicated three times: without dedup the count would read 4
        // (debug-overflow territory on a u8 under longer floods) and the
        // lost packet would be masked.
        for (seq, idx) in [(0u64, 0u8), (0, 0), (0, 0), (0, 0), (1, 1)] {
            let h = ProbeHeader {
                session: 6,
                experiment: 4,
                slot: 9,
                seq,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            send_header(&sock, target, &h, 64);
        }
        settle();
        let log = handle.stop();
        let rec = log.arrivals[&(4, 9)];
        assert_eq!(rec.received, 2, "one packet genuinely lost");
        assert_eq!(rec.duplicates, 3);
        assert_eq!(log.packets, 2);
        assert_eq!(log.duplicates, 3);
        assert_eq!(metrics.counter("duplicates").get(), 3);
        // Per-session instruments ride alongside the server-wide ones.
        assert_eq!(metrics.counter("session_6_duplicates").get(), 3);
        assert_eq!(metrics.counter("session_6_packets_accepted").get(), 2);
    }

    #[test]
    fn watchdog_exits_after_idle_timeout() {
        let handle = start_receiver(ReceiverConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ReceiverConfig::new(local0(), 2)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Watchdog arms only once a session starts.
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            !handle.is_finished(),
            "watchdog must not fire before any activity"
        );
        let h = ProbeHeader {
            session: 2,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 1,
        };
        send_header(&sock, target, &h, 64);
        let started = Instant::now();
        let log = handle.join();
        assert!(
            started.elapsed() >= Duration::from_millis(140),
            "exited before the idle timeout"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "watchdog too slow"
        );
        assert_eq!(log.packets, 1);
    }

    #[test]
    fn report_roundtrips_through_records() {
        let mut log = ReceiverLog {
            packets: 5,
            duplicates: 1,
            ..Default::default()
        };
        log.arrivals.insert(
            (3, 7),
            ArrivalRecord {
                received: 2,
                duplicates: 1,
                qdelay_last_secs: 0.01,
                qdelay_max_secs: 0.02,
                kernel_stamped: true,
            },
        );
        log.arrivals.insert(
            (4, 1),
            ArrivalRecord {
                received: 3,
                duplicates: 0,
                qdelay_last_secs: 0.0,
                qdelay_max_secs: 0.0,
                kernel_stamped: false,
            },
        );
        let records = log.to_records();
        assert_eq!(records.len(), 2);
        assert!(records[0].experiment < records[1].experiment);
        let back = ReceiverLog::from_report(log.summary(), &records);
        assert_eq!(back.packets, 5);
        assert_eq!(back.duplicates, 1);
        assert_eq!(back.arrivals[&(3, 7)].received, 2);
        assert_eq!(back.arrivals[&(3, 7)].duplicates, 1);
        assert!(
            back.arrivals[&(3, 7)].kernel_stamped,
            "kernel-stamped flag survives the wire roundtrip"
        );
        assert!(!back.arrivals[&(4, 1)].kernel_stamped);
    }

    #[test]
    fn qdelay_max_is_seeded_from_the_first_arrival() {
        // Regression: the fold used to start from the ArrivalRecord
        // default of 0.0, so a probe whose baseline-corrected residuals
        // were all slightly negative (the lower-envelope fit touches the
        // samples only to within numerical error) reported
        // qdelay_max_secs = 0.0 > qdelay_last_secs — an inconsistent
        // record.
        let baseline = crate::skew::Baseline {
            offset: 0.005, // sits 5 ms above this probe's raw delays
            slope: 0.0,
        };
        // Two arrivals of one probe: raw delays 4.8 ms and 4.9 ms, so
        // corrected residuals are -0.2 ms then -0.1 ms.
        let raw_delays = vec![(0u64, 0u64, 0.0, 4_800_000i64), (0, 0, 0.1, 4_900_000)];
        let mut probes = HashMap::new();
        probes.insert(
            (0u64, 0u64),
            ProbeArrivals {
                seen_idx: [0u8, 1].into_iter().collect(),
                probe_len: 2,
                duplicates: 0,
                kernel_stamped: true,
            },
        );
        let mut log = ReceiverLog::default();
        apply_baseline(&baseline, &raw_delays, &probes, &mut log, None);
        let rec = log.arrivals[&(0, 0)];
        assert!(
            (rec.qdelay_last_secs - (-1e-4)).abs() < 1e-12,
            "last residual, got {}",
            rec.qdelay_last_secs
        );
        assert!(
            (rec.qdelay_max_secs - (-1e-4)).abs() < 1e-12,
            "max must be the larger *observed* residual, got {}",
            rec.qdelay_max_secs
        );
        assert!(
            rec.qdelay_max_secs >= rec.qdelay_last_secs,
            "record must be internally consistent"
        );
        assert!(
            rec.qdelay_max_secs < 0.0,
            "an all-negative probe must not report a phantom 0.0 max"
        );
    }

    /// A synthetic arrival stream: multi-packet probes, one duplicated
    /// datagram, one lost packet, non-monotone send timestamps, and a
    /// deterministic mix of kernel- and userspace-stamped arrivals —
    /// enough structure to shake out any path-dependent accounting.
    fn synthetic_arrivals() -> Vec<(ProbeHeader, Duration, TimestampSource)> {
        let mut out = Vec::new();
        let mut seq = 0u64;
        for exp in 0..40u64 {
            for idx in 0..3u8 {
                if exp % 7 == 3 && idx == 2 {
                    // Lost packet: never arrives.
                    seq += 1;
                    continue;
                }
                let h = ProbeHeader {
                    session: 11,
                    experiment: exp,
                    slot: exp * 5 + u64::from(idx),
                    seq,
                    send_ns: 1_000_000 * exp + 10_000 * u64::from(idx),
                    idx,
                    probe_len: 3,
                };
                let now = Duration::from_nanos(1_000_000 * exp + 40_000 * u64::from(idx) + 7_000);
                // Some arrivals fall back to userspace stamps (queued
                // before SO_TIMESTAMPING engaged, or stamping off).
                let source = if exp % 5 == 0 && idx == 1 {
                    TimestampSource::User
                } else {
                    TimestampSource::Kernel
                };
                out.push((h, now, source));
                if exp % 11 == 5 && idx == 0 {
                    // Duplicated datagram.
                    out.push((h, now + Duration::from_nanos(500), source));
                }
                seq += 1;
            }
        }
        out
    }

    /// The differential contract: the same (header, timestamp, source)
    /// sequence must yield **byte-identical** report chunks however the
    /// syscall layer grouped it — one datagram at a time (fallback),
    /// recv-batch chunks (recvmmsg), or super-datagram-sized chunks
    /// (GRO splits). The I/O tiers differ only in grouping, never in
    /// accounting.
    #[test]
    fn batched_and_single_ingest_reports_are_byte_identical() {
        let arrivals = synthetic_arrivals();

        let ingest_in_chunks = |chunk: usize| -> SessionState {
            let mut state = SessionState::new(11, None, Duration::ZERO);
            for batch in arrivals.chunks(chunk) {
                for (h, now, source) in batch {
                    state.ingest(h, *now, *source);
                }
            }
            state
        };

        // "Fallback": one datagram per ingest call.
        let mut single = ingest_in_chunks(1);
        // "Batched": the same stream in chunks of a recv batch.
        let mut batched = ingest_in_chunks(DEFAULT_RECV_BATCH);
        // "GRO": the same stream grouped like split super-datagrams (up
        // to 64 segments surface from one slot, plus the short tail).
        let mut gro = ingest_in_chunks(65);

        let fs = single.finalize(3, None);
        let single_records = fs.records.clone();
        let single_total = fs.total_chunks;
        let single_summary = fs.summary;
        assert!(
            single_records.iter().any(|r| r.flags == 0)
                && single_records
                    .iter()
                    .any(|r| r.flags & RECORD_FLAG_KERNEL_STAMPED != 0),
            "stream must exercise both timestamp sources"
        );
        assert!(single_total > 1, "test must span multiple chunks");

        let mut buf_a = [0u8; MAX_CONTROL_BYTES];
        let mut buf_b = [0u8; MAX_CONTROL_BYTES];
        for (label, other) in [("batched", &mut batched), ("gro", &mut gro)] {
            let fb = other.finalize(3, None);
            assert_eq!(fb.records, single_records, "{label} records differ");
            assert_eq!(fb.total_chunks, single_total);
            assert_eq!(fb.summary, single_summary);
            for chunk in 0..single_total {
                let na = encode_report_chunk_into(
                    11,
                    chunk,
                    single_total,
                    chunk_window(&single_records, chunk),
                    &mut buf_a,
                );
                let nb = encode_report_chunk_into(
                    11,
                    chunk,
                    fb.total_chunks,
                    chunk_window(&fb.records, chunk),
                    &mut buf_b,
                );
                assert_eq!(
                    &buf_a[..na],
                    &buf_b[..nb],
                    "report chunk {chunk} differs between single and {label} groupings"
                );
            }
        }
    }

    /// Satellite regression: the SYN-carried run size must pre-size the
    /// per-session maps so the hot path never rehashes mid-run.
    #[test]
    fn syn_params_presize_session_maps() {
        let params = SessionParams {
            n_slots: 10_000,
            slot_ns: 5_000_000,
            probe_packets: 3,
            packet_bytes: 600,
            p: 0.3,
            improved: true,
        };
        let mut state = SessionState::new(1, None, Duration::ZERO);
        state.reserve_for(&params, DEFAULT_SESSION_BUDGET_BYTES);
        // ceil(10_000 * 0.3) experiments × 3 slots each = 9_000 probes,
        // × 3 packets = 27_000 packet-level entries.
        assert!(state.probes.capacity() >= 9_000, "probe map under-sized");
        assert!(state.seen.capacity() >= 27_000, "dedup set under-sized");
        assert!(
            state.raw_delays.capacity() >= 27_000,
            "raw-delay series under-sized"
        );
        // The cap keeps a hostile SYN from reserving unbounded memory.
        let hostile = SessionParams {
            n_slots: u64::MAX,
            p: 1.0,
            ..params
        };
        let mut state = SessionState::new(2, None, Duration::ZERO);
        state.reserve_for(&hostile, DEFAULT_SESSION_BUDGET_BYTES);
        assert!(state.probes.capacity() < (1 << 22), "reserve cap ignored");
    }

    /// Satellite regression (pre-fix failure): the probe-count cap
    /// alone is not enough — `probe_packets` multiplied the capped
    /// count back out, so a single hostile SYN with `probe_packets:
    /// 255` demanded a ~500M-entry (multi-GB) reservation for the
    /// dedup set and raw-delay series. Both per-packet containers must
    /// honor the hard cap and the per-session byte budget.
    #[test]
    fn hostile_syn_cannot_reserve_unbounded_packet_state() {
        let hostile = SessionParams {
            n_slots: u64::MAX,
            slot_ns: 5_000_000,
            probe_packets: 255,
            packet_bytes: 600,
            p: 1.0,
            improved: true,
        };
        let mut state = SessionState::new(3, None, Duration::ZERO);
        state.reserve_for(&hostile, DEFAULT_SESSION_BUDGET_BYTES);
        // The hard packet cap is 1<<22 entries; allow hash-map headroom.
        assert!(
            state.seen.capacity() <= (1 << 23),
            "dedup set reservation unbounded: {} entries",
            state.seen.capacity()
        );
        assert!(
            state.raw_delays.capacity() <= (1 << 23),
            "raw-delay reservation unbounded: {} entries",
            state.raw_delays.capacity()
        );
        // And the whole reservation respects the per-session budget
        // (with allocator rounding headroom).
        assert!(
            state.mem_bytes() <= 2 * DEFAULT_SESSION_BUDGET_BYTES,
            "reservation ignores the session budget: {} bytes",
            state.mem_bytes()
        );

        // A tight budget scales the reservation down proportionally
        // and composes with admission's projected charge.
        let budget = 1 << 20; // 1 MiB
        let mut tight = SessionState::new(4, None, Duration::ZERO);
        tight.reserve_for(&hostile, budget);
        assert!(
            tight.mem_bytes() <= 2 * budget,
            "tight budget ignored: {} bytes",
            tight.mem_bytes()
        );
        assert!(
            SessionState::projected_bytes(&hostile, budget) <= budget,
            "projected admission charge exceeds the session budget"
        );
    }

    /// The server config's sharding and multi-thread drain must not
    /// change what a session records (end-to-end smoke over loopback).
    #[test]
    fn sharded_multithread_server_accepts_probes() {
        let metrics = Arc::new(Registry::new("recv-shard-test"));
        let handle = start_server(ServerConfig {
            metrics: Some(metrics.clone()),
            recv_threads: 2,
            shards: 4,
            ..ServerConfig::any(local0(), 8)
        })
        .unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).unwrap();
        // Open two sessions via SYN, then interleave probes.
        for session in [1u32, 2] {
            let syn = ControlMessage::Syn {
                session,
                params: SessionParams {
                    n_slots: 100,
                    slot_ns: 5_000_000,
                    probe_packets: 1,
                    packet_bytes: 64,
                    p: 0.3,
                    improved: true,
                },
            };
            sock.send_to(&syn.encode(), target).unwrap();
        }
        settle();
        for i in 0..20u64 {
            for session in [1u32, 2] {
                let h = ProbeHeader {
                    session,
                    experiment: i,
                    slot: i,
                    seq: i,
                    send_ns: 0,
                    idx: 0,
                    probe_len: 1,
                };
                send_header(&sock, target, &h, 64);
            }
        }
        settle();
        let report = handle.stop();
        assert_eq!(report.sessions.len(), 2);
        for outcome in &report.sessions {
            assert_eq!(
                outcome.log.packets, 20,
                "session {} dropped packets",
                outcome.session
            );
        }
        assert_eq!(metrics.counter("packets_accepted").get(), 40);
        assert_eq!(metrics.counter("sessions_opened").get(), 2);
        // The drain loops flush their ring stats on exit.
        assert!(metrics.counter("recv_datagrams").get() >= 42);
        assert!(metrics.counter("recv_syscalls").get() >= 1);
    }
}
