//! The live probe receiver.
//!
//! Collects probe packets, computes per-packet delay against its own
//! monotonic clock, and removes the unknown clock offset by subtracting
//! the minimum delay observed so far — what remains is queueing delay
//! above the path minimum, which is exactly the quantity the §6.1
//! `(1-α)·OWDmax` threshold discriminates on. (§7 discusses clock skew;
//! over 15-minute runs on one host pair the min-subtraction approach is
//! the standard trick, and the integration tests exercise it.)

use badabing_wire::{DecodeError, ProbeHeader};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::oneshot;
use tokio::time::Instant;

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Address to listen on.
    pub bind: SocketAddr,
    /// Only accept packets stamped with this session id.
    pub session: u32,
}

/// Per-probe arrival record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalRecord {
    /// Packets of this probe that arrived.
    pub received: u8,
    /// Queueing delay (seconds above path minimum) of the most recent
    /// arrival.
    pub qdelay_last_secs: f64,
    /// Maximum queueing delay over the probe's arrivals.
    pub qdelay_max_secs: f64,
}

/// Everything the receiver collected.
#[derive(Debug, Clone, Default)]
pub struct ReceiverLog {
    /// Arrival records keyed by (experiment, slot).
    pub arrivals: HashMap<(u64, u64), ArrivalRecord>,
    /// Raw packets accepted.
    pub packets: u64,
    /// Datagrams rejected (wrong session, undecodable).
    pub rejected: u64,
    /// The minimum raw delay used as the clock-offset estimate, in
    /// nanoseconds (signed: clocks are unrelated across processes).
    pub min_raw_delay_ns: Option<i64>,
}

/// Handle to a running receiver: resolve it to stop listening and take
/// the log.
pub struct ReceiverHandle {
    stop: oneshot::Sender<()>,
    joined: tokio::task::JoinHandle<ReceiverLog>,
    local_addr: SocketAddr,
}

impl ReceiverHandle {
    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the receiver and collect its log.
    pub async fn stop(self) -> ReceiverLog {
        let _ = self.stop.send(());
        self.joined.await.expect("receiver task panicked")
    }
}

/// Start a receiver task; it records until stopped.
pub async fn start_receiver(cfg: ReceiverConfig) -> std::io::Result<ReceiverHandle> {
    let socket = Arc::new(UdpSocket::bind(cfg.bind).await?);
    let local_addr = socket.local_addr()?;
    let (stop_tx, mut stop_rx) = oneshot::channel();
    let anchor = Instant::now();

    let joined = tokio::spawn(async move {
        let mut log = ReceiverLog::default();
        // (exp, slot, receive time secs, raw delay ns)
        let mut raw_delays: Vec<(u64, u64, f64, i64)> = Vec::new();
        let mut counts: HashMap<(u64, u64), u8> = HashMap::new();
        let mut buf = vec![0u8; 65_536];
        loop {
            tokio::select! {
                _ = &mut stop_rx => break,
                res = socket.recv(&mut buf) => {
                    let Ok(len) = res else { break };
                    let now = anchor.elapsed();
                    let now_ns = now.as_nanos() as i64;
                    match ProbeHeader::decode(&buf[..len]) {
                        Ok(h) if h.session == cfg.session => {
                            log.packets += 1;
                            let raw = now_ns - h.send_ns as i64;
                            log.min_raw_delay_ns =
                                Some(log.min_raw_delay_ns.map_or(raw, |m| m.min(raw)));
                            raw_delays.push((h.experiment, h.slot, now.as_secs_f64(), raw));
                            *counts.entry((h.experiment, h.slot)).or_default() += 1;
                        }
                        Ok(_) | Err(DecodeError::TooShort { .. })
                        | Err(DecodeError::BadMagic { .. })
                        | Err(DecodeError::BadFields) => log.rejected += 1,
                    }
                }
            }
        }
        // Clock correction happens once, after the run: fit the lower
        // envelope (offset + skew line, §7) and subtract it. A running
        // minimum would bias early records upward; min-subtraction alone
        // would let clock skew masquerade as queueing delay on long runs.
        let points: Vec<(f64, f64)> =
            raw_delays.iter().map(|&(_, _, t, raw)| (t, raw as f64 / 1e9)).collect();
        let baseline = crate::skew::fit_baseline(&points)
            .unwrap_or(crate::skew::Baseline { offset: 0.0, slope: 0.0 });
        for (exp, slot, t, raw) in raw_delays {
            let q = baseline.correct(t, raw as f64 / 1e9);
            let rec = log.arrivals.entry((exp, slot)).or_default();
            rec.received = counts.get(&(exp, slot)).copied().unwrap_or(0);
            rec.qdelay_last_secs = q;
            rec.qdelay_max_secs = rec.qdelay_max_secs.max(q);
        }
        log
    });

    Ok(ReceiverHandle { stop: stop_tx, joined, local_addr })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local0() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[tokio::test]
    async fn accepts_session_packets_and_rejects_others() {
        let handle =
            start_receiver(ReceiverConfig { bind: local0(), session: 42 }).await.unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).await.unwrap();
        let good = ProbeHeader {
            session: 42,
            experiment: 1,
            slot: 10,
            seq: 0,
            send_ns: 0,
            idx: 0,
            probe_len: 2,
        };
        let bad_session = ProbeHeader { session: 9, ..good };
        sock.send_to(&good.encode(100), target).await.unwrap();
        sock.send_to(&bad_session.encode(100), target).await.unwrap();
        sock.send_to(b"garbage", target).await.unwrap();
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        let log = handle.stop().await;
        assert_eq!(log.packets, 1);
        assert_eq!(log.rejected, 2);
        assert_eq!(log.arrivals.len(), 1);
        assert_eq!(log.arrivals[&(1, 10)].received, 1);
    }

    #[tokio::test]
    async fn offset_removal_yields_relative_queueing_delay() {
        let handle =
            start_receiver(ReceiverConfig { bind: local0(), session: 1 }).await.unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).await.unwrap();
        // Two packets with send timestamps from an unrelated clock: the
        // second "left" 50 ms earlier than its arrival spacing implies,
        // i.e. it queued ~50 ms longer.
        let base = 1_000_000_000_000u64; // arbitrary foreign clock
        let h1 = ProbeHeader {
            session: 1,
            experiment: 0,
            slot: 0,
            seq: 0,
            send_ns: base,
            idx: 0,
            probe_len: 1,
        };
        let h2 = ProbeHeader {
            experiment: 1,
            slot: 5,
            seq: 1,
            send_ns: base, // same stamp, sent 50 ms later in real time
            ..h1
        };
        sock.send_to(&h1.encode(100), target).await.unwrap();
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        sock.send_to(&h2.encode(100), target).await.unwrap();
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        let log = handle.stop().await;
        let q1 = log.arrivals[&(0, 0)].qdelay_max_secs;
        let q2 = log.arrivals[&(1, 5)].qdelay_max_secs;
        assert!(q1 < 0.01, "first packet defines the baseline, got {q1}");
        assert!((q2 - 0.05).abs() < 0.03, "second packet ~50 ms of queueing, got {q2}");
    }

    #[tokio::test]
    async fn skewed_sender_clock_is_corrected() {
        // A sender whose clock runs fast by 1% (exaggerated for a 3 s
        // test; real skews are ppm over hours): send_ns grows 1.01× real
        // time. Without skew removal the *latest* idle packets would show
        // negative raw deltas relative to the earliest, or equivalently
        // early packets would read tens of ms of phantom queueing.
        let handle =
            start_receiver(ReceiverConfig { bind: local0(), session: 5 }).await.unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).await.unwrap();
        let start = std::time::Instant::now();
        for i in 0..40u64 {
            let real_ns = start.elapsed().as_nanos() as u64;
            let skewed_ns = (real_ns as f64 * 1.01) as u64;
            let h = ProbeHeader {
                session: 5,
                experiment: i,
                slot: i,
                seq: i,
                send_ns: skewed_ns,
                idx: 0,
                probe_len: 1,
            };
            sock.send_to(&h.encode(64), target).await.unwrap();
            tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        }
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        let log = handle.stop().await;
        assert_eq!(log.packets, 40);
        // Every packet is idle; after baseline removal all queueing
        // delays must be small. (1% over 2 s = 20 ms of drift, so the
        // naive min-subtraction would report up to ~20 ms on one end.)
        let max_q = log
            .arrivals
            .values()
            .map(|r| r.qdelay_max_secs)
            .fold(0.0f64, f64::max);
        assert!(max_q < 0.008, "residual queueing delay {max_q} after skew removal");
    }

    #[tokio::test]
    async fn multi_packet_probe_aggregates() {
        let handle =
            start_receiver(ReceiverConfig { bind: local0(), session: 3 }).await.unwrap();
        let target = handle.local_addr();
        let sock = UdpSocket::bind(local0()).await.unwrap();
        for idx in 0..3u8 {
            let h = ProbeHeader {
                session: 3,
                experiment: 8,
                slot: 2,
                seq: idx as u64,
                send_ns: 0,
                idx,
                probe_len: 3,
            };
            sock.send_to(&h.encode(64), target).await.unwrap();
        }
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        let log = handle.stop().await;
        assert_eq!(log.arrivals[&(8, 2)].received, 3);
    }
}
