//! The live BADABING tool: real UDP sockets, real timers, real processes.
//!
//! This crate is the deployment surface the original ~800-line C++ tool
//! occupied: a one-way active measurement tool that sends fixed-size
//! probes from a sender to a collaborating receiver, which collects them
//! and reports loss characteristics after the run (§6). Everything runs
//! on `std::net::UdpSocket` and plain threads — no async runtime — so
//! the binaries work as genuinely separate processes.
//!
//! * [`sender`] — drives the geometric experiment schedule off an
//!   absolute slot clock and stamps every packet with a monotonic send
//!   time; owns every control-plane timeout and degrades to a partial
//!   manifest with diagnostics if the receiver dies mid-run;
//! * [`receiver`] — a session server: one process serves many
//!   concurrent sender sessions from a registry keyed by session id
//!   (opened on SYN, bounded by `max_sessions` and explicit memory
//!   budgets with a reject-or-evict admission policy, reaped on
//!   completion or idle timeout). The drain loops wait for work
//!   through [`event_loop`] — epoll readiness plus an eventfd waker on
//!   Linux, a portable timeout loop elsewhere — with a
//!   deadline-scheduled idle watchdog, so a fleet of idle sessions
//!   costs zero wakeups. Per session it deduplicates arrivals by
//!   `(seq, idx)` so duplicated datagrams never mask loss, removes
//!   clock offset/skew via a lower-envelope fit (yielding *queueing*
//!   delay, which is what the α/OWDmax threshold actually needs),
//!   builds per-probe records at finalization, and answers the control
//!   plane on the same socket; the single-session receiver remains as a
//!   thin wrapper;
//! * [`control`] — the sender-side driver for the UDP control plane
//!   (SYN/SYN-ACK handshake, heartbeats, FIN + chunked report retrieval
//!   with capped exponential backoff; wire format in
//!   `badabing_wire::control`);
//! * [`provider`] — the I/O seam all of the above bind sockets through:
//!   real UDP (batched or portable syscalls) or the [`faultnet`] — a
//!   seeded in-process virtual network with virtual time and per-link
//!   loss bursts / reordering / duplication / jitter / MTU truncation,
//!   which makes fault reproduction a one-seed unit test;
//! * [`emulator`] — a user-space bottleneck: a UDP forwarder with a
//!   virtual drop-tail queue drained at a configured rate, plus scripted
//!   overload episodes — the loopback stand-in for the testbed's OC3 hop;
//! * [`analyze`] — joins the sender manifest with receiver records and
//!   runs the shared `badabing-core` detector/estimator pipeline, so the
//!   live tool and the simulator report through identical code.
//!
//! The quickstart wiring (sender → emulator → receiver on loopback) lives
//! in `examples/live_loopback.rs` at the workspace root and in this
//! crate's integration tests.

pub mod analyze;
pub mod batch_io;
pub mod cli;
pub mod cmsg;
pub mod control;
pub mod emulator;
pub mod event_loop;
pub mod faultnet;
pub mod persist;
pub mod provider;
pub mod receiver;
pub mod sender;
pub mod skew;

pub use analyze::{analyze_run, LiveAnalysis};
pub use batch_io::{kernel_offload_caps, BatchReceiver, BatchSender, IoMode, OffloadCaps};
pub use control::{ControlClient, ControlConfig, ControlError};
pub use emulator::{Emulator, EmulatorConfig, EmulatorStats, SessionFlow};
pub use event_loop::{PollMode, PollWaker, Poller};
pub use faultnet::{FaultDatagram, FaultNet, FaultSocket, LinkFaults};
pub use provider::{Clock, Provider, RecvBatch, SendBatch, Socket, TimestampSource};
pub use receiver::{
    start_receiver, start_server, PressurePolicy, ReceiverConfig, ReceiverHandle, ReceiverLog,
    ServerConfig, ServerHandle, ServerReport, SessionEnd, SessionOutcome, SessionPolicy,
    DEFAULT_SESSION_BUDGET_BYTES,
};
pub use sender::{run_sender, SenderConfig, SenderManifest, SenderOutcome, SentProbeInfo};
