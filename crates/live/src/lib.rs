//! The live BADABING tool: real UDP sockets, real timers.
//!
//! This crate is the deployment surface the original ~800-line C++ tool
//! occupied: a one-way active measurement tool that sends fixed-size
//! probes from a sender to a collaborating receiver, which collects them
//! and reports loss characteristics after the run (§6).
//!
//! * [`sender`] — drives the geometric experiment schedule off a tokio
//!   slot clock and stamps every packet with a monotonic send time;
//! * [`receiver`] — collects arrivals, removes clock offset by tracking
//!   the minimum observed delay (yielding *queueing* delay, which is what
//!   the α/OWDmax threshold actually needs), and builds per-probe records;
//! * [`emulator`] — a user-space bottleneck: a UDP forwarder with a
//!   virtual drop-tail queue drained at a configured rate, plus scripted
//!   overload episodes — the loopback stand-in for the testbed's OC3 hop;
//! * [`analyze`] — joins the sender manifest with receiver records and
//!   runs the shared `badabing-core` detector/estimator pipeline, so the
//!   live tool and the simulator report through identical code.
//!
//! The quickstart wiring (sender → emulator → receiver on loopback) lives
//! in `examples/live_loopback.rs` at the workspace root and in this
//! crate's integration tests.

pub mod analyze;
pub mod cli;
pub mod emulator;
pub mod persist;
pub mod receiver;
pub mod sender;
pub mod skew;

pub use analyze::{analyze_run, LiveAnalysis};
pub use emulator::{Emulator, EmulatorConfig};
pub use receiver::{ReceiverConfig, ReceiverHandle, ReceiverLog};
pub use sender::{SenderConfig, SenderManifest, SentProbeInfo};
