//! The live probe sender.
//!
//! Walks the experiment schedule from `badabing-core` on a real clock:
//! slot `k` fires at `anchor + k·Δ` (absolute scheduling via
//! `sleep_until`, so timing error does not accumulate across the run —
//! with 5 ms slots a drifting relative timer would smear slot boundaries
//! within seconds). Each probe is `N` packets sent back to back.

use badabing_core::config::BadabingConfig;
use badabing_core::schedule::ExperimentScheduler;
use badabing_wire::ProbeHeader;
use rand::rngs::StdRng;
use std::net::SocketAddr;
use tokio::net::UdpSocket;
use tokio::time::Instant;

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Tool parameters (slot width, p, probe size, packet size, ...).
    pub tool: BadabingConfig,
    /// Total slots to run (the paper's `N`).
    pub n_slots: u64,
    /// Where to send probes (the receiver, or an emulator in front of it).
    pub target: SocketAddr,
    /// Local bind address (use port 0 for ephemeral).
    pub bind: SocketAddr,
    /// Session id stamped into every packet.
    pub session: u32,
}

/// One probe as sent, for the post-run join with receiver records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentProbeInfo {
    /// Owning experiment.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Actual send time in seconds since the sender's anchor.
    pub send_time_secs: f64,
    /// Packets in the probe.
    pub packets: u8,
}

/// Everything the sender knows after a run.
#[derive(Debug, Clone)]
pub struct SenderManifest {
    /// Session id used.
    pub session: u32,
    /// Every probe sent, in send order.
    pub sent: Vec<SentProbeInfo>,
    /// Packets transmitted in total.
    pub packets_sent: u64,
    /// Slots in the run.
    pub n_slots: u64,
    /// Slot width in seconds.
    pub slot_secs: f64,
}

/// Run the sender to completion: sends the whole schedule, then returns
/// the manifest. Cancellation-safe in the sense that dropping the future
/// simply stops sending (no partial state escapes).
pub async fn run_sender(cfg: SenderConfig, rng: StdRng) -> std::io::Result<SenderManifest> {
    let socket = UdpSocket::bind(cfg.bind).await?;
    socket.connect(cfg.target).await?;

    // Plan the entire run up front (identical logic to the simulator
    // prober): probes sorted by slot.
    let mut sched = ExperimentScheduler::new(cfg.tool.p, cfg.tool.improved, rng);
    let mut plan: Vec<(u64, u64)> = Vec::new(); // (slot, experiment)
    for e in sched.take_run(cfg.n_slots) {
        for slot in e.slots() {
            plan.push((slot, e.id));
        }
    }
    plan.sort_unstable();

    let anchor = Instant::now();
    let slot_dur = std::time::Duration::from_secs_f64(cfg.tool.slot_secs);
    let mut sent = Vec::with_capacity(plan.len());
    let mut packets_sent = 0u64;
    let mut seq = 0u64;
    let n = cfg.tool.probe_packets;
    let bytes = cfg.tool.packet_bytes as usize;

    for (slot, experiment) in plan {
        let due = anchor + slot_dur * (slot as u32);
        tokio::time::sleep_until(due).await;
        let send_time_secs = anchor.elapsed().as_secs_f64();
        for idx in 0..n {
            let header = ProbeHeader {
                session: cfg.session,
                experiment,
                slot,
                seq,
                send_ns: anchor.elapsed().as_nanos() as u64,
                idx,
                probe_len: n,
            };
            seq += 1;
            packets_sent += 1;
            socket.send(&header.encode(bytes)).await?;
        }
        sent.push(SentProbeInfo { experiment, slot, send_time_secs, packets: n });
    }

    Ok(SenderManifest {
        session: cfg.session,
        sent,
        packets_sent,
        n_slots: cfg.n_slots,
        slot_secs: cfg.tool.slot_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_stats::rng::seeded;

    fn local(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[tokio::test]
    async fn sender_emits_planned_probes() {
        // A tiny run straight into a receiver socket we read ourselves.
        let sink = UdpSocket::bind(local(0)).await.unwrap();
        let target = sink.local_addr().unwrap();
        let cfg = SenderConfig {
            tool: BadabingConfig {
                slot_secs: 0.002, // fast slots to keep the test short
                ..BadabingConfig::paper_default(0.5)
            },
            n_slots: 50,
            target,
            bind: local(0),
            session: 7,
        };
        let sender = tokio::spawn(run_sender(cfg, seeded(1, "live-send")));
        let mut received = Vec::new();
        let mut buf = [0u8; 2048];
        while let Ok(Ok(len)) =
            tokio::time::timeout(std::time::Duration::from_millis(300), sink.recv(&mut buf)).await
        {
            received.push(ProbeHeader::decode(&buf[..len]).unwrap());
        }
        let manifest = sender.await.unwrap().unwrap();
        assert!(!manifest.sent.is_empty());
        assert_eq!(manifest.packets_sent as usize, received.len());
        assert!(received.iter().all(|h| h.session == 7));
        // Every (experiment, slot) in the manifest appears probe_len times.
        for probe in &manifest.sent {
            let count = received
                .iter()
                .filter(|h| h.experiment == probe.experiment && h.slot == probe.slot)
                .count();
            assert_eq!(count, usize::from(probe.packets));
        }
        // Send times land near slot boundaries (within 2 slots of nominal —
        // CI schedulers jitter, we only need monotone slot alignment).
        for probe in &manifest.sent {
            let nominal = probe.slot as f64 * 0.002;
            assert!(
                probe.send_time_secs >= nominal - 1e-4,
                "probe for slot {} sent early at {}",
                probe.slot,
                probe.send_time_secs
            );
        }
    }
}
