//! The live probe sender.
//!
//! Walks the experiment schedule from `badabing-core` on a real clock:
//! slot `k` fires at `anchor + k·Δ` (absolute scheduling, so timing
//! error does not accumulate across the run — with 5 ms slots a drifting
//! relative timer would smear slot boundaries within seconds). Each
//! probe is `N` packets sent back to back.
//!
//! When a [`ControlConfig`] is supplied the sender also drives the
//! control plane: SYN/SYN-ACK handshake before the first probe, a
//! heartbeat thread during the run, and FIN + chunked report retrieval
//! afterwards. Every timeout lives on this side; if the receiver goes
//! silent mid-run the heartbeat watchdog aborts the schedule and the
//! sender returns a *partial* manifest with a diagnostic instead of
//! hanging (see [`SenderOutcome`]).

use crate::control::{ControlClient, ControlConfig, EstimateReport};
use crate::provider::{Clock, Provider, SendBatch};
use crate::receiver::ReceiverLog;
use badabing_core::config::BadabingConfig;
use badabing_core::schedule::ExperimentScheduler;
use badabing_metrics::Registry;
use badabing_wire::control::{EstimateScope, SessionParams};
use badabing_wire::ProbeHeader;
use rand::rngs::StdRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Tool parameters (slot width, p, probe size, packet size, ...).
    pub tool: BadabingConfig,
    /// Total slots to run (the paper's `N`).
    pub n_slots: u64,
    /// Where to send probes (the receiver, or an emulator in front of it).
    pub target: SocketAddr,
    /// Local bind address (use port 0 for ephemeral).
    pub bind: SocketAddr,
    /// Session id stamped into every packet.
    pub session: u32,
    /// Control-plane policy. `None` runs open-loop (probes only), as the
    /// pre-control tool did.
    pub control: Option<ControlConfig>,
    /// Run counters and latency histograms, if observability is wanted.
    pub metrics: Option<Arc<Registry>>,
    /// I/O backend for probes *and* control: real UDP (batched or
    /// portable syscalls) or a [`crate::FaultNet`]. The sender's
    /// provider wins over whatever the [`ControlConfig`] carries, so a
    /// run can never straddle two backends.
    pub provider: Provider,
    /// Poll the receiver's online estimate (session scope) at this
    /// cadence during the run, from the heartbeat thread. The latest
    /// snapshot lands in [`SenderOutcome::mid_run_estimate`] and — when
    /// metrics are on — in `est_*` gauges. `None` disables polling;
    /// requires a control plane to do anything.
    pub estimate_every: Option<Duration>,
}

impl SenderConfig {
    /// An open-loop sender (no control plane, no metrics).
    pub fn new(tool: BadabingConfig, n_slots: u64, target: SocketAddr, session: u32) -> Self {
        Self {
            tool,
            n_slots,
            target,
            bind: if target.is_ipv4() {
                "0.0.0.0:0".parse().expect("static addr")
            } else {
                "[::]:0".parse().expect("static addr")
            },
            session,
            control: None,
            metrics: None,
            provider: Provider::default(),
            estimate_every: None,
        }
    }

    /// The handshake announcement derived from this config.
    ///
    /// `run_sender` rejects a non-finite / non-positive slot width with
    /// a proper error before this runs; a direct caller with a bad
    /// width gets `slot_ns == 0` here rather than a panic.
    pub fn session_params(&self) -> SessionParams {
        SessionParams {
            n_slots: self.n_slots,
            slot_ns: Duration::try_from_secs_f64(self.tool.slot_secs)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
            probe_packets: self.tool.probe_packets,
            packet_bytes: self.tool.packet_bytes,
            p: self.tool.p,
            improved: self.tool.improved,
        }
    }
}

/// Validate a user-supplied duration in (fractional) seconds.
///
/// `Duration::from_secs_f64` *panics* on NaN, negative, and overflowing
/// inputs — a `--slot-secs nan` on the command line must surface as a
/// usage error, not a crash. Zero is also rejected: a zero-width slot
/// makes every deadline "now" and the schedule meaningless.
pub fn checked_secs(secs: f64, what: &str) -> std::io::Result<Duration> {
    if !secs.is_finite() || secs <= 0.0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{what} must be a positive finite number of seconds, got {secs}"),
        ));
    }
    Duration::try_from_secs_f64(secs).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{what} = {secs}: {e}"),
        )
    })
}

/// One probe as sent, for the post-run join with receiver records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentProbeInfo {
    /// Owning experiment.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Actual send time in seconds since the sender's anchor.
    pub send_time_secs: f64,
    /// Packets of this probe that actually left the host (may be less
    /// than the configured probe size if sends were refused).
    pub packets: u8,
}

/// Everything the sender knows after a run.
#[derive(Debug, Clone)]
pub struct SenderManifest {
    /// Session id used.
    pub session: u32,
    /// Every probe sent, in send order.
    pub sent: Vec<SentProbeInfo>,
    /// Packets transmitted in total. Counts only successful sends: this
    /// is the denominator of the post-run loss accounting, so a packet
    /// the OS refused to emit must not appear in it.
    pub packets_sent: u64,
    /// Packets skipped because the socket refused the send (dead
    /// on-path destination surfacing as `ConnectionRefused`).
    pub packets_refused: u64,
    /// Slots in the run.
    pub n_slots: u64,
    /// Slot width in seconds.
    pub slot_secs: f64,
}

/// The full result of a sender run, partial or complete.
#[derive(Debug, Clone)]
pub struct SenderOutcome {
    /// Probes actually sent (partial if the run aborted).
    pub manifest: SenderManifest,
    /// The receiver's records, fetched over the control plane. `None`
    /// for open-loop runs or when report retrieval failed.
    pub receiver_log: Option<ReceiverLog>,
    /// Whether the whole schedule ran. `false` means the heartbeat
    /// watchdog aborted mid-run; the manifest covers only what was sent.
    pub completed: bool,
    /// The last mid-run estimate snapshot fetched from the receiver,
    /// when [`SenderConfig::estimate_every`] polling was on and at
    /// least one poll succeeded.
    pub mid_run_estimate: Option<EstimateReport>,
    /// Human-readable notes about anything that went wrong.
    pub diagnostics: Vec<String>,
}

/// Offset of slot `k` from the run anchor: `k·Δ` computed in 128-bit
/// nanoseconds. The obvious `slot_dur * (slot as u32)` truncates the
/// slot index to 32 bits — with 5 ms slots that wraps after ~248 days,
/// but with microsecond slots (stress runs) after barely an hour, and a
/// wrapped deadline makes the sender fire the rest of the schedule
/// immediately. Saturates at `Duration::MAX`-representable nanoseconds
/// rather than wrapping.
pub fn slot_offset(slot_dur: Duration, slot: u64) -> Duration {
    let ns = slot_dur.as_nanos().saturating_mul(u128::from(slot));
    Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
}

/// Run the sender to completion (or heartbeat-abort): handshake if
/// configured, send the schedule, drain, fetch the receiver's report.
/// Fails with `Err` only on invalid config, local socket errors, or an
/// unreachable receiver at handshake time — anything that goes wrong
/// *after* probes start flowing degrades to a partial [`SenderOutcome`]
/// instead.
pub fn run_sender(cfg: SenderConfig, rng: StdRng) -> std::io::Result<SenderOutcome> {
    // Reject unrepresentable slot widths up front, before any socket
    // work: `--slot-secs nan` is a usage error, not a panic.
    let slot_dur = checked_secs(cfg.tool.slot_secs, "slot width (slot_secs)")?;
    let clock = cfg.provider.clock();
    let socket = cfg.provider.bind(cfg.bind)?;
    socket.connect(cfg.target)?;

    // Plan the entire run up front (identical logic to the simulator
    // prober): probes sorted by slot.
    let mut sched = ExperimentScheduler::new(cfg.tool.p, cfg.tool.improved, rng);
    let mut plan: Vec<(u64, u64)> = Vec::new(); // (slot, experiment)
    for e in sched.take_run(cfg.n_slots) {
        for slot in e.slots() {
            plan.push((slot, e.id));
        }
    }
    plan.sort_unstable();

    let mut diagnostics = Vec::new();
    let abort = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    // Handshake before the first probe: a dead receiver fails the run
    // here, not after minutes of probing into the void.
    let client = match &cfg.control {
        Some(control_cfg) => {
            // The probe socket's backend wins: control traffic must ride
            // the same (possibly virtual) network as the probes.
            let mut control_cfg = control_cfg.clone();
            control_cfg.provider = cfg.provider.clone();
            let client = Arc::new(ControlClient::connect(control_cfg, cfg.metrics.clone())?);
            client
                .handshake(cfg.session, cfg.session_params())
                .map_err(|e| std::io::Error::other(format!("handshake failed: {e}")))?;
            Some(client)
        }
        None => None,
    };

    // Liveness: heartbeats ride alongside the probe schedule; enough
    // consecutive misses raise the abort flag the probe loop watches.
    // The heartbeat thread doubles as the mid-run estimate poller: it
    // already owns the control socket for the run's duration, so the
    // two request/reply exchanges serialize naturally.
    let mid_run_estimate: Arc<Mutex<Option<EstimateReport>>> = Arc::new(Mutex::new(None));
    let mut heartbeat = client.as_ref().map(|client| {
        let client = client.clone();
        let abort = abort.clone();
        let done = done.clone();
        let session = cfg.session;
        let metrics = cfg.metrics.clone();
        let estimate_every = cfg.estimate_every;
        let estimate_slot = mid_run_estimate.clone();
        let hb_clock = clock.clone();
        let enlistment = clock.enlist();
        let hb_exited = Arc::new(AtomicBool::new(false));
        let exited = hb_exited.clone();
        let handle = std::thread::spawn(move || {
            hb_clock.adopt(enlistment);
            let interval = client.config().heartbeat_interval;
            let allowed = client.config().heartbeat_misses;
            let mut seq = 0u64;
            let mut misses = 0u32;
            let mut next_estimate = estimate_every.map(|every| hb_clock.now() + every);
            while !done.load(Ordering::Relaxed) && !abort.load(Ordering::Relaxed) {
                let tick = hb_clock.now();
                match client.heartbeat(session, seq, interval) {
                    Ok(true) => misses = 0,
                    Ok(false) => {
                        misses += 1;
                        if let Some(m) = &metrics {
                            m.counter("heartbeats_missed").inc();
                        }
                        if misses >= allowed {
                            abort.store(true, Ordering::Relaxed);
                            hb_clock.notify_waiters();
                            break;
                        }
                    }
                    Err(_) => {
                        abort.store(true, Ordering::Relaxed);
                        hb_clock.notify_waiters();
                        break;
                    }
                }
                seq += 1;
                if let (Some(every), Some(due)) = (estimate_every, next_estimate) {
                    if hb_clock.now() >= due {
                        next_estimate = Some(hb_clock.now() + every);
                        // Best effort: a receiver too old to know the
                        // message just burns this poll's retry budget;
                        // liveness is the heartbeat's job, not this one's.
                        if let Ok(est) = client.fetch_estimate(session, EstimateScope::Session) {
                            publish_estimate(metrics.as_deref(), &est);
                            *estimate_slot.lock().expect("estimate slot") = Some(est);
                        }
                    }
                }
                // Pace to the interval (an early ack returns quickly).
                let _ = hb_clock.sleep_until(tick + interval, &done);
            }
            // Signal exit while still enrolled so the reaper can park on
            // this flag instead of unenrolling for the join.
            exited.store(true, Ordering::Relaxed);
            hb_clock.notify_waiters();
            misses
        });
        (handle, hb_exited)
    });

    let anchor = clock.now();
    let mut sent = Vec::with_capacity(plan.len());
    let mut packets_sent = 0u64;
    let mut packets_refused = 0u64;
    let mut seq = 0u64;
    let n = cfg.tool.probe_packets;
    let bytes = cfg.tool.packet_bytes as usize;
    // Steady-state TX is allocation-free: every packet of a train
    // encodes into its segment of this one reused buffer, and the whole
    // train goes to the kernel in (ideally) one sendmmsg.
    let mut train = vec![0u8; usize::from(n.max(1)) * bytes];
    let mut tx = SendBatch::new(usize::from(n.max(1)), &cfg.provider);
    socket.set_buffer_sizes(1 << 20, 1 << 22);
    let m_probes = cfg.metrics.as_ref().map(|m| m.counter("probes_sent"));
    let m_packets = cfg.metrics.as_ref().map(|m| m.counter("packets_sent"));
    let m_refused = cfg.metrics.as_ref().map(|m| m.counter("packets_refused"));
    let m_lateness = cfg
        .metrics
        .as_ref()
        .map(|m| m.histogram("send_lateness_secs"));
    let mut aborted = false;

    for &(slot, experiment) in &plan {
        let due = anchor + slot_offset(slot_dur, slot);
        if !clock.sleep_until(due, &abort) {
            aborted = true;
            break;
        }
        let send_time_secs = clock.now().saturating_sub(anchor).as_secs_f64();
        if let Some(h) = &m_lateness {
            h.record_secs(clock.now().saturating_sub(due).as_secs_f64());
        }
        // Encode the whole train first — each packet still carries its
        // own monotonic send stamp, taken at encode time immediately
        // before the batch syscall — then hand it to the kernel in one
        // sendmmsg (fallback: one send per packet).
        for idx in 0..n {
            let header = ProbeHeader {
                session: cfg.session,
                experiment,
                slot,
                seq,
                send_ns: clock.now().saturating_sub(anchor).as_nanos() as u64,
                idx,
                probe_len: n,
            };
            seq += 1;
            header.encode_into(&mut train[usize::from(idx) * bytes..][..bytes]);
        }
        let total = usize::from(n);
        let mut off = 0usize;
        let mut refused_here = 0u64;
        // Count only what the kernel accepts: a short sendmmsg count or
        // a refused packet never reaches the wire, and pre-counting
        // would overstate the loss-accounting denominator.
        while off < total {
            match tx.send_segments(&socket, &train[off * bytes..], bytes, total - off) {
                Ok(k) => {
                    packets_sent += k as u64;
                    off += k;
                }
                // A dead on-path destination surfaces as
                // ConnectionRefused on loopback; the heartbeat watchdog
                // is the authority on peer death, so skip the packet
                // rather than crash. The batched path reports an error
                // only for the first unsent packet, so this accounting
                // is identical in both modes.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                    refused_here += 1;
                    off += 1;
                }
                Err(e) => {
                    done.store(true, Ordering::Relaxed);
                    clock.notify_waiters();
                    reap_heartbeat(&clock, &mut heartbeat);
                    return Err(e);
                }
            }
        }
        let sent_ok = (total as u64 - refused_here) as u8;
        packets_refused += refused_here;
        // One counter bump per train, not per packet.
        if let Some(c) = &m_packets {
            c.add(u64::from(sent_ok));
        }
        if refused_here > 0 {
            if let Some(c) = &m_refused {
                c.add(refused_here);
            }
        }
        if let Some(c) = &m_probes {
            c.inc();
        }
        sent.push(SentProbeInfo {
            experiment,
            slot,
            send_time_secs,
            packets: sent_ok,
        });
    }

    // Offload observability: how many trains the kernel segmented for
    // us (0 when GSO is off or was sticky-degraded) and what the whole
    // run cost in TX syscalls.
    if let Some(m) = &cfg.metrics {
        m.counter("gso_sends").add(tx.gso_sends());
        m.counter("tx_syscalls").add(tx.syscalls());
    }

    if aborted {
        done.store(true, Ordering::Relaxed);
        clock.notify_waiters();
        reap_heartbeat(&clock, &mut heartbeat);
        diagnostics.push(format!(
            "receiver went silent mid-run: aborted after {} of {} probes \
             (heartbeat watchdog); manifest is partial",
            sent.len(),
            plan.len()
        ));
        if let Some(m) = &cfg.metrics {
            m.counter("runs_aborted").inc();
        }
    }

    let manifest = SenderManifest {
        session: cfg.session,
        sent,
        packets_sent,
        packets_refused,
        n_slots: cfg.n_slots,
        slot_secs: cfg.tool.slot_secs,
    };

    // Report retrieval: only worth attempting if the peer was alive at
    // the end of the schedule. After an abort the retry budget would
    // just delay the (already partial) exit.
    let mut receiver_log = None;
    if let (Some(client), false) = (&client, aborted) {
        // Keep the heartbeat thread alive through the drain wait: with a
        // receiver idle timeout shorter than the drain, stopping
        // liveness here would let the receiver's watchdog reclaim the
        // session before the FIN arrives, and an otherwise-complete
        // report would be lost.
        clock.sleep(client.config().drain);
        done.store(true, Ordering::Relaxed);
        clock.notify_waiters();
        // The heartbeat thread shares the control socket; reaping it
        // before fetch_report serializes their use of it.
        reap_heartbeat(&clock, &mut heartbeat);
        if abort.load(Ordering::Relaxed) {
            diagnostics.push(
                "receiver went silent during the drain wait; skipping report \
                 retrieval (manifest-only result)"
                    .to_string(),
            );
        } else {
            match client.fetch_report(cfg.session, manifest.sent.len() as u64, packets_sent) {
                Ok((summary, records)) => {
                    receiver_log = Some(ReceiverLog::from_report(summary, &records));
                }
                Err(e) => diagnostics.push(format!(
                    "probes all sent but report retrieval failed: {e}; \
                     manifest-only result"
                )),
            }
        }
    }
    // Open-loop runs have no heartbeat thread, but stop it defensively
    // for any path that skipped the joins above.
    done.store(true, Ordering::Relaxed);
    clock.notify_waiters();
    reap_heartbeat(&clock, &mut heartbeat);

    let mid_run_estimate = mid_run_estimate.lock().expect("estimate slot").take();
    Ok(SenderOutcome {
        manifest,
        receiver_log,
        completed: !aborted,
        mid_run_estimate,
        diagnostics,
    })
}

/// Publish a fetched estimate snapshot into `est_*` metrics gauges.
/// Derived estimates that do not exist yet (`None`) leave their gauge
/// at its last value rather than publishing a NaN.
fn publish_estimate(metrics: Option<&Registry>, est: &EstimateReport) {
    let Some(m) = metrics else { return };
    m.counter("estimates_fetched").inc();
    let e = &est.estimates;
    let derived = [
        ("est_frequency", e.frequency()),
        ("est_duration_slots_basic", e.duration_slots_basic()),
        ("est_duration_slots_improved", e.duration_slots_improved()),
        ("est_duration_slots_pooled", e.duration_slots_pooled()),
        ("est_episode_rate_per_slot", e.episode_rate_per_slot()),
    ];
    for (name, value) in derived {
        if let Some(v) = value {
            m.gauge(name).set(v);
        }
    }
    m.gauge("est_delay_p50_secs").set(est.delay_p50_secs);
    m.gauge("est_delay_p99_secs").set(est.delay_p99_secs);
}

/// Stop-and-reap for the heartbeat thread (the caller has already set
/// `done` and notified). On a virtual clock this parks — without
/// unenrolling — until the thread signals exit, and only then joins.
/// Unenrolling for the join would let the net free-run: with no busy
/// participants the receiver's poll timeout perpetually re-arms,
/// virtual time advances at real-time speed, and the idle watchdog can
/// reap the session before the FIN is even sent.
fn reap_heartbeat(
    clock: &Clock,
    heartbeat: &mut Option<(std::thread::JoinHandle<u32>, Arc<AtomicBool>)>,
) {
    if let Some((hb, exited)) = heartbeat.take() {
        if matches!(clock, Clock::Virtual(_)) {
            // The horizon is a stall backstop, not a real deadline: the
            // thread's waits are all bounded, so the flag flips long
            // before an hour of virtual time elapses.
            let horizon = clock.now() + Duration::from_secs(3600);
            let _ = clock.sleep_until(horizon, &exited);
        }
        let _ = hb.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_stats::rng::seeded;
    use std::net::UdpSocket;
    use std::time::Instant;

    fn local(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn checked_secs_accepts_normal_widths() {
        assert_eq!(checked_secs(0.005, "x").unwrap(), Duration::from_millis(5));
        assert_eq!(checked_secs(1.0, "x").unwrap(), Duration::from_secs(1));
    }

    #[test]
    fn checked_secs_rejects_every_panic_input() {
        // Each of these used to reach Duration::from_secs_f64 and panic.
        for bad in [
            f64::NAN,
            -1.0,
            -0.0,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e300,
        ] {
            let err = checked_secs(bad, "slot width").unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidInput,
                "input {bad} must be InvalidInput"
            );
            assert!(err.to_string().contains("slot width"), "{err}");
        }
    }

    #[test]
    fn bad_slot_secs_is_an_error_not_a_panic() {
        for bad in [f64::NAN, -0.005, 0.0, f64::INFINITY] {
            let cfg = SenderConfig {
                tool: BadabingConfig {
                    slot_secs: bad,
                    ..BadabingConfig::paper_default(0.5)
                },
                ..SenderConfig::new(BadabingConfig::paper_default(0.5), 10, local(9), 1)
            };
            let err = run_sender(cfg, seeded(1, "live-send")).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "input {bad}");
        }
    }

    #[test]
    fn session_params_survive_bad_widths_without_panicking() {
        let cfg = SenderConfig {
            tool: BadabingConfig {
                slot_secs: f64::NAN,
                ..BadabingConfig::paper_default(0.5)
            },
            ..SenderConfig::new(BadabingConfig::paper_default(0.5), 10, local(9), 1)
        };
        assert_eq!(cfg.session_params().slot_ns, 0);
    }

    #[test]
    fn slot_offset_matches_small_multiplication() {
        let d = Duration::from_millis(5);
        assert_eq!(slot_offset(d, 0), Duration::ZERO);
        assert_eq!(slot_offset(d, 1), d);
        assert_eq!(slot_offset(d, 1000), Duration::from_secs(5));
    }

    #[test]
    fn slot_offset_survives_indices_beyond_u32() {
        // Regression: the old deadline math was `slot_dur * (slot as
        // u32)`, which silently truncates the index. At slot 2^32 + 1 it
        // wrapped to 1·Δ and the sender fired the tail of the schedule
        // with no pacing at all.
        let d = Duration::from_micros(1);
        let wrapped = u64::from(u32::MAX) + 2; // `as u32` would give 1
        let truncated = d * 1u32;
        let correct = slot_offset(d, wrapped);
        assert_ne!(correct, truncated, "offset must not wrap at 2^32 slots");
        assert_eq!(correct, Duration::from_micros(wrapped));
        // Monotone in the slot index even across the old wrap point.
        assert!(slot_offset(d, wrapped) > slot_offset(d, u64::from(u32::MAX)));
    }

    #[test]
    fn slot_offset_saturates_instead_of_overflowing() {
        let huge = slot_offset(Duration::from_secs(u64::MAX / 2), u64::MAX);
        assert_eq!(huge, Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn sender_emits_planned_probes_open_loop() {
        // A tiny run straight into a socket we read ourselves.
        let sink = UdpSocket::bind(local(0)).unwrap();
        let target = sink.local_addr().unwrap();
        sink.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let cfg = SenderConfig {
            tool: BadabingConfig {
                slot_secs: 0.002, // fast slots to keep the test short
                ..BadabingConfig::paper_default(0.5)
            },
            ..SenderConfig::new(BadabingConfig::paper_default(0.5), 50, target, 7)
        };
        let sender = std::thread::spawn(move || run_sender(cfg, seeded(1, "live-send")));
        let mut received = Vec::new();
        let mut buf = [0u8; 2048];
        while let Ok(len) = sink.recv(&mut buf) {
            received.push(ProbeHeader::decode(&buf[..len]).unwrap());
        }
        let outcome = sender.join().unwrap().unwrap();
        assert!(outcome.completed);
        assert!(outcome.diagnostics.is_empty());
        assert!(outcome.receiver_log.is_none(), "open loop fetches nothing");
        let manifest = outcome.manifest;
        assert!(!manifest.sent.is_empty());
        assert_eq!(manifest.packets_sent as usize, received.len());
        assert!(received.iter().all(|h| h.session == 7));
        // Every (experiment, slot) in the manifest appears probe_len times.
        for probe in &manifest.sent {
            let count = received
                .iter()
                .filter(|h| h.experiment == probe.experiment && h.slot == probe.slot)
                .count();
            assert_eq!(count, usize::from(probe.packets));
        }
        // Send times land at or after their slot boundary (absolute
        // scheduling never fires early; CI jitter only delays).
        for probe in &manifest.sent {
            let nominal = probe.slot as f64 * 0.002;
            assert!(
                probe.send_time_secs >= nominal - 1e-4,
                "probe for slot {} sent early at {}",
                probe.slot,
                probe.send_time_secs
            );
        }
    }

    #[test]
    fn refused_packets_are_not_counted_as_sent() {
        // Regression: packets_sent (and the metric) used to be
        // incremented *before* socket.send, so packets skipped on
        // ConnectionRefused were still counted as transmitted and the
        // manifest overstated the loss-accounting denominator.
        //
        // Reserve a loopback port, then close it: a connected UDP socket
        // sending there gets ICMP port-unreachable back, surfacing as
        // ConnectionRefused on subsequent sends (roughly alternating on
        // Linux), so a multi-packet run is guaranteed refusals.
        let target = {
            let reserved = UdpSocket::bind(local(0)).unwrap();
            reserved.local_addr().unwrap()
        };
        let metrics = Arc::new(Registry::new("send-refused-test"));
        let cfg = SenderConfig {
            tool: BadabingConfig {
                slot_secs: 0.002,
                ..BadabingConfig::paper_default(0.5)
            },
            metrics: Some(metrics.clone()),
            ..SenderConfig::new(BadabingConfig::paper_default(0.5), 60, target, 11)
        };
        let outcome = run_sender(cfg, seeded(3, "live-send")).unwrap();
        assert!(outcome.completed, "open loop must still finish");
        let m = outcome.manifest;
        let probe_len = u64::from(BadabingConfig::paper_default(0.5).probe_packets);
        let attempts = m.sent.len() as u64 * probe_len;
        assert!(attempts > 0);
        assert!(
            m.packets_refused > 0,
            "dead target must produce refusals (got {attempts} clean sends)"
        );
        assert!(
            m.packets_sent < attempts,
            "refused packets counted as sent: {} of {attempts}",
            m.packets_sent
        );
        assert_eq!(
            m.packets_sent + m.packets_refused,
            attempts,
            "every attempt is either sent or refused"
        );
        // Per-probe counts reflect what actually left the host, and the
        // metric agrees with the manifest.
        let per_probe: u64 = m.sent.iter().map(|p| u64::from(p.packets)).sum();
        assert_eq!(per_probe, m.packets_sent);
        assert_eq!(metrics.counter("packets_sent").get(), m.packets_sent);
        assert_eq!(metrics.counter("packets_refused").get(), m.packets_refused);
    }

    #[test]
    fn handshake_failure_is_an_error_not_a_hang() {
        let sink = UdpSocket::bind(local(0)).unwrap(); // swallows probes
        let target = sink.local_addr().unwrap();
        // Control address points at a silent socket too.
        let silent = UdpSocket::bind(local(0)).unwrap();
        let mut control = ControlConfig::new(silent.local_addr().unwrap());
        control.retry_base = Duration::from_millis(5);
        control.retry_cap = Duration::from_millis(10);
        control.max_attempts = 3;
        let cfg = SenderConfig {
            control: Some(control),
            ..SenderConfig::new(BadabingConfig::paper_default(0.3), 10, target, 9)
        };
        let started = Instant::now();
        let err = run_sender(cfg, seeded(2, "live-send")).unwrap_err();
        assert!(err.to_string().contains("handshake"), "{err}");
        assert!(started.elapsed() < Duration::from_secs(2), "must fail fast");
    }
}
