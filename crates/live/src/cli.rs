//! Tiny flag parser shared by the CLI binaries (keeps the dependency
//! footprint inside the approved crate list).

use std::collections::HashMap;

/// Parsed `--key value` flags (and bare `--switch`es, stored as empty
/// strings).
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    usage: &'static str,
}

impl Flags {
    /// Parse the process arguments. `switches` lists flags that take no
    /// value. Exits with `usage` on malformed input or `--help`.
    pub fn parse(usage: &'static str, switches: &[&str]) -> Self {
        let mut values = HashMap::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let Some(key) = arg.strip_prefix("--") else {
                Self::die(usage, &format!("unexpected argument {arg}"));
            };
            if key == "help" {
                println!("usage: {usage}");
                std::process::exit(0);
            }
            if switches.contains(&key) {
                values.insert(key.to_string(), String::new());
            } else {
                let Some(v) = args.next() else {
                    Self::die(usage, &format!("--{key} needs a value"));
                };
                values.insert(key.to_string(), v);
            }
        }
        Self { values, usage }
    }

    fn die(usage: &str, msg: &str) -> ! {
        eprintln!("error: {msg}\nusage: {usage}");
        std::process::exit(2);
    }

    /// Whether a bare switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// A required value, parsed.
    pub fn req<T: std::str::FromStr>(&self, key: &str) -> T {
        match self.values.get(key).map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(_)) => Self::die(self.usage, &format!("--{key}: cannot parse value")),
            None => Self::die(self.usage, &format!("--{key} is required")),
        }
    }

    /// An optional value with a default.
    pub fn opt<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key).map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(_)) => Self::die(self.usage, &format!("--{key}: cannot parse value")),
            None => default,
        }
    }

    /// An optional string value.
    pub fn opt_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}
