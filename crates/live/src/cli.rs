//! Tiny flag parser shared by the CLI binaries (keeps the dependency
//! footprint inside the approved crate list).

use std::collections::HashMap;
use std::time::Duration;

/// Validate a strictly positive `--flag S` seconds value: a finite
/// number, `> 0`, and representable as a `Duration`. Everything that
/// would make `Duration::from_secs_f64` panic (NaN, negative,
/// overflow) comes back as an error message instead.
pub fn positive_secs(raw: &str) -> Result<Duration, String> {
    let secs: f64 = raw
        .parse()
        .map_err(|_| format!("`{raw}` is not a number"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!(
            "`{raw}` must be a positive finite number of seconds"
        ));
    }
    Duration::try_from_secs_f64(secs).map_err(|e| format!("`{raw}`: {e}"))
}

/// Like [`positive_secs`] but allows `0` (conventionally "disabled").
pub fn nonneg_secs(raw: &str) -> Result<Duration, String> {
    let secs: f64 = raw
        .parse()
        .map_err(|_| format!("`{raw}` is not a number"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!(
            "`{raw}` must be a non-negative finite number of seconds"
        ));
    }
    Duration::try_from_secs_f64(secs).map_err(|e| format!("`{raw}`: {e}"))
}

/// Parsed `--key value` flags (and bare `--switch`es, stored as empty
/// strings).
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    usage: &'static str,
}

impl Flags {
    /// Parse the process arguments. `switches` lists flags that take no
    /// value. Exits with `usage` on malformed input or `--help`.
    pub fn parse(usage: &'static str, switches: &[&str]) -> Self {
        let mut values = HashMap::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let Some(key) = arg.strip_prefix("--") else {
                Self::die(usage, &format!("unexpected argument {arg}"));
            };
            if key == "help" {
                println!("usage: {usage}");
                std::process::exit(0);
            }
            if switches.contains(&key) {
                values.insert(key.to_string(), String::new());
            } else {
                let Some(v) = args.next() else {
                    Self::die(usage, &format!("--{key} needs a value"));
                };
                values.insert(key.to_string(), v);
            }
        }
        Self { values, usage }
    }

    fn die(usage: &str, msg: &str) -> ! {
        eprintln!("error: {msg}\nusage: {usage}");
        std::process::exit(2);
    }

    /// Whether a bare switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// A required value, parsed.
    pub fn req<T: std::str::FromStr>(&self, key: &str) -> T {
        match self.values.get(key).map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(_)) => Self::die(self.usage, &format!("--{key}: cannot parse value")),
            None => Self::die(self.usage, &format!("--{key} is required")),
        }
    }

    /// An optional value with a default.
    pub fn opt<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.values.get(key).map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(_)) => Self::die(self.usage, &format!("--{key}: cannot parse value")),
            None => default,
        }
    }

    /// An optional string value.
    pub fn opt_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A required duration flag in fractional seconds, validated by
    /// [`positive_secs`] (a `--secs nan` is a usage error, not a panic
    /// further down the stack).
    pub fn req_secs(&self, key: &str) -> Duration {
        match self.values.get(key) {
            Some(v) => match positive_secs(v) {
                Ok(d) => d,
                Err(e) => Self::die(self.usage, &format!("--{key}: {e}")),
            },
            None => Self::die(self.usage, &format!("--{key} is required")),
        }
    }

    /// An optional duration flag in fractional seconds, validated by
    /// [`nonneg_secs`]; zero conventionally means "disabled".
    pub fn opt_secs(&self, key: &str, default: Duration) -> Duration {
        match self.values.get(key) {
            Some(v) => match nonneg_secs(v) {
                Ok(d) => d,
                Err(e) => Self::die(self.usage, &format!("--{key}: {e}")),
            },
            None => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_secs_accepts_fractions_and_rejects_panic_inputs() {
        assert_eq!(positive_secs("0.005").unwrap(), Duration::from_millis(5));
        assert_eq!(positive_secs("60").unwrap(), Duration::from_secs(60));
        for bad in ["nan", "-1", "0", "-0.0", "inf", "-inf", "1e300", "week"] {
            assert!(positive_secs(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn nonneg_secs_allows_zero_only() {
        assert_eq!(nonneg_secs("0").unwrap(), Duration::ZERO);
        assert_eq!(nonneg_secs("30").unwrap(), Duration::from_secs(30));
        for bad in ["nan", "-1", "-0.5", "inf", "1e300", "soon"] {
            assert!(nonneg_secs(bad).is_err(), "`{bad}` must be rejected");
        }
    }
}
