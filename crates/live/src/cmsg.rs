//! Ancillary-data (cmsg) encoding and decoding for the offload tier.
//!
//! Linux's segmentation-offload and timestamping interfaces speak
//! through `msg_control` buffers: `UDP_SEGMENT` carries the segment
//! size of a GSO super-datagram on send, `UDP_GRO` reports the segment
//! size of a coalesced read, and `SO_TIMESTAMPING` attaches an
//! `SCM_TIMESTAMPING` record with the kernel's software RX stamp. The
//! workspace builds offline (no `libc`), so this module implements the
//! `CMSG_*` layout rules by hand — as plain byte-buffer arithmetic,
//! which keeps every function portable, allocation-free, and unit
//! testable on any platform even though only Linux ever feeds it real
//! kernel bytes.
//!
//! Layout (glibc/kernel, 64-bit): a control buffer is a sequence of
//! records, each a 16-byte header (`cmsg_len: usize`, `cmsg_level:
//! i32`, `cmsg_type: i32`) followed by `cmsg_len - 16` bytes of data,
//! padded so the next header starts on a `usize` boundary. `cmsg_len`
//! counts header + data but *not* the trailing padding.
//!
//! Decoding is defensive: [`CmsgIter`] bounds-checks every header and
//! stops (setting [`CmsgIter::malformed`]) on anything inconsistent —
//! the receiver counts those as `cmsg_decode_errors` instead of
//! trusting a hostile or garbled length field.

use std::time::Duration;

/// `SOL_UDP` (= `IPPROTO_UDP`): level for the segmentation options.
pub const SOL_UDP: i32 = 17;
/// `UDP_SEGMENT`: GSO segment size, set per-socket or per-send (cmsg).
pub const UDP_SEGMENT: i32 = 103;
/// `UDP_GRO`: enable receive coalescing; reads then carry the segment
/// size in a cmsg at this level/type.
pub const UDP_GRO: i32 = 104;
/// `SOL_SOCKET`: level for the timestamping option and its cmsg.
pub const SOL_SOCKET: i32 = 1;
/// `SO_TIMESTAMPING` — also the `SCM_TIMESTAMPING` cmsg type.
pub const SO_TIMESTAMPING: i32 = 37;
/// `SCM_TIMESTAMPING`: cmsg type carrying `[timespec; 3]`.
pub const SCM_TIMESTAMPING: i32 = 37;
/// Report a software receive timestamp.
pub const SOF_TIMESTAMPING_RX_SOFTWARE: u32 = 1 << 3;
/// Deliver software timestamps via `SCM_TIMESTAMPING`.
pub const SOF_TIMESTAMPING_SOFTWARE: u32 = 1 << 4;

/// The kernel refuses GSO super-datagrams of more than this many
/// segments (`UDP_MAX_SEGMENTS`).
pub const MAX_GSO_SEGMENTS: usize = 64;
/// A UDP payload (and thus a GSO super-datagram) cannot exceed this.
pub const MAX_GSO_BYTES: usize = 65_535;

/// Alignment unit for cmsg records: `sizeof(size_t)` on the platforms
/// this targets.
const ALIGN: usize = std::mem::size_of::<usize>();

/// Bytes of a cmsg header (`usize` len + two `i32`s, no padding).
pub const HDR_BYTES: usize = ALIGN + 8;

/// `CMSG_ALIGN`: round `len` up to the alignment unit.
pub const fn align(len: usize) -> usize {
    (len + ALIGN - 1) & !(ALIGN - 1)
}

/// `CMSG_SPACE`: bytes one record with `data_len` bytes of data
/// occupies in the buffer, trailing padding included.
pub const fn space(data_len: usize) -> usize {
    align(HDR_BYTES) + align(data_len)
}

/// `CMSG_LEN`: the value of the record's `cmsg_len` field (header +
/// data, no trailing padding).
pub const fn cmsg_len(data_len: usize) -> usize {
    align(HDR_BYTES) + data_len
}

/// Control-buffer bytes the receive ring reserves per slot: enough for
/// an `SCM_TIMESTAMPING` record (16 + 48), a `UDP_GRO` size (16 + 8),
/// and slack for any extra record a future sockopt attaches.
pub const RECV_CONTROL_BYTES: usize = 128;

/// Encode one cmsg record at the start of `buf` (native-endian, like
/// the kernel reads it). Returns the space consumed ([`space`]); the
/// caller appends the next record there.
///
/// # Panics
/// Panics if `buf` is too small for the record.
pub fn write(buf: &mut [u8], level: i32, ty: i32, data: &[u8]) -> usize {
    let need = space(data.len());
    assert!(
        buf.len() >= need,
        "cmsg buffer too small: {} < {need}",
        buf.len()
    );
    buf[..ALIGN].copy_from_slice(&cmsg_len(data.len()).to_ne_bytes());
    buf[ALIGN..ALIGN + 4].copy_from_slice(&level.to_ne_bytes());
    buf[ALIGN + 4..ALIGN + 8].copy_from_slice(&ty.to_ne_bytes());
    buf[HDR_BYTES..HDR_BYTES + data.len()].copy_from_slice(data);
    // Zero the padding so the buffer is deterministic.
    for b in &mut buf[HDR_BYTES + data.len()..need] {
        *b = 0;
    }
    need
}

/// One decoded cmsg record (data borrowed from the control buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cmsg<'a> {
    pub level: i32,
    pub ty: i32,
    pub data: &'a [u8],
}

/// Bounds-checked iterator over a kernel-filled control buffer.
///
/// Stops at the first record whose header does not fit, whose
/// `cmsg_len` is shorter than a header, or whose data runs past the
/// buffer — and records the fact in [`CmsgIter::malformed`] so callers
/// can count it instead of silently truncating.
pub struct CmsgIter<'a> {
    buf: &'a [u8],
    off: usize,
    /// Set when iteration stopped on an inconsistent record rather than
    /// clean exhaustion.
    pub malformed: bool,
}

impl<'a> CmsgIter<'a> {
    /// Iterate the first `len` bytes of a control buffer (`len` is what
    /// the kernel wrote back into `msg_controllen`).
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            off: 0,
            malformed: false,
        }
    }
}

impl<'a> Iterator for CmsgIter<'a> {
    type Item = Cmsg<'a>;

    fn next(&mut self) -> Option<Cmsg<'a>> {
        if self.off >= self.buf.len() {
            return None;
        }
        if self.buf.len() - self.off < HDR_BYTES {
            self.malformed = true;
            return None;
        }
        let b = &self.buf[self.off..];
        let mut len_bytes = [0u8; ALIGN];
        len_bytes.copy_from_slice(&b[..ALIGN]);
        let rec_len = usize::from_ne_bytes(len_bytes);
        let level = i32::from_ne_bytes([b[ALIGN], b[ALIGN + 1], b[ALIGN + 2], b[ALIGN + 3]]);
        let ty = i32::from_ne_bytes([b[ALIGN + 4], b[ALIGN + 5], b[ALIGN + 6], b[ALIGN + 7]]);
        if rec_len < HDR_BYTES || rec_len > self.buf.len() - self.off {
            self.malformed = true;
            return None;
        }
        let data = &b[HDR_BYTES..rec_len];
        self.off += align(rec_len).min(self.buf.len() - self.off);
        Some(Cmsg { level, ty, data })
    }
}

/// Decode an `SCM_TIMESTAMPING` payload: `[timespec; 3]`, software
/// stamp at index 0 (`CLOCK_REALTIME` domain). Returns `None` for a
/// short payload, a zero stamp (the kernel left the slot empty), or a
/// nonsensical negative/overlong nanosecond field.
pub fn parse_scm_timestamping(data: &[u8]) -> Option<Duration> {
    if data.len() < 16 {
        return None;
    }
    let sec = i64::from_ne_bytes(data[0..8].try_into().expect("8 bytes"));
    let nsec = i64::from_ne_bytes(data[8..16].try_into().expect("8 bytes"));
    if sec <= 0 || !(0..1_000_000_000).contains(&nsec) {
        return None;
    }
    Some(Duration::new(sec as u64, nsec as u32))
}

/// Decode a `UDP_GRO` payload (the segment size the read was coalesced
/// from): an `int` on current kernels, `u16` on some early ones.
/// Returns `None` for an empty, zero, negative, or oversized value.
pub fn parse_gro_segment_size(data: &[u8]) -> Option<usize> {
    let v = match data.len() {
        2 => i64::from(u16::from_ne_bytes([data[0], data[1]])),
        4.. => i64::from(i32::from_ne_bytes(data[..4].try_into().expect("4 bytes"))),
        _ => return None,
    };
    if (1..=MAX_GSO_BYTES as i64).contains(&v) {
        Some(v as usize)
    } else {
        None
    }
}

/// Iterator over the `(offset, len)` segment windows of a coalesced
/// read of `total` bytes with segment size `seg`: full segments then
/// one short tail if `total` is not an exact multiple. A `seg` of zero
/// (hostile/garbled) yields the whole payload as one segment — the
/// caller counts the decode error; the data is still deliverable.
pub fn segments(total: usize, seg: usize) -> Segments {
    Segments {
        total,
        seg: if seg == 0 { total.max(1) } else { seg },
        off: 0,
    }
}

/// See [`segments`].
pub struct Segments {
    total: usize,
    seg: usize,
    off: usize,
}

impl Iterator for Segments {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.off >= self.total {
            return None;
        }
        let len = self.seg.min(self.total - self.off);
        let off = self.off;
        self.off += len;
        Some((off, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_iterate_roundtrips_two_records() {
        let mut buf = [0u8; 128];
        let mut off = write(&mut buf, SOL_SOCKET, SCM_TIMESTAMPING, &[1u8; 48]);
        off += write(&mut buf[off..], SOL_UDP, UDP_GRO, &1200i32.to_ne_bytes());
        let mut it = CmsgIter::new(&buf[..off]);
        let first = it.next().unwrap();
        assert_eq!((first.level, first.ty), (SOL_SOCKET, SCM_TIMESTAMPING));
        assert_eq!(first.data, &[1u8; 48]);
        let second = it.next().unwrap();
        assert_eq!((second.level, second.ty), (SOL_UDP, UDP_GRO));
        assert_eq!(parse_gro_segment_size(second.data), Some(1200));
        assert!(it.next().is_none());
        assert!(!it.malformed);
    }

    #[test]
    fn truncated_and_hostile_lengths_stop_with_malformed_flag() {
        // A record claiming more data than the buffer holds.
        let mut buf = [0u8; 64];
        write(&mut buf, SOL_UDP, UDP_GRO, &[0u8; 8]);
        buf[..ALIGN].copy_from_slice(&1_000usize.to_ne_bytes());
        let mut it = CmsgIter::new(&buf);
        assert!(it.next().is_none());
        assert!(it.malformed);
        // A record shorter than its own header.
        buf[..ALIGN].copy_from_slice(&4usize.to_ne_bytes());
        let mut it = CmsgIter::new(&buf);
        assert!(it.next().is_none());
        assert!(it.malformed);
        // A dangling partial header at the tail.
        let mut it = CmsgIter::new(&[0u8; HDR_BYTES - 1]);
        assert!(it.next().is_none());
        assert!(it.malformed);
        // An empty buffer is clean exhaustion, not malformation.
        let mut it = CmsgIter::new(&[]);
        assert!(it.next().is_none());
        assert!(!it.malformed);
    }

    /// The repo's property-test idiom: a seeded LCG drives hostile
    /// inputs through the decoder, which must never panic and must
    /// never yield a record pointing outside the buffer.
    #[test]
    fn garbage_control_buffers_never_panic() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..2_000 {
            let len = (rng() % 96) as usize;
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                *b = rng() as u8;
            }
            let mut records = 0usize;
            let mut it = CmsgIter::new(&buf);
            for c in it.by_ref() {
                assert!(c.data.len() <= buf.len());
                records += 1;
                assert!(records <= buf.len(), "runaway iteration");
            }
            // Also exercise the payload parsers on arbitrary bytes.
            let _ = parse_scm_timestamping(&buf);
            let _ = parse_gro_segment_size(&buf);
        }
    }

    #[test]
    fn timestamping_payload_parses_software_stamp() {
        let mut data = [0u8; 48];
        data[0..8].copy_from_slice(&1_700_000_000i64.to_ne_bytes());
        data[8..16].copy_from_slice(&123_456_789i64.to_ne_bytes());
        assert_eq!(
            parse_scm_timestamping(&data),
            Some(Duration::new(1_700_000_000, 123_456_789))
        );
        // Zero stamp = not stamped; negative/overflowing fields refused.
        assert_eq!(parse_scm_timestamping(&[0u8; 48]), None);
        data[0..8].copy_from_slice(&(-5i64).to_ne_bytes());
        assert_eq!(parse_scm_timestamping(&data), None);
        data[0..8].copy_from_slice(&1i64.to_ne_bytes());
        data[8..16].copy_from_slice(&2_000_000_000i64.to_ne_bytes());
        assert_eq!(parse_scm_timestamping(&data), None);
        assert_eq!(parse_scm_timestamping(&[1u8; 8]), None);
    }

    #[test]
    fn gro_size_rejects_hostile_values() {
        assert_eq!(parse_gro_segment_size(&[]), None);
        assert_eq!(parse_gro_segment_size(&0i32.to_ne_bytes()), None);
        assert_eq!(parse_gro_segment_size(&(-1i32).to_ne_bytes()), None);
        assert_eq!(parse_gro_segment_size(&100_000i32.to_ne_bytes()), None);
        assert_eq!(parse_gro_segment_size(&600u16.to_ne_bytes()), Some(600));
    }

    #[test]
    fn segment_split_covers_every_shape() {
        // Exact multiple.
        let all: Vec<_> = segments(1800, 600).collect();
        assert_eq!(all, vec![(0, 600), (600, 600), (1200, 600)]);
        // Short tail.
        let all: Vec<_> = segments(1500, 600).collect();
        assert_eq!(all, vec![(0, 600), (600, 600), (1200, 300)]);
        // Single segment (payload smaller than the segment size).
        let all: Vec<_> = segments(200, 600).collect();
        assert_eq!(all, vec![(0, 200)]);
        // Zero segment size degrades to one whole-payload segment.
        let all: Vec<_> = segments(500, 0).collect();
        assert_eq!(all, vec![(0, 500)]);
        // Empty payload yields nothing.
        assert_eq!(segments(0, 600).count(), 0);
    }

    /// Seeded sweep over arbitrary (total, seg) pairs: the windows must
    /// exactly tile the payload in order, every window non-empty, and
    /// only the last may be short.
    #[test]
    fn segment_split_property_sweep() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..5_000 {
            let total = (rng() % 70_000) as usize;
            let seg = (rng() % 2_048) as usize;
            let mut expect_off = 0usize;
            let mut windows = 0usize;
            let mut saw_short = false;
            for (off, len) in segments(total, seg) {
                assert_eq!(off, expect_off, "windows must be contiguous");
                assert!(len > 0, "empty window");
                assert!(
                    !saw_short,
                    "a short window may only be the final one (total={total} seg={seg})"
                );
                if seg != 0 && len < seg {
                    saw_short = true;
                }
                expect_off = off + len;
                windows += 1;
                assert!(windows <= total + 1, "runaway split");
            }
            assert_eq!(expect_off, total, "windows must cover the payload");
        }
    }
}
