//! The I/O provider seam: one surface, three backends.
//!
//! The sender, receiver, and control client are written against
//! [`Provider`] / [`Socket`] / [`Clock`] / [`RecvBatch`] / [`SendBatch`]
//! instead of concrete `UdpSocket`s, so the identical stack runs over:
//!
//! - **real UDP** with batched `recvmmsg`/`sendmmsg` syscalls
//!   ([`Provider::Udp`] with [`IoMode::Auto`]/[`IoMode::Batched`]),
//! - **real UDP** one-datagram-at-a-time ([`IoMode::Fallback`]), or
//! - the **[`FaultNet`]** — a seeded in-process virtual network with
//!   virtual time, per-link loss bursts, reordering, duplication,
//!   jitter, and MTU truncation, and no real sockets at all
//!   ([`Provider::Fault`]).
//!
//! Enum dispatch (not a trait object) keeps the hot path monomorphic
//! and the configuration structs plain data: a `Provider` is `Clone`
//! and defaults to real UDP with automatic batching, so existing
//! `..Config::new(..)` call sites keep working unchanged.

use crate::batch_io::{self, BatchReceiver, BatchSender, IoMode};
use crate::faultnet::{FaultDatagram, FaultNet, FaultSocket};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Which I/O backend a component binds its sockets through.
#[derive(Debug, Clone, Default)]
pub enum Provider {
    /// Real UDP sockets; `IoMode` picks batched vs portable syscalls.
    #[default]
    Udp,
    /// Real UDP sockets with an explicit syscall mode.
    UdpWith(IoMode),
    /// The seeded in-process virtual network (virtual time, no
    /// sockets). All components of one run must share the same net.
    Fault(Arc<FaultNet>),
}

impl Provider {
    /// Real UDP with an explicit syscall mode (`Udp` ≡ `Auto`).
    pub fn udp(mode: IoMode) -> Self {
        Provider::UdpWith(mode)
    }

    /// The syscall mode batch rings should use (virtual backends never
    /// reach the syscall layer).
    pub fn io_mode(&self) -> IoMode {
        match self {
            Provider::Udp => IoMode::Auto,
            Provider::UdpWith(mode) => *mode,
            Provider::Fault(_) => IoMode::Fallback,
        }
    }

    /// Bind a datagram socket on this backend.
    pub fn bind(&self, addr: SocketAddr) -> io::Result<Socket> {
        match self {
            Provider::Udp | Provider::UdpWith(_) => Ok(Socket::Udp(UdpSocket::bind(addr)?)),
            Provider::Fault(net) => Ok(Socket::Fault(net.bind(addr)?)),
        }
    }

    /// The clock components must schedule against: wall time for real
    /// sockets, the net's virtual clock for [`Provider::Fault`].
    pub fn clock(&self) -> Clock {
        match self {
            Provider::Udp | Provider::UdpWith(_) => Clock::Real,
            Provider::Fault(net) => Clock::Virtual(net.clone()),
        }
    }
}

/// A bound datagram socket on either backend. Mirrors the blocking
/// `UdpSocket` subset the live tool uses.
#[derive(Debug)]
pub enum Socket {
    Udp(UdpSocket),
    Fault(FaultSocket),
}

impl Socket {
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match self {
            Socket::Udp(s) => s.local_addr(),
            Socket::Fault(s) => Ok(s.local_addr()),
        }
    }

    /// Set the default peer (and drop datagrams from anyone else).
    pub fn connect(&self, peer: SocketAddr) -> io::Result<()> {
        match self {
            Socket::Udp(s) => s.connect(peer),
            Socket::Fault(s) => s.connect(peer),
        }
    }

    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Socket::Udp(s) => s.set_read_timeout(timeout),
            Socket::Fault(s) => s.set_read_timeout(timeout),
        }
    }

    pub fn send(&self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Socket::Udp(s) => s.send(buf),
            Socket::Fault(s) => s.send(buf),
        }
    }

    pub fn send_to(&self, buf: &[u8], dst: SocketAddr) -> io::Result<usize> {
        match self {
            Socket::Udp(s) => s.send_to(buf, dst),
            Socket::Fault(s) => s.send_to(buf, dst),
        }
    }

    /// Receive one datagram from the connected peer (blocking per the
    /// read timeout). Oversized virtual datagrams are clipped to `buf`
    /// like the kernel clips them.
    pub fn recv(&self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Socket::Udp(s) => s.recv(buf),
            Socket::Fault(s) => {
                let msg = s.recv_msg()?;
                let n = msg.data.len().min(buf.len());
                buf[..n].copy_from_slice(&msg.data[..n]);
                Ok(n)
            }
        }
    }

    /// Receive one datagram with its source address.
    pub fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        match self {
            Socket::Udp(s) => s.recv_from(buf),
            Socket::Fault(s) => {
                let msg = s.recv_msg()?;
                let n = msg.data.len().min(buf.len());
                buf[..n].copy_from_slice(&msg.data[..n]);
                Ok((n, msg.src))
            }
        }
    }

    /// Best-effort kernel buffer enlargement (no-op on the virtual
    /// backend, whose queues are unbounded).
    pub fn set_buffer_sizes(&self, recv_bytes: usize, send_bytes: usize) {
        if let Socket::Udp(s) = self {
            batch_io::set_buffer_sizes(s, recv_bytes, send_bytes);
        }
    }

    /// The underlying OS file descriptor, where the backend has one —
    /// what an epoll readiness loop registers. Virtual sockets have no
    /// fd (their readiness is the virtual clock's business), so callers
    /// must fall back to the timeout loop for them.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> Option<i32> {
        match self {
            Socket::Udp(s) => Some(std::os::fd::AsRawFd::as_raw_fd(s)),
            Socket::Fault(_) => None,
        }
    }
}

/// Process-wide epoch for [`Clock::Real`], so every component in one
/// process measures `now()` against the same anchor (the first call).
fn real_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Real sleeps wake at this granularity to re-check their abort flag.
const SLEEP_CHUNK: Duration = Duration::from_millis(50);

static NEVER_ABORT: AtomicBool = AtomicBool::new(false);

/// The time source a component schedules against.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Wall time (monotonic, process-wide epoch).
    Real,
    /// A [`FaultNet`]'s virtual clock.
    Virtual(Arc<FaultNet>),
}

impl Clock {
    /// Time since the clock's epoch.
    pub fn now(&self) -> Duration {
        match self {
            Clock::Real => real_anchor().elapsed(),
            Clock::Virtual(net) => net.now(),
        }
    }

    /// Sleep for `dur` (virtual backends advance virtual time).
    pub fn sleep(&self, dur: Duration) {
        match self {
            Clock::Real => std::thread::sleep(dur),
            Clock::Virtual(net) => {
                let due = net.now() + dur;
                net.sleep_until(due, &NEVER_ABORT);
            }
        }
    }

    /// Sleep until `due` (since the epoch), waking early — and
    /// returning `false` — if `abort` flips. Virtual sleepers wake on
    /// [`Clock::notify_waiters`] to observe the flag.
    pub fn sleep_until(&self, due: Duration, abort: &AtomicBool) -> bool {
        match self {
            Clock::Real => loop {
                if abort.load(Ordering::Relaxed) {
                    return false;
                }
                let now = real_anchor().elapsed();
                if now >= due {
                    return true;
                }
                std::thread::sleep((due - now).min(SLEEP_CHUNK));
            },
            Clock::Virtual(net) => net.sleep_until(due, abort),
        }
    }

    /// Wake virtual sleepers so they re-check their abort flags (no-op
    /// on the real clock, whose sleeps poll).
    pub fn notify_waiters(&self) {
        if let Clock::Virtual(net) = self {
            net.notify_waiters();
        }
    }

    /// Run `f` — typically a thread join — without counting this thread
    /// as busy in a virtual net, so virtual time keeps advancing for
    /// the thread being joined. Plain call on the real clock.
    pub fn unenrolled<T>(&self, f: impl FnOnce() -> T) -> T {
        match self {
            Clock::Real => f(),
            Clock::Virtual(net) => net.unenrolled(f),
        }
    }

    /// Pre-register a thread that is about to be spawned: call this
    /// *before* `thread::spawn`, move the enlistment into the closure,
    /// and have the child [`Clock::adopt`] it first thing. On a virtual
    /// clock this pins virtual time until the child is actually
    /// running, so peers cannot burn their timeouts against a thread
    /// the OS has not scheduled yet. No-op on the real clock.
    pub fn enlist(&self) -> Enlistment {
        match self {
            Clock::Real => Enlistment::Real,
            Clock::Virtual(net) => Enlistment::Virtual(net.reserve()),
        }
    }

    /// Claim an [`Enlistment`] from the spawning thread (see
    /// [`Clock::enlist`]).
    pub fn adopt(&self, enlistment: Enlistment) {
        if let (Clock::Virtual(net), Enlistment::Virtual(ticket)) = (self, enlistment) {
            net.adopt(ticket);
        }
    }
}

/// A participant reservation handed across a thread spawn (see
/// [`Clock::enlist`]).
#[must_use = "move the enlistment into the spawned thread and adopt it"]
pub enum Enlistment {
    /// Real clock: nothing to carry.
    Real,
    /// Virtual clock: the reserved busy token.
    Virtual(crate::faultnet::Ticket),
}

/// Where an arrival timestamp came from — the kernel's per-datagram
/// software RX stamp (taken in the network stack, before scheduler
/// noise) or the userspace clock read after the receive syscall
/// returned. The tag rides with every arrival through the receiver's
/// qdelay pipeline and into persisted records, so analysis can tell
/// precision-grade stamps from fallback ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestampSource {
    /// Kernel software RX stamp (or the virtual net's exact delivery
    /// stamp, which has the same per-datagram precision property).
    Kernel,
    /// Userspace clock read after the receive call — the whole batch
    /// shares one reading, so it carries batching + scheduler noise.
    User,
}

/// A batched-receive ring over either backend: real rings issue
/// `recvmmsg`, virtual rings drain the socket's inbox, and both expose
/// per-datagram payload, source, truncation flag, and a tagged arrival
/// stamp (see [`RecvBatch::stamp`]).
pub struct RecvBatch {
    inner: RecvInner,
}

// One `RecvBatch` exists per drain thread for the life of a session, so
// the size gap between the real ring (which owns its iovec/cmsg
// bookkeeping inline) and the small virtual arm costs nothing; boxing
// the ring would buy an indirection on every hot-path access instead.
#[allow(clippy::large_enum_variant)]
enum RecvInner {
    Udp(BatchReceiver),
    Fault {
        cap: usize,
        msgs: Vec<FaultDatagram>,
        recvs: u64,
        datagrams: u64,
        truncated: u64,
    },
}

impl RecvBatch {
    /// A ring of `cap` slots on the given backend.
    pub fn new(cap: usize, provider: &Provider) -> Self {
        let inner = match provider {
            Provider::Udp | Provider::UdpWith(_) => {
                RecvInner::Udp(BatchReceiver::new(cap, provider.io_mode()))
            }
            Provider::Fault(_) => RecvInner::Fault {
                cap,
                msgs: Vec::with_capacity(cap),
                recvs: 0,
                datagrams: 0,
                truncated: 0,
            },
        };
        Self { inner }
    }

    /// Block (per the socket's read timeout) for at least one datagram,
    /// then drain whatever else is already queued, up to capacity.
    /// Returns how many datagrams are readable via
    /// [`RecvBatch::datagram`].
    pub fn recv(&mut self, socket: &Socket) -> io::Result<usize> {
        match (&mut self.inner, socket) {
            (RecvInner::Udp(ring), Socket::Udp(s)) => ring.recv(s),
            (
                RecvInner::Fault {
                    cap,
                    msgs,
                    recvs,
                    datagrams,
                    truncated,
                },
                Socket::Fault(s),
            ) => {
                msgs.clear();
                msgs.push(s.recv_msg()?);
                while msgs.len() < *cap {
                    match s.try_recv_msg() {
                        Some(m) => msgs.push(m),
                        None => break,
                    }
                }
                *recvs += 1;
                *datagrams += msgs.len() as u64;
                *truncated += msgs.iter().filter(|m| m.truncated).count() as u64;
                Ok(msgs.len())
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "socket backend does not match this ring",
            )),
        }
    }

    /// Datagram `i` of the last recv (panics past its return value).
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        match &self.inner {
            RecvInner::Udp(ring) => ring.datagram(i),
            RecvInner::Fault { msgs, .. } => (&msgs[i].data, msgs[i].src),
        }
    }

    /// Whether datagram `i` arrived clipped (drop it, don't decode it).
    pub fn is_truncated(&self, i: usize) -> bool {
        match &self.inner {
            RecvInner::Udp(ring) => ring.is_truncated(i),
            RecvInner::Fault { msgs, .. } => msgs[i].truncated,
        }
    }

    /// Arrival stamp of datagram `i` of the last recv, on the caller's
    /// clock, tagged with where it came from.
    ///
    /// `batch_abs` is the caller's own clock reading for this batch.
    /// Real sockets with kernel RX timestamping return
    /// [`TimestampSource::Kernel`]: the kernel's per-datagram software
    /// stamp, re-anchored to the caller's clock by subtracting the
    /// stamp's age from `batch_abs` (pre-scheduler-noise precision
    /// without ever mixing clock domains). Without a kernel stamp the
    /// batch time itself comes back as [`TimestampSource::User`]. The
    /// virtual backend's exact delivery stamps count as `Kernel` — they
    /// are per-datagram and scheduler-noise-free by construction, which
    /// keeps differential runs exercising the same downstream paths.
    pub fn stamp(&self, i: usize, batch_abs: Duration) -> (Duration, TimestampSource) {
        match &self.inner {
            RecvInner::Udp(ring) => match ring.stamp_age_ns(i) {
                Some(age) => (
                    batch_abs.saturating_sub(Duration::from_nanos(age)),
                    TimestampSource::Kernel,
                ),
                None => (batch_abs, TimestampSource::User),
            },
            RecvInner::Fault { msgs, .. } => (msgs[i].stamp, TimestampSource::Kernel),
        }
    }

    /// Receive calls (syscalls on the real backend) issued so far.
    pub fn syscalls(&self) -> u64 {
        match &self.inner {
            RecvInner::Udp(ring) => ring.syscalls(),
            RecvInner::Fault { recvs, .. } => *recvs,
        }
    }

    /// Datagrams received so far.
    pub fn datagrams(&self) -> u64 {
        match &self.inner {
            RecvInner::Udp(ring) => ring.datagrams(),
            RecvInner::Fault { datagrams, .. } => *datagrams,
        }
    }

    /// Datagrams received clipped so far.
    pub fn truncated(&self) -> u64 {
        match &self.inner {
            RecvInner::Udp(ring) => ring.truncated(),
            RecvInner::Fault { truncated, .. } => *truncated,
        }
    }

    /// Logical datagrams produced by splitting GRO super-datagrams (real
    /// backend only; the virtual net never coalesces).
    pub fn gro_segments_split(&self) -> u64 {
        match &self.inner {
            RecvInner::Udp(ring) => ring.gro_segments_split(),
            RecvInner::Fault { .. } => 0,
        }
    }

    /// Control messages that failed to decode sanely (real backend only).
    pub fn cmsg_decode_errors(&self) -> u64 {
        match &self.inner {
            RecvInner::Udp(ring) => ring.cmsg_decode_errors(),
            RecvInner::Fault { .. } => 0,
        }
    }
}

/// A batched sender for a **connected** socket on either backend.
pub struct SendBatch {
    inner: SendInner,
}

enum SendInner {
    Udp(BatchSender),
    Fault { sends: u64, datagrams: u64 },
}

impl SendBatch {
    /// A sender batching up to `cap` datagrams per call.
    pub fn new(cap: usize, provider: &Provider) -> Self {
        let inner = match provider {
            Provider::Udp | Provider::UdpWith(_) => {
                SendInner::Udp(BatchSender::new(cap, provider.io_mode()))
            }
            Provider::Fault(_) => SendInner::Fault {
                sends: 0,
                datagrams: 0,
            },
        };
        Self { inner }
    }

    /// Send `count` equal `seg_bytes`-sized segments of `buf` — a probe
    /// train in one flat buffer. Returns how many datagrams were
    /// accepted (a prefix; callers loop), with errors always referring
    /// to the first unsent segment.
    ///
    /// The virtual arm emulates kernel segmentation exactly: the flat
    /// buffer is split at `seg_bytes` and delivered as `count` ordinary
    /// datagrams **in order**, so every per-datagram fault draw (loss,
    /// jitter, reorder, duplication) happens in the same sequence a
    /// non-offloaded send would produce. That is what keeps differential
    /// tests byte-identical across all `IoMode`s on a fixed seed.
    pub fn send_segments(
        &mut self,
        socket: &Socket,
        buf: &[u8],
        seg_bytes: usize,
        count: usize,
    ) -> io::Result<usize> {
        match (&mut self.inner, socket) {
            (SendInner::Udp(tx), Socket::Udp(s)) => tx.send_segments(s, buf, seg_bytes, count),
            (SendInner::Fault { sends, datagrams }, Socket::Fault(s)) => {
                assert!(
                    count * seg_bytes <= buf.len(),
                    "train overruns its buffer: {count} x {seg_bytes} > {}",
                    buf.len()
                );
                for i in 0..count {
                    s.send(&buf[i * seg_bytes..(i + 1) * seg_bytes])?;
                }
                *sends += 1;
                *datagrams += count as u64;
                Ok(count)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "socket backend does not match this sender",
            )),
        }
    }

    /// Send calls (syscalls on the real backend) issued so far.
    pub fn syscalls(&self) -> u64 {
        match &self.inner {
            SendInner::Udp(tx) => tx.syscalls(),
            SendInner::Fault { sends, .. } => *sends,
        }
    }

    /// Datagrams handed to the backend so far.
    pub fn datagrams(&self) -> u64 {
        match &self.inner {
            SendInner::Udp(tx) => tx.datagrams(),
            SendInner::Fault { datagrams, .. } => *datagrams,
        }
    }

    /// Trains submitted through `UDP_SEGMENT` offload so far (real
    /// backend only; the virtual net's emulated segmentation is not an
    /// offload).
    pub fn gso_sends(&self) -> u64 {
        match &self.inner {
            SendInner::Udp(tx) => tx.gso_sends(),
            SendInner::Fault { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_provider_is_real_udp_with_auto_batching() {
        let p = Provider::default();
        assert!(matches!(p, Provider::Udp));
        assert_eq!(p.io_mode(), IoMode::Auto);
        assert!(matches!(p.clock(), Clock::Real));
    }

    #[test]
    fn udp_sockets_roundtrip_through_the_seam() {
        let p = Provider::udp(IoMode::Fallback);
        let rx = p.bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let tx = p.bind("127.0.0.1:0".parse().unwrap()).unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        tx.send(b"ping").unwrap();
        let mut buf = [0u8; 16];
        let (n, src) = rx.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        assert_eq!(src, tx.local_addr().unwrap());
    }

    #[test]
    fn fault_batch_ring_drains_queued_datagrams_with_stamps() {
        let net = FaultNet::new(11);
        let p = Provider::Fault(net.clone());
        let rx = p.bind("10.0.0.1:9".parse().unwrap()).unwrap();
        let tx = p.bind("10.0.0.2:9".parse().unwrap()).unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut sender = SendBatch::new(8, &p);
        let train = [7u8; 96];
        assert_eq!(sender.send_segments(&tx, &train, 32, 3).unwrap(), 3);
        let mut ring = RecvBatch::new(8, &p);
        let n = ring.recv(&rx).unwrap();
        assert_eq!(n, 3, "queued virtual datagrams drain in one call");
        let batch_abs = Duration::from_secs(1000);
        for i in 0..n {
            let (data, src) = ring.datagram(i);
            assert_eq!(data, &[7u8; 32]);
            assert_eq!(src, tx.local_addr().unwrap());
            let (stamp, source) = ring.stamp(i, batch_abs);
            assert_eq!(source, TimestampSource::Kernel, "virtual stamps are exact");
            assert_ne!(
                stamp, batch_abs,
                "virtual stamp is per-datagram, not batch time"
            );
            assert!(!ring.is_truncated(i));
        }
        assert_eq!(ring.syscalls(), 1);
        assert_eq!(ring.datagrams(), 3);
        assert_eq!(ring.gro_segments_split(), 0);
        assert_eq!(ring.cmsg_decode_errors(), 0);
        assert_eq!(sender.gso_sends(), 0);
    }

    #[test]
    fn fault_segment_send_matches_per_datagram_sends_on_a_seed() {
        // Two identical virtual nets on one seed: a flat segmented train
        // through one must produce the same deliveries as hand-split
        // per-datagram sends through the other — the emulation contract
        // that keeps differential tests byte-identical across IoModes.
        let run = |segmented: bool| -> Vec<(Vec<u8>, Duration)> {
            let net = FaultNet::new(4242);
            let p = Provider::Fault(net.clone());
            let rx = p.bind("10.0.0.1:9".parse().unwrap()).unwrap();
            let tx = p.bind("10.0.0.2:9".parse().unwrap()).unwrap();
            tx.connect(rx.local_addr().unwrap()).unwrap();
            rx.set_read_timeout(Some(Duration::from_millis(10)))
                .unwrap();
            let mut buf = vec![0u8; 6 * 48];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            if segmented {
                let mut sender = SendBatch::new(8, &p);
                assert_eq!(sender.send_segments(&tx, &buf, 48, 6).unwrap(), 6);
            } else {
                for i in 0..6 {
                    tx.send(&buf[i * 48..(i + 1) * 48]).unwrap();
                }
            }
            let mut ring = RecvBatch::new(8, &p);
            let mut out = Vec::new();
            while let Ok(n) = ring.recv(&rx) {
                for i in 0..n {
                    let (data, _) = ring.datagram(i);
                    let (stamp, _) = ring.stamp(i, Duration::ZERO);
                    out.push((data.to_vec(), stamp));
                }
                if out.len() >= 6 {
                    break;
                }
            }
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn mismatched_backend_is_an_input_error() {
        let p_udp = Provider::udp(IoMode::Fallback);
        let sock = p_udp.bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let net = FaultNet::new(1);
        let mut ring = RecvBatch::new(4, &Provider::Fault(net));
        let err = ring.recv(&sock).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
