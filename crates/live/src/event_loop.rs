//! Event-driven readiness for the receiver's drain loops.
//!
//! The pre-fleet receiver woke every [`crate::receiver`] poll interval
//! (25 ms) per drain thread just to re-check its stop flag and idle
//! watchdog — cheap with 8 sessions, pure waste with 10k mostly-idle
//! ones. This module gives the drain loop a readiness primitive instead:
//! on Linux a shared **epoll** instance watches the receive socket plus
//! an **eventfd** wake channel, so an idle receiver parks in
//! `epoll_wait` until a datagram actually arrives, the idle-watchdog
//! deadline comes due, or [`PollWaker::wake`] is called (server stop, a
//! peer drain thread flipping `done`). Sessions that are idle cost zero
//! wakeups and zero threads — the same drain threads serve all of them.
//!
//! The workspace is fully offline (no `libc` crate), so the syscalls are
//! hand-declared against the C library in a `sys` module, in the same
//! style as `batch_io.rs`. Every other platform — and the virtual
//! [`crate::faultnet::FaultNet`] backend, whose sockets have no fd — gets
//! [`PollMode::Timeout`]: [`Poller::wait`] reports ready immediately and
//! the caller's blocking `recv` (bounded by the socket read timeout)
//! provides the pacing, which is exactly the pre-epoll behaviour.
//!
//! Only the **control path's scheduling** changes: once `epoll_wait`
//! reports the socket readable, datagrams are still drained through the
//! blocking batched ring (`recvmmsg` with `MSG_WAITFORONE`), so the
//! probe fast path keeps its one-syscall-per-batch shape. Readiness
//! decides *when* to call recv, never *how*. This holds for the
//! offload tier too: with `UDP_GRO` enabled a "readable" socket may
//! yield coalesced super-datagrams, but level-triggered epoll only
//! cares that the receive queue is non-empty — the ring splits the
//! segments after the wakeup, invisibly to this module.

use crate::provider::Socket;
use std::io;
use std::time::Duration;

/// How a drain loop waits for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollMode {
    /// Epoll readiness where the platform and backend support it
    /// (Linux, real UDP sockets), the timeout loop elsewhere.
    #[default]
    Auto,
    /// Epoll readiness. Fails socket setup on platforms or backends
    /// without it (virtual sockets have no fd to register).
    Epoll,
    /// The portable polling loop: blocking recv bounded by the socket
    /// read timeout, re-checking flags between calls.
    Timeout,
}

impl PollMode {
    /// Whether this mode resolves to the epoll implementation for the
    /// given socket.
    pub fn use_epoll(self, socket: &Socket) -> bool {
        let fd_backed = matches!(socket, Socket::Udp(_));
        match self {
            PollMode::Auto | PollMode::Epoll => cfg!(target_os = "linux") && fd_backed,
            PollMode::Timeout => false,
        }
    }
}

impl std::str::FromStr for PollMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(PollMode::Auto),
            "epoll" => Ok(PollMode::Epoll),
            "timeout" => Ok(PollMode::Timeout),
            other => Err(format!(
                "unknown poll mode {other:?} (expected auto|epoll|timeout)"
            )),
        }
    }
}

/// What a [`Poller::wait`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// The socket is readable (or this is the timeout backend, which
    /// always proceeds straight to its blocking recv).
    Ready,
    /// The timeout elapsed with nothing readable.
    TimedOut,
    /// [`PollWaker::wake`] was called (or the wait was interrupted):
    /// re-check stop/done flags before waiting again.
    Woken,
}

/// A wake channel into a [`Poller`]'s `epoll_wait` — an eventfd on the
/// epoll backend, a no-op on the timeout backend (whose loops re-check
/// their flags every blocking-recv timeout anyway). Shared by handle
/// and drain threads; waking is async-signal-cheap (one `write`).
#[derive(Debug)]
pub struct PollWaker {
    #[cfg(target_os = "linux")]
    fd: i32,
    #[cfg(not(target_os = "linux"))]
    fd: (),
}

impl PollWaker {
    /// A wake channel. `active` is whether an epoll poller will actually
    /// watch it (timeout-mode wakers hold no fd at all).
    pub fn new(active: bool) -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            let fd = if active {
                // SAFETY: plain syscall; the returned fd is owned here
                // and closed in Drop.
                let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
                if fd < 0 {
                    return Err(io::Error::last_os_error());
                }
                fd
            } else {
                -1
            };
            Ok(Self { fd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = active;
            Ok(Self { fd: () })
        }
    }

    /// Wake every thread parked in [`Poller::wait`]. Best-effort and
    /// idempotent: the eventfd counter saturates, never blocks the
    /// caller, and is drained by whichever waiter sees it first.
    pub fn wake(&self) {
        #[cfg(target_os = "linux")]
        if self.fd >= 0 {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack value to an fd
            // this struct owns. EAGAIN (counter full) still wakes.
            let _ = unsafe { sys::write(self.fd, (&raw const one).cast(), 8) };
        }
    }

    /// Drain the wake counter so a consumed wake does not spin the
    /// level-triggered epoll. Called by waiters, never by wakers.
    fn drain(&self) {
        #[cfg(target_os = "linux")]
        if self.fd >= 0 {
            let mut buf = 0u64;
            // SAFETY: reads 8 bytes into a live stack value; the fd is
            // nonblocking so an already-drained counter returns EAGAIN.
            let _ = unsafe { sys::read(self.fd, (&raw mut buf).cast(), 8) };
        }
    }

    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> i32 {
        self.fd
    }
}

impl Drop for PollWaker {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if self.fd >= 0 {
            // SAFETY: closing an fd this struct owns, exactly once.
            unsafe { sys::close(self.fd) };
        }
    }
}

/// A readiness waiter over one receive socket. One instance is shared by
/// every drain thread of a server (`epoll_wait` on one epoll fd from
/// several threads is the intended kernel usage; each waiter brings its
/// own event buffer).
#[derive(Debug)]
pub struct Poller {
    imp: Imp,
}

#[derive(Debug)]
enum Imp {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: i32,
    },
    Timeout,
}

/// `epoll_event.data` tag for the receive socket.
#[cfg(target_os = "linux")]
const TAG_SOCKET: u64 = 0;
/// `epoll_event.data` tag for the waker eventfd.
#[cfg(target_os = "linux")]
const TAG_WAKER: u64 = 1;

impl Poller {
    /// Build the resolved poller for `socket`. With [`PollMode::Epoll`]
    /// on an unsupported platform/backend this errors; [`PollMode::Auto`]
    /// silently takes the timeout loop instead.
    pub fn new(socket: &Socket, mode: PollMode, waker: &PollWaker) -> io::Result<Self> {
        if !mode.use_epoll(socket) {
            if mode == PollMode::Epoll {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll polling needs a Linux fd-backed socket",
                ));
            }
            return Ok(Self { imp: Imp::Timeout });
        }
        #[cfg(target_os = "linux")]
        {
            let sock_fd = socket
                .raw_fd()
                .expect("use_epoll implies an fd-backed socket");
            // SAFETY: plain syscalls. The epoll fd is owned here and
            // closed in Drop; registered fds (socket, eventfd) outlive
            // the poller by construction (the server owns all three).
            unsafe {
                let epfd = sys::epoll_create1(sys::EPOLL_CLOEXEC);
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                let mut ev = sys::epoll_event {
                    events: sys::EPOLLIN,
                    data: TAG_SOCKET,
                };
                if sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, sock_fd, &mut ev) < 0 {
                    let e = io::Error::last_os_error();
                    sys::close(epfd);
                    return Err(e);
                }
                if waker.raw_fd() >= 0 {
                    let mut ev = sys::epoll_event {
                        events: sys::EPOLLIN,
                        data: TAG_WAKER,
                    };
                    if sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, waker.raw_fd(), &mut ev) < 0 {
                        let e = io::Error::last_os_error();
                        sys::close(epfd);
                        return Err(e);
                    }
                }
                Ok(Self {
                    imp: Imp::Epoll { epfd },
                })
            }
        }
        #[cfg(not(target_os = "linux"))]
        unreachable!("use_epoll is false off Linux")
    }

    /// The plain timeout-loop poller, unconditionally. The fallback when
    /// an epoll backend cannot come up: readiness is an optimization and
    /// the caller's socket read timeout keeps the loop correct without it.
    pub fn timeout() -> Self {
        Self { imp: Imp::Timeout }
    }

    /// Whether this poller parks in epoll (true) or defers pacing to the
    /// caller's blocking recv (false).
    pub fn is_epoll(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            matches!(self.imp, Imp::Epoll { .. })
        }
        #[cfg(not(target_os = "linux"))]
        {
            false
        }
    }

    /// Wait until the socket is readable, `timeout` elapses, or the
    /// waker fires. The timeout backend returns [`Wait::Ready`]
    /// immediately — its caller's blocking recv (bounded by the socket
    /// read timeout) is the wait.
    pub fn wait(&self, timeout: Duration, waker: &PollWaker) -> Wait {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd } => {
                let ms: i32 = timeout.as_millis().min(i32::MAX as u128) as i32;
                let mut events = [sys::epoll_event { events: 0, data: 0 }; 4];
                // SAFETY: the events buffer is a live stack array sized
                // by the len we pass; epfd is owned by self.
                let n = unsafe {
                    sys::epoll_wait(*epfd, events.as_mut_ptr(), events.len() as i32, ms.max(0))
                };
                if n < 0 {
                    // EINTR and friends: surface as a spurious wake so
                    // the loop re-checks its flags and parks again.
                    return Wait::Woken;
                }
                if n == 0 {
                    return Wait::TimedOut;
                }
                let mut ready = false;
                let mut woken = false;
                for ev in &events[..n as usize] {
                    // Copy out of the (packed on x86_64) event struct
                    // before inspecting.
                    let tag = ev.data;
                    if tag == TAG_SOCKET {
                        ready = true;
                    } else {
                        woken = true;
                    }
                }
                if woken {
                    waker.drain();
                }
                if ready {
                    Wait::Ready
                } else {
                    Wait::Woken
                }
            }
            Imp::Timeout => Wait::Ready,
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Imp::Epoll { epfd } = self.imp {
            // SAFETY: closing an fd this struct owns, exactly once.
            unsafe { sys::close(epfd) };
        }
    }
}

/// Hand-declared Linux syscall surface (the workspace builds offline,
/// without the `libc` crate) — same idiom as `batch_io::sys`.
#[cfg(target_os = "linux")]
mod sys {
    #![allow(non_camel_case_types)]

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLLIN: u32 = 0x1;
    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    /// The kernel ABI packs `epoll_event` on x86-64 only (see
    /// `EPOLL_PACKED` in the kernel's `eventpoll.h`); other
    /// architectures use natural `repr(C)` layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32)
            -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::Provider;

    fn udp_pair() -> (Socket, Socket) {
        let p = Provider::default();
        let rx = p.bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let tx = p.bind("127.0.0.1:0".parse().unwrap()).unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        (rx, tx)
    }

    #[test]
    fn poll_mode_parses() {
        assert_eq!("auto".parse::<PollMode>().unwrap(), PollMode::Auto);
        assert_eq!("epoll".parse::<PollMode>().unwrap(), PollMode::Epoll);
        assert_eq!("timeout".parse::<PollMode>().unwrap(), PollMode::Timeout);
        assert!("select".parse::<PollMode>().is_err());
    }

    #[test]
    fn timeout_mode_always_reports_ready() {
        let (rx, _tx) = udp_pair();
        let waker = PollWaker::new(false).unwrap();
        let poller = Poller::new(&rx, PollMode::Timeout, &waker).unwrap();
        assert!(!poller.is_epoll());
        assert_eq!(poller.wait(Duration::from_millis(1), &waker), Wait::Ready);
    }

    #[test]
    fn virtual_sockets_resolve_to_the_timeout_loop() {
        let net = crate::faultnet::FaultNet::new(3);
        let p = Provider::Fault(net);
        let sock = p.bind("10.9.0.1:1".parse().unwrap()).unwrap();
        assert!(!PollMode::Auto.use_epoll(&sock));
        let waker = PollWaker::new(false).unwrap();
        let poller = Poller::new(&sock, PollMode::Auto, &waker).unwrap();
        assert!(!poller.is_epoll());
        // Forcing epoll on a backend with no fd is a loud setup error,
        // not a silent downgrade.
        assert!(Poller::new(&sock, PollMode::Epoll, &waker).is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_wakes_on_data_timeout_and_waker() {
        let (rx, tx) = udp_pair();
        let waker = PollWaker::new(true).unwrap();
        let poller = Poller::new(&rx, PollMode::Auto, &waker).unwrap();
        assert!(poller.is_epoll());

        // Nothing readable: the wait times out.
        assert_eq!(
            poller.wait(Duration::from_millis(10), &waker),
            Wait::TimedOut
        );

        // A datagram makes it ready — and stays ready (level-triggered)
        // until drained.
        tx.send(b"ping").unwrap();
        assert_eq!(poller.wait(Duration::from_secs(5), &waker), Wait::Ready);
        assert_eq!(poller.wait(Duration::from_secs(5), &waker), Wait::Ready);
        let mut buf = [0u8; 16];
        rx.recv(&mut buf).unwrap();
        assert_eq!(
            poller.wait(Duration::from_millis(10), &waker),
            Wait::TimedOut
        );

        // The waker cuts a long park short and is drained by the waiter.
        waker.wake();
        assert_eq!(poller.wait(Duration::from_secs(5), &waker), Wait::Woken);
        assert_eq!(
            poller.wait(Duration::from_millis(10), &waker),
            Wait::TimedOut
        );
    }
}
