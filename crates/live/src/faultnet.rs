//! An in-process, seeded virtual network with virtual time.
//!
//! `FaultNet` carries the *full* live datapath — control plane and probe
//! trains — between in-process senders and receivers with **no real
//! sockets and no real timers**. Datagrams traverse per-link fault
//! models (Gilbert–Elliott loss bursts, reordering, duplication,
//! latency jitter, MTU truncation), every random draw comes from a
//! per-link RNG seeded from the net seed and the link endpoints, and
//! time is a shared virtual clock that only advances when every
//! participating thread is parked in a virtual wait. The same seed
//! therefore reproduces the same run, byte for byte: bug reproduction
//! becomes a one-seed unit test instead of "rerun loopback 100×".
//!
//! ## Virtual time
//!
//! Threads interact with the net through [`FaultSocket`]s and the
//! virtual clock ([`crate::provider::Clock`]). A thread is *enrolled*
//! the first time it touches the net and counts as **busy** until it
//! parks in a virtual wait (a blocking receive, a timed sleep) or
//! exits. When the busy count hits zero, the parked thread that
//! notices advances the clock to the earliest pending event — the next
//! in-flight datagram delivery or the next wait deadline — delivers
//! what matured, and hands a wake *token* to each waiter whose
//! condition is now satisfiable. Tokens pre-count the woken threads as
//! busy, so a second advance cannot overshoot an event another thread
//! has not yet observed. The result is a cooperative lockstep: thread
//! switches happen only at virtual wait points, which is what makes
//! the schedule — and therefore every timestamp and RNG draw —
//! deterministic regardless of real scheduling.
//!
//! A thread that must block on something *outside* the net (joining
//! another enrolled thread, most commonly) wraps the wait in
//! [`FaultNet::unenrolled`] so the virtual world keeps moving
//! underneath it.
//!
//! ## Segmentation offload under FaultNet
//!
//! The virtual net emulates the kernel's GSO contract at the provider
//! seam: a segmented send (`SendBatch::send_segments`) is split into
//! per-datagram sends *in submission order*, so every fault draw (loss
//! state transition, jitter, reordering, duplication) consumes RNG
//! state exactly as a non-offloaded send would — a seed produces the
//! same run whether the caller batches, segments, or sends one at a
//! time. Delivery stamps are per-datagram and exact by construction,
//! which is why the virtual receive path reports
//! [`crate::provider::TimestampSource::Kernel`].
//!
//! ## Determinism contract
//!
//! For a fixed seed, topology, and fault configuration, and one drain
//! thread per socket: send times, per-datagram delivery times, loss /
//! duplication / reordering decisions, and therefore sender manifests
//! and receiver report chunks are identical across runs — asserted
//! byte-for-byte in `tests/faultnet.rs`. Control-plane *liveness*
//! traffic (heartbeat counts, retry timing) may interleave
//! differently between runs, but by construction it cannot perturb
//! the probe link's RNG stream or the finalized report snapshot.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::Duration;

/// Per-link fault configuration. The default link is clean: a small
/// constant latency, no jitter, no loss, no reordering, no duplication,
/// no MTU limit.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    /// Base one-way latency.
    pub latency: Duration,
    /// Uniform extra delay in `[0, jitter)` per datagram.
    pub jitter: Duration,
    /// Loss probability while the Gilbert–Elliott chain is GOOD.
    pub loss_good: f64,
    /// Loss probability while the chain is BAD (bursty-loss episodes).
    pub loss_bad: f64,
    /// Per-datagram probability of entering the BAD state.
    pub p_enter_bad: f64,
    /// Per-datagram probability of leaving the BAD state.
    pub p_exit_bad: f64,
    /// Probability a datagram is duplicated (the copy takes an
    /// independent jitter draw on top of `latency + reorder_extra`).
    pub dup_prob: f64,
    /// Probability a datagram is held back by `reorder_extra`, landing
    /// after datagrams sent later.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered datagrams.
    pub reorder_extra: Duration,
    /// Truncate datagrams to this many bytes (delivered marked
    /// truncated, like a kernel `MSG_TRUNC`). `None` carries any size.
    pub mtu: Option<usize>,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self {
            latency: Duration::from_micros(100),
            jitter: Duration::ZERO,
            loss_good: 0.0,
            loss_bad: 0.0,
            p_enter_bad: 0.0,
            p_exit_bad: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_extra: Duration::from_millis(2),
            mtu: None,
        }
    }
}

impl LinkFaults {
    /// Uniform (state-independent) datagram loss.
    pub fn uniform_loss(p: f64) -> Self {
        Self {
            loss_good: p,
            loss_bad: p,
            ..Self::default()
        }
    }

    /// Bursty loss: a Gilbert–Elliott chain that is lossless in GOOD
    /// and loses `loss_bad` of datagrams in BAD.
    pub fn gilbert_elliott(p_enter_bad: f64, p_exit_bad: f64, loss_bad: f64) -> Self {
        Self {
            p_enter_bad,
            p_exit_bad,
            loss_bad,
            ..Self::default()
        }
    }

    /// Add reordering: with probability `prob` a datagram is delayed by
    /// `extra` beyond the link latency.
    pub fn with_reordering(mut self, prob: f64, extra: Duration) -> Self {
        self.reorder_prob = prob;
        self.reorder_extra = extra;
        self
    }

    /// Add duplication with the given per-datagram probability.
    pub fn with_duplication(mut self, prob: f64) -> Self {
        self.dup_prob = prob;
        self
    }

    /// Add uniform latency jitter in `[0, jitter)`.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Truncate datagrams larger than `bytes` (delivered marked
    /// truncated).
    pub fn with_mtu(mut self, bytes: usize) -> Self {
        self.mtu = Some(bytes);
        self
    }
}

/// One datagram as delivered by the virtual network.
#[derive(Debug, Clone)]
pub struct FaultDatagram {
    /// Payload (already truncated to the link MTU if one applied).
    pub data: Vec<u8>,
    /// Sender's bound address.
    pub src: SocketAddr,
    /// Virtual delivery time (since the net's epoch).
    pub stamp: Duration,
    /// Whether the link MTU cut the payload short.
    pub truncated: bool,
}

/// An in-flight datagram, ordered by (delivery time, send sequence).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Flight {
    due_ns: u64,
    seq: u64,
    dst: SocketAddr,
    src: SocketAddr,
    truncated: bool,
    data: Vec<u8>,
}

struct SockState {
    inbox: VecDeque<FaultDatagram>,
    connected: Option<SocketAddr>,
    read_timeout: Option<Duration>,
}

struct LinkState {
    rng: StdRng,
    bad: bool,
    faults: LinkFaults,
}

struct Waiter {
    /// Socket whose inbox satisfies this waiter (`None` for sleepers).
    addr: Option<SocketAddr>,
    deadline_ns: Option<u64>,
    /// Wake token: this waiter's condition matured and it has already
    /// been counted busy on its behalf.
    ready: bool,
}

struct Core {
    now_ns: u64,
    seed: u64,
    next_port: u16,
    flight_seq: u64,
    next_waiter: u64,
    /// Enrolled threads currently runnable. Time advances only at zero.
    busy: usize,
    sockets: HashMap<SocketAddr, SockState>,
    faults: HashMap<(SocketAddr, SocketAddr), LinkFaults>,
    links: HashMap<(SocketAddr, SocketAddr), LinkState>,
    inflight: BinaryHeap<Reverse<Flight>>,
    waiters: HashMap<u64, Waiter>,
}

/// The seeded in-process virtual network. See the module docs.
pub struct FaultNet {
    id: u64,
    core: Mutex<Core>,
    cv: Condvar,
}

impl std::fmt::Debug for FaultNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultNet#{}", self.id)
    }
}

static NET_IDS: AtomicU64 = AtomicU64::new(1);

/// FNV-1a over the link endpoints, mixed with the net seed: every link
/// gets an independent, reproducible RNG stream.
fn link_seed(seed: u64, src: &SocketAddr, dst: &SocketAddr) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x1000_0000_01b3);
    for b in format!("{src}->{dst}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

struct Enrollment {
    net_id: u64,
    net: Weak<FaultNet>,
}

/// A busy token reserved by [`FaultNet::reserve`] for a thread that has
/// not started running yet. Move it into the spawned closure and claim
/// it with [`FaultNet::adopt`].
#[must_use = "move the ticket into the spawned thread and adopt it"]
pub struct Ticket {
    net_id: u64,
    net: Weak<FaultNet>,
    armed: bool,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.armed {
            if let Some(net) = self.net.upgrade() {
                let mut core = net.lock();
                core.busy -= 1;
                drop(core);
                net.cv.notify_all();
            }
        }
    }
}

impl Drop for Enrollment {
    fn drop(&mut self) {
        if let Some(net) = self.net.upgrade() {
            let mut core = net.lock();
            core.busy -= 1;
            drop(core);
            net.cv.notify_all();
        }
    }
}

thread_local! {
    static ENROLLMENTS: RefCell<Vec<Enrollment>> = const { RefCell::new(Vec::new()) };
}

/// Real waits between progress checks while another thread is busy; a
/// leaked busy count degrades to this polling granularity instead of a
/// deadlock.
const PARK: Duration = Duration::from_millis(5);
/// Consecutive no-progress parks before declaring the net stalled
/// (a loud failure beats a silent CI hang).
const STALL_LIMIT: u32 = 4000; // ≈ 20 s

impl FaultNet {
    /// A fresh virtual network. All randomness derives from `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(Self {
            id: NET_IDS.fetch_add(1, Ordering::Relaxed),
            core: Mutex::new(Core {
                now_ns: 0,
                seed,
                next_port: 40_000,
                flight_seq: 0,
                next_waiter: 0,
                busy: 0,
                sockets: HashMap::new(),
                faults: HashMap::new(),
                links: HashMap::new(),
                inflight: BinaryHeap::new(),
                waiters: HashMap::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().expect("faultnet lock")
    }

    /// Count the calling thread as a busy participant (idempotent per
    /// thread; undone automatically at thread exit).
    fn enroll(self: &Arc<Self>) {
        ENROLLMENTS.with(|e| {
            let mut list = e.borrow_mut();
            if !list.iter().any(|g| g.net_id == self.id) {
                self.lock().busy += 1;
                list.push(Enrollment {
                    net_id: self.id,
                    net: Arc::downgrade(self),
                });
            }
        });
    }

    fn is_enrolled(&self) -> bool {
        ENROLLMENTS.with(|e| e.borrow().iter().any(|g| g.net_id == self.id))
    }

    /// Run `f` with this thread's busy token released, so the virtual
    /// world keeps moving while `f` blocks on something outside the net
    /// (typically joining another enrolled thread).
    pub fn unenrolled<T>(&self, f: impl FnOnce() -> T) -> T {
        if !self.is_enrolled() {
            return f();
        }
        {
            let mut core = self.lock();
            core.busy -= 1;
        }
        self.cv.notify_all();
        let out = f();
        self.lock().busy += 1;
        out
    }

    /// Wake every parked waiter to re-check its exit condition (used
    /// after flipping an abort/done flag another thread sleeps on).
    ///
    /// Each waiter is *granted a busy token* with the wake: flag-based
    /// exit conditions live outside the engine, so without the token
    /// the net could observe `busy == 0` and advance virtual time in
    /// the real-time gap before a woken thread reschedules. Waiters
    /// whose condition turns out unmet return the token before
    /// re-parking (the stale-token path in `block_on`).
    pub fn notify_waiters(&self) {
        {
            let mut core = self.lock();
            let mut granted = 0usize;
            for w in core.waiters.values_mut() {
                if !w.ready {
                    w.ready = true;
                    granted += 1;
                }
            }
            core.busy += granted;
        }
        self.cv.notify_all();
    }

    /// Reserve a busy token on behalf of a thread that is about to be
    /// spawned. Virtual time cannot advance past the reservation, so
    /// the child can never miss events (or let peers burn timeouts)
    /// while the OS is still scheduling it. The child claims the token
    /// with [`FaultNet::adopt`]; dropping an unclaimed ticket returns
    /// it.
    pub fn reserve(self: &Arc<Self>) -> Ticket {
        self.lock().busy += 1;
        Ticket {
            net_id: self.id,
            net: Arc::downgrade(self),
            armed: true,
        }
    }

    /// Claim a reservation made by the spawning thread: the caller
    /// becomes an enrolled participant without double-counting. Must be
    /// the first thing the spawned thread does.
    pub fn adopt(self: &Arc<Self>, mut ticket: Ticket) {
        assert_eq!(ticket.net_id, self.id, "ticket belongs to another net");
        ticket.armed = false;
        ENROLLMENTS.with(|e| {
            let mut list = e.borrow_mut();
            if list.iter().any(|g| g.net_id == self.id) {
                // Already enrolled: hand the reserved token back.
                let mut core = self.lock();
                core.busy -= 1;
                drop(core);
                self.cv.notify_all();
            } else {
                list.push(Enrollment {
                    net_id: self.id,
                    net: Arc::downgrade(self),
                });
            }
        });
    }

    /// Current virtual time since the net's epoch.
    pub fn now(self: &Arc<Self>) -> Duration {
        self.enroll();
        Duration::from_nanos(self.lock().now_ns)
    }

    /// Configure the fault model of the directed link `src → dst`.
    /// Resets the link's RNG and Gilbert–Elliott state; call before
    /// traffic flows for reproducible runs.
    pub fn set_faults(self: &Arc<Self>, src: SocketAddr, dst: SocketAddr, faults: LinkFaults) {
        self.enroll();
        let mut core = self.lock();
        core.links.remove(&(src, dst));
        core.faults.insert((src, dst), faults);
    }

    /// Bind a virtual socket. Port 0 gets a sequentially assigned port,
    /// so binds are reproducible; rebinding a taken address fails with
    /// `AddrInUse` like the real stack.
    pub fn bind(self: &Arc<Self>, addr: SocketAddr) -> io::Result<FaultSocket> {
        self.enroll();
        let mut core = self.lock();
        let mut addr = addr;
        if addr.port() == 0 {
            loop {
                let port = core.next_port;
                core.next_port = core.next_port.wrapping_add(1).max(40_000);
                addr.set_port(port);
                if !core.sockets.contains_key(&addr) {
                    break;
                }
            }
        } else if core.sockets.contains_key(&addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("virtual address {addr} already bound"),
            ));
        }
        core.sockets.insert(
            addr,
            SockState {
                inbox: VecDeque::new(),
                connected: None,
                read_timeout: None,
            },
        );
        Ok(FaultSocket {
            net: self.clone(),
            addr,
        })
    }

    /// Deliver every in-flight datagram that has matured. Flights to
    /// unbound addresses (or filtered by the destination's connected
    /// peer) are dropped silently, like unheard UDP.
    fn deliver_due(core: &mut Core) -> bool {
        let mut any = false;
        while core
            .inflight
            .peek()
            .is_some_and(|Reverse(f)| f.due_ns <= core.now_ns)
        {
            let Reverse(f) = core.inflight.pop().expect("peeked");
            any = true;
            if let Some(sock) = core.sockets.get_mut(&f.dst) {
                if sock.connected.is_none_or(|peer| peer == f.src) {
                    sock.inbox.push_back(FaultDatagram {
                        data: f.data,
                        src: f.src,
                        stamp: Duration::from_nanos(f.due_ns),
                        truncated: f.truncated,
                    });
                }
            }
        }
        any
    }

    /// Hand a wake token (and a busy count) to every waiter whose
    /// condition is now satisfiable.
    fn grant_tokens(core: &mut Core) -> bool {
        let mut granted = false;
        let now = core.now_ns;
        // Collect first: granting mutates waiters while conditions read
        // sockets.
        let ids: Vec<u64> = core
            .waiters
            .iter()
            .filter(|(_, w)| {
                !w.ready
                    && (w.deadline_ns.is_some_and(|d| now >= d)
                        || w.addr.is_some_and(|a| {
                            core.sockets.get(&a).is_some_and(|s| !s.inbox.is_empty())
                        }))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            core.waiters.get_mut(&id).expect("waiter present").ready = true;
            core.busy += 1;
            granted = true;
        }
        granted
    }

    /// One scheduler step, run by a parked thread that observed
    /// `busy == 0`: deliver/grant at the current time, else advance the
    /// clock to the earliest pending event and deliver/grant there.
    /// Returns whether anything happened.
    fn step(&self, core: &mut Core) -> bool {
        let mut progressed = Self::deliver_due(core);
        progressed |= Self::grant_tokens(core);
        if progressed {
            self.cv.notify_all();
            return true;
        }
        let next_flight = core.inflight.peek().map(|Reverse(f)| f.due_ns);
        let next_deadline = core
            .waiters
            .values()
            .filter(|w| !w.ready)
            .filter_map(|w| w.deadline_ns)
            .min();
        let next = match (next_flight, next_deadline) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        if next > core.now_ns {
            core.now_ns = next;
        }
        let mut progressed = Self::deliver_due(core);
        progressed |= Self::grant_tokens(core);
        if progressed {
            self.cv.notify_all();
        }
        progressed
    }

    /// Park the calling thread until `check` yields a value or the
    /// deadline matures (`None`). The busy token is released for the
    /// duration; see the module docs for the token protocol.
    fn block_on<T>(
        &self,
        addr: Option<SocketAddr>,
        deadline_ns: Option<u64>,
        mut check: impl FnMut(&mut Core) -> Option<T>,
    ) -> Option<T> {
        let mut core = self.lock();
        core.busy -= 1;
        let id = core.next_waiter;
        core.next_waiter += 1;
        core.waiters.insert(
            id,
            Waiter {
                addr,
                deadline_ns,
                ready: false,
            },
        );
        self.cv.notify_all();
        let mut stall = 0u32;
        let out = loop {
            if let Some(v) = check(&mut core) {
                break Some(v);
            }
            if deadline_ns.is_some_and(|d| core.now_ns >= d) {
                break None;
            }
            // A token whose condition evaporated (another thread
            // consumed the datagram first) is returned before parking.
            let w = core.waiters.get_mut(&id).expect("own waiter");
            if w.ready {
                w.ready = false;
                core.busy -= 1;
                self.cv.notify_all();
            }
            if core.busy == 0 && self.step(&mut core) {
                stall = 0;
                continue;
            }
            let (c, timeout) = self
                .cv
                .wait_timeout(core, PARK)
                .expect("faultnet lock poisoned");
            core = c;
            if timeout.timed_out() {
                stall += 1;
                assert!(
                    stall <= STALL_LIMIT,
                    "FaultNet stalled: {} busy, {} waiters, {} in flight at t={}ns",
                    core.busy,
                    core.waiters.len(),
                    core.inflight.len(),
                    core.now_ns
                );
            } else {
                stall = 0;
            }
        };
        let w = core.waiters.remove(&id).expect("own waiter");
        if !w.ready {
            core.busy += 1;
        }
        out
    }

    /// Sleep until the virtual `due`, waking early if `abort` flips.
    /// Returns `false` on abort, like the sender's real-clock wait.
    pub fn sleep_until(self: &Arc<Self>, due: Duration, abort: &AtomicBool) -> bool {
        self.enroll();
        if abort.load(Ordering::Relaxed) {
            return false;
        }
        let due_ns = due.as_nanos() as u64;
        match self.block_on(None, Some(due_ns), |_| {
            abort.load(Ordering::Relaxed).then_some(())
        }) {
            Some(()) => false,
            None => true,
        }
    }

    fn send_from(self: &Arc<Self>, src: SocketAddr, dst: SocketAddr, buf: &[u8]) -> usize {
        self.enroll();
        let mut core = self.lock();
        let key = (src, dst);
        if !core.links.contains_key(&key) {
            let faults = core.faults.get(&key).cloned().unwrap_or_default();
            let rng = StdRng::seed_from_u64(link_seed(core.seed, &src, &dst));
            core.links.insert(
                key,
                LinkState {
                    rng,
                    bad: false,
                    faults,
                },
            );
        }
        let now_ns = core.now_ns;
        let link = core.links.get_mut(&key).expect("just ensured");
        // Draw order per datagram is fixed (state transition, loss,
        // jitter, reorder, duplication) so a seed pins the whole fault
        // sequence of a link.
        let f = link.faults.clone();
        if link.bad {
            if f.p_exit_bad > 0.0 && link.rng.random_bool(f.p_exit_bad) {
                link.bad = false;
            }
        } else if f.p_enter_bad > 0.0 && link.rng.random_bool(f.p_enter_bad) {
            link.bad = true;
        }
        let p_loss = if link.bad { f.loss_bad } else { f.loss_good };
        if p_loss > 0.0 && link.rng.random_bool(p_loss.min(1.0)) {
            return buf.len(); // lost on the wire; the sender saw a clean send
        }
        let mut delay = f.latency;
        if !f.jitter.is_zero() {
            delay += Duration::from_nanos(link.rng.random_range(0..f.jitter.as_nanos() as u64));
        }
        if f.reorder_prob > 0.0 && link.rng.random_bool(f.reorder_prob) {
            delay += f.reorder_extra;
        }
        let duplicated = f.dup_prob > 0.0 && link.rng.random_bool(f.dup_prob);
        let (data, truncated) = match f.mtu {
            Some(mtu) if buf.len() > mtu => (buf[..mtu].to_vec(), true),
            _ => (buf.to_vec(), false),
        };
        let push = |core: &mut Core, extra: Duration| {
            let flight = Flight {
                due_ns: now_ns + (delay + extra).as_nanos() as u64,
                seq: core.flight_seq,
                dst,
                src,
                truncated,
                data: data.clone(),
            };
            core.flight_seq += 1;
            core.inflight.push(Reverse(flight));
        };
        push(&mut core, Duration::ZERO);
        if duplicated {
            // The copy trails by the reorder delay so it lands as a
            // genuinely separate arrival.
            push(&mut core, f.reorder_extra);
        }
        buf.len()
    }

    fn recv_on(self: &Arc<Self>, addr: SocketAddr) -> io::Result<FaultDatagram> {
        self.enroll();
        let deadline_ns = {
            let core = self.lock();
            let sock = core.sockets.get(&addr).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotConnected, "virtual socket closed")
            })?;
            sock.read_timeout.map(|t| core.now_ns + t.as_nanos() as u64)
        };
        self.block_on(Some(addr), deadline_ns, |core| {
            core.sockets
                .get_mut(&addr)
                .and_then(|s| s.inbox.pop_front())
        })
        .ok_or_else(|| io::Error::new(io::ErrorKind::WouldBlock, "virtual read timed out"))
    }

    fn try_recv_on(self: &Arc<Self>, addr: SocketAddr) -> Option<FaultDatagram> {
        self.enroll();
        let mut core = self.lock();
        // Pick up anything already matured without waiting.
        Self::deliver_due(&mut core);
        core.sockets
            .get_mut(&addr)
            .and_then(|s| s.inbox.pop_front())
    }
}

/// A bound endpoint on a [`FaultNet`]. API mirrors the blocking subset
/// of `std::net::UdpSocket` that the live tool uses.
pub struct FaultSocket {
    net: Arc<FaultNet>,
    addr: SocketAddr,
}

impl std::fmt::Debug for FaultSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultSocket({} on {:?})", self.addr, self.net)
    }
}

impl FaultSocket {
    /// The bound virtual address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The owning virtual network.
    pub fn net(&self) -> &Arc<FaultNet> {
        &self.net
    }

    /// Set the default peer; received datagrams from other sources are
    /// dropped at delivery, like a connected UDP socket.
    pub fn connect(&self, peer: SocketAddr) -> io::Result<()> {
        let mut core = self.net.lock();
        if let Some(s) = core.sockets.get_mut(&self.addr) {
            s.connected = Some(peer);
        }
        Ok(())
    }

    /// Read timeout for [`FaultSocket::recv_msg`] (virtual time).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        let mut core = self.net.lock();
        if let Some(s) = core.sockets.get_mut(&self.addr) {
            s.read_timeout = timeout;
        }
        Ok(())
    }

    /// Send to the connected peer.
    pub fn send(&self, buf: &[u8]) -> io::Result<usize> {
        let peer = {
            let core = self.net.lock();
            core.sockets.get(&self.addr).and_then(|s| s.connected)
        };
        let peer = peer.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "virtual socket not connected")
        })?;
        Ok(self.net.send_from(self.addr, peer, buf))
    }

    /// Send to an explicit destination. Always succeeds: the virtual
    /// wire accepts everything, and an unbound destination just never
    /// hears it (no ICMP refusals in this world).
    pub fn send_to(&self, buf: &[u8], dst: SocketAddr) -> io::Result<usize> {
        Ok(self.net.send_from(self.addr, dst, buf))
    }

    /// Blocking receive of one datagram with its delivery stamp,
    /// honouring the read timeout in virtual time (`WouldBlock` on
    /// expiry, like a real socket).
    pub fn recv_msg(&self) -> io::Result<FaultDatagram> {
        self.net.recv_on(self.addr)
    }

    /// Non-blocking drain of one already-delivered datagram.
    pub fn try_recv_msg(&self) -> Option<FaultDatagram> {
        self.net.try_recv_on(self.addr)
    }
}

impl Drop for FaultSocket {
    fn drop(&mut self) {
        let mut core = self.net.lock();
        core.sockets.remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    #[test]
    fn clean_link_delivers_in_order_with_latency_stamps() {
        let net = FaultNet::new(7);
        let a = net.bind(addr("10.0.0.1:100")).unwrap();
        let b = net.bind(addr("10.0.0.2:200")).unwrap();
        b.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        for i in 0u8..4 {
            a.send_to(&[i; 8], b.local_addr()).unwrap();
        }
        for i in 0u8..4 {
            let m = b.recv_msg().unwrap();
            assert_eq!(m.data, vec![i; 8], "in-order delivery");
            assert_eq!(m.src, a.local_addr());
            assert_eq!(m.stamp, Duration::from_micros(100), "default latency");
            assert!(!m.truncated);
        }
        // Drained: the read timeout matures in virtual time instantly.
        let err = b.recv_msg().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(net.now(), Duration::from_micros(100 + 50_000));
    }

    #[test]
    fn same_seed_same_faults_reproduce_identical_delivery() {
        let run = |seed: u64| -> Vec<(Vec<u8>, u128)> {
            let net = FaultNet::new(seed);
            let a = net.bind(addr("10.0.0.1:100")).unwrap();
            let b = net.bind(addr("10.0.0.2:200")).unwrap();
            net.set_faults(
                a.local_addr(),
                b.local_addr(),
                LinkFaults::uniform_loss(0.3)
                    .with_reordering(0.2, Duration::from_millis(3))
                    .with_duplication(0.1)
                    .with_jitter(Duration::from_micros(500)),
            );
            b.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
            for i in 0u8..100 {
                a.send_to(&[i; 16], b.local_addr()).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(m) = b.recv_msg() {
                got.push((m.data, m.stamp.as_nanos()));
            }
            got
        };
        let one = run(42);
        let two = run(42);
        assert_eq!(one, two, "same seed must reproduce byte-identically");
        assert!(
            one.len() > 50 && one.len() < 100,
            "loss visible: {}",
            one.len()
        );
        let other = run(43);
        assert_ne!(one, other, "different seed must differ");
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        let net = FaultNet::new(9);
        let a = net.bind(addr("10.0.0.1:1")).unwrap();
        let b = net.bind(addr("10.0.0.2:2")).unwrap();
        net.set_faults(
            a.local_addr(),
            b.local_addr(),
            LinkFaults::gilbert_elliott(0.02, 0.25, 1.0),
        );
        b.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
        let n = 2000u16;
        for i in 0..n {
            a.send_to(&i.to_be_bytes(), b.local_addr()).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(m) = b.recv_msg() {
            got.push(u16::from_be_bytes([m.data[0], m.data[1]]));
        }
        let lost = usize::from(n) - got.len();
        assert!(lost > 50, "expected bursty loss, lost only {lost}");
        // Burstiness: count loss runs; with p_exit 0.25 the mean burst
        // is 4, so far fewer runs than losses.
        let mut runs = 0;
        let mut prev_present = true;
        let present: std::collections::HashSet<u16> = got.into_iter().collect();
        for i in 0..n {
            let here = present.contains(&i);
            if !here && prev_present {
                runs += 1;
            }
            prev_present = here;
        }
        assert!(
            runs * 2 < lost,
            "losses not bursty: {lost} losses in {runs} runs"
        );
    }

    #[test]
    fn mtu_truncates_and_marks() {
        let net = FaultNet::new(1);
        let a = net.bind(addr("10.0.0.1:1")).unwrap();
        let b = net.bind(addr("10.0.0.2:2")).unwrap();
        net.set_faults(
            a.local_addr(),
            b.local_addr(),
            LinkFaults::default().with_mtu(10),
        );
        b.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
        a.send_to(&[1u8; 100], b.local_addr()).unwrap();
        a.send_to(&[2u8; 8], b.local_addr()).unwrap();
        let m = b.recv_msg().unwrap();
        assert!(m.truncated);
        assert_eq!(m.data.len(), 10);
        let m = b.recv_msg().unwrap();
        assert!(!m.truncated);
        assert_eq!(m.data.len(), 8);
    }

    #[test]
    fn connected_socket_filters_foreign_sources() {
        let net = FaultNet::new(1);
        let a = net.bind(addr("10.0.0.1:1")).unwrap();
        let stranger = net.bind(addr("10.0.0.3:3")).unwrap();
        let b = net.bind(addr("10.0.0.2:2")).unwrap();
        b.connect(a.local_addr()).unwrap();
        b.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
        stranger.send_to(b"intruder", b.local_addr()).unwrap();
        a.send_to(b"friend", b.local_addr()).unwrap();
        let m = b.recv_msg().unwrap();
        assert_eq!(m.data, b"friend");
        assert!(b.recv_msg().is_err(), "foreign datagram must be dropped");
    }

    #[test]
    fn sleep_until_advances_virtual_time_exactly() {
        let net = FaultNet::new(1);
        let never = AtomicBool::new(false);
        assert!(net.sleep_until(Duration::from_millis(250), &never));
        assert_eq!(net.now(), Duration::from_millis(250));
        // A second sleeper with an earlier deadline does not rewind.
        assert!(net.sleep_until(Duration::from_millis(100), &never));
        assert_eq!(net.now(), Duration::from_millis(250));
    }

    #[test]
    fn two_threads_lockstep_through_virtual_time() {
        let net = FaultNet::new(5);
        let a = net.bind(addr("10.0.0.1:1")).unwrap();
        let b = net.bind(addr("10.0.0.2:2")).unwrap();
        b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        b.connect(a.local_addr()).unwrap();
        a.connect(b.local_addr()).unwrap();
        a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let net2 = net.clone();
        let echo = std::thread::spawn(move || {
            // Echo three datagrams back with their stamps.
            let mut stamps = Vec::new();
            for _ in 0..3 {
                let m = b.recv_msg().unwrap();
                stamps.push(m.stamp);
                b.send(&m.data).unwrap();
            }
            drop(b);
            let _ = net2;
            stamps
        });
        let never = AtomicBool::new(false);
        let mut echoes = Vec::new();
        for i in 0u8..3 {
            // Pace sends 10 ms apart in virtual time.
            net.sleep_until(Duration::from_millis(10 * (u64::from(i) + 1)), &never);
            a.send(&[i; 4]).unwrap();
            let m = a.recv_msg().unwrap();
            echoes.push((m.data[0], m.stamp));
        }
        let stamps = net.unenrolled(|| echo.join()).unwrap();
        for (i, (byte, stamp)) in echoes.iter().enumerate() {
            assert_eq!(usize::from(*byte), i);
            // send at 10(i+1) ms, +100 µs to B, +100 µs back.
            let sent = Duration::from_millis(10 * (i as u64 + 1));
            assert_eq!(stamps[i], sent + Duration::from_micros(100));
            assert_eq!(*stamp, sent + Duration::from_micros(200));
        }
    }
}
