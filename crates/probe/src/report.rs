//! Uniform result rows for the paper's tables.
//!
//! Every table compares a tool's measured loss-episode frequency and
//! duration against the ground truth; [`ToolReport`] is that row, built
//! from any of the three measurement sources.

use crate::badabing::BadabingAnalysis;
use crate::zing::ZingReport;
use badabing_sim::monitor::GroundTruth;

/// One row of a results table.
#[derive(Debug, Clone)]
pub struct ToolReport {
    /// Row label ("true values", "zing (10Hz)", "badabing p=0.3", ...).
    pub label: String,
    /// Measured (or true) loss-episode frequency.
    pub frequency: Option<f64>,
    /// Measured (or true) mean episode duration in seconds.
    pub duration_mean_secs: Option<f64>,
    /// Standard deviation of episode durations, where the source provides
    /// one (ground truth and ZING measure per-episode durations; the
    /// BADABING estimator targets the mean directly, §5.1).
    pub duration_std_secs: Option<f64>,
}

impl ToolReport {
    /// The "true values" row.
    pub fn from_truth(label: impl Into<String>, gt: &GroundTruth) -> Self {
        Self {
            label: label.into(),
            frequency: Some(gt.frequency()),
            duration_mean_secs: Some(gt.mean_duration_secs()),
            duration_std_secs: Some(gt.std_duration_secs()),
        }
    }

    /// A ZING measurement row.
    pub fn from_zing(label: impl Into<String>, r: &ZingReport) -> Self {
        let measured_any = r.duration.count() > 0;
        Self {
            label: label.into(),
            frequency: Some(r.frequency),
            duration_mean_secs: Some(if measured_any { r.duration.mean() } else { 0.0 }),
            duration_std_secs: Some(if measured_any {
                r.duration.std_dev()
            } else {
                0.0
            }),
        }
    }

    /// A BADABING measurement row.
    pub fn from_badabing(label: impl Into<String>, a: &BadabingAnalysis) -> Self {
        Self {
            label: label.into(),
            frequency: a.frequency(),
            duration_mean_secs: a.duration_secs(),
            duration_std_secs: None,
        }
    }

    /// Render as a fixed-width table row.
    pub fn fmt_row(&self) -> String {
        fn cell(v: Option<f64>) -> String {
            match v {
                Some(x) => format!("{x:>10.4}"),
                None => format!("{:>10}", "-"),
            }
        }
        format!(
            "{:<24} {} {} {}",
            self.label,
            cell(self.frequency),
            cell(self.duration_mean_secs),
            cell(self.duration_std_secs)
        )
    }

    /// The table header matching [`Self::fmt_row`].
    pub fn header() -> String {
        format!(
            "{:<24} {:>10} {:>10} {:>10}",
            "source", "frequency", "dur mean", "dur std"
        )
    }

    /// CSV rendering (label, frequency, duration mean, duration std).
    /// Missing values use the `nan` sentinel so rows keep a fixed arity.
    pub fn csv_row(&self) -> String {
        fn cell(v: Option<f64>) -> String {
            v.map_or_else(|| "nan".to_string(), |x| format!("{x}"))
        }
        format!(
            "{},{},{},{}",
            self.label,
            cell(self.frequency),
            cell(self.duration_mean_secs),
            cell(self.duration_std_secs)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_stats::summary::Summary;

    #[test]
    fn zing_row_mirrors_paper_zero_cells() {
        // No consecutive losses ever measured → "0 (0)" like Table 1.
        let r = ZingReport {
            sent: 9000,
            lost: 4,
            frequency: 4.0 / 9000.0,
            episodes: 0,
            duration: Summary::new(),
            delay: Summary::new(),
        };
        let row = ToolReport::from_zing("zing (10Hz)", &r);
        assert_eq!(row.duration_mean_secs, Some(0.0));
        assert_eq!(row.duration_std_secs, Some(0.0));
    }

    #[test]
    fn formatting_handles_missing_cells() {
        let row = ToolReport {
            label: "badabing p=0.1".into(),
            frequency: Some(0.0016),
            duration_mean_secs: None,
            duration_std_secs: None,
        };
        let s = row.fmt_row();
        assert!(s.contains("badabing p=0.1"));
        assert!(s.contains('-'));
        let csv = row.csv_row();
        assert_eq!(csv, "badabing p=0.1,0.0016,nan,nan");
        assert!(ToolReport::header().contains("frequency"));
    }
}
