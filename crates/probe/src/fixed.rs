//! Fixed-interval probing for the §6.1 calibration experiments.
//!
//! Figures 7 and 8 use "a modified version of BADABING to generate probes
//! at fixed intervals of 10 milliseconds so that some number of probes
//! would encounter all loss episodes", with probe sizes swept from 1 to 10
//! packets. [`FixedIntervalProber`] is that sender; it reuses
//! [`crate::badabing::BadabingReceiver`] on the far side (each probe is
//! tagged as its own "experiment").

use crate::badabing::{BadabingReceiver, SentProbe};
use badabing_sim::monitor::LossEpisode;
use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::SimDuration;
use std::any::Any;
use std::collections::HashMap;

const TOKEN_SEND: u64 = 0;

/// Sends a probe of `n_packets` every `interval`.
pub struct FixedIntervalProber {
    interval: SimDuration,
    n_packets: u8,
    packet_bytes: u32,
    intra_gap: SimDuration,
    flow: FlowId,
    bottleneck: NodeId,
    ingress_delay: SimDuration,
    sent: Vec<SentProbe>,
    seq: u64,
}

impl FixedIntervalProber {
    /// Create a fixed-interval prober.
    ///
    /// # Panics
    /// Panics if `n_packets` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        interval: SimDuration,
        n_packets: u8,
        packet_bytes: u32,
        intra_gap: SimDuration,
        flow: FlowId,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
    ) -> Self {
        assert!(n_packets > 0, "a probe needs at least one packet");
        Self {
            interval,
            n_packets,
            packet_bytes,
            intra_gap,
            flow,
            bottleneck,
            ingress_delay,
            sent: Vec::new(),
            seq: 0,
        }
    }

    /// The paper's calibration setup: 10 ms interval, 600-byte packets,
    /// 30 µs intra-probe gap.
    pub fn paper_calibration(
        n_packets: u8,
        flow: FlowId,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
    ) -> Self {
        Self::new(
            SimDuration::from_millis(10),
            n_packets,
            600,
            SimDuration::from_micros(30),
            flow,
            bottleneck,
            ingress_delay,
        )
    }

    /// Sender-side log.
    pub fn sent(&self) -> &[SentProbe] {
        &self.sent
    }
}

impl Node for FixedIntervalProber {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, TOKEN_SEND);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        let probe_id = self.sent.len() as u64;
        for idx in 0..self.n_packets {
            let extra = self.intra_gap.mul(u64::from(idx));
            let pkt = Packet {
                id: ctx.next_packet_id(),
                flow: self.flow,
                size: self.packet_bytes,
                created: ctx.now() + extra,
                kind: PacketKind::Probe {
                    experiment: probe_id,
                    slot: probe_id,
                    idx,
                    probe_len: self.n_packets,
                    seq: self.seq,
                },
            };
            self.seq += 1;
            ctx.send(self.bottleneck, pkt, self.ingress_delay + extra);
        }
        self.sent.push(SentProbe {
            experiment: probe_id,
            slot: probe_id,
            send_time_secs: ctx.now().as_secs_f64(),
            packets: self.n_packets,
        });
        ctx.set_timer(self.interval, TOKEN_SEND);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Figure-7 statistics: how reliably do `N`-packet probes report loss
/// episodes they pass through?
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeEpisodeStats {
    /// Probes whose send time fell inside a ground-truth loss episode.
    pub probes_in_episodes: u64,
    /// Of those, probes that lost no packet (the false negatives of
    /// loss-only detection — Figure 7's y-axis).
    pub probes_without_loss: u64,
    /// Episodes that at least one probe (by send time) fell into.
    pub episodes_probed: u64,
    /// Total episodes in the ground truth.
    pub episodes_total: u64,
}

impl ProbeEpisodeStats {
    /// Join the sender log and arrival records against ground-truth
    /// episodes.
    pub fn compute(
        sent: &[SentProbe],
        arrivals: &HashMap<(u64, u64), crate::badabing::ProbeArrival>,
        episodes: &[LossEpisode],
    ) -> Self {
        let mut stats = ProbeEpisodeStats {
            episodes_total: episodes.len() as u64,
            ..Default::default()
        };
        let mut probed = vec![false; episodes.len()];
        // Both lists are time-sorted; sweep with a cursor.
        let mut cursor = 0usize;
        for s in sent {
            let t = s.send_time_secs;
            while cursor < episodes.len() && episodes[cursor].end.as_secs_f64() < t {
                cursor += 1;
            }
            let Some(ep) = episodes.get(cursor) else {
                break;
            };
            if t < ep.start.as_secs_f64() {
                continue;
            }
            stats.probes_in_episodes += 1;
            probed[cursor] = true;
            let received = arrivals
                .get(&(s.experiment, s.slot))
                .map_or(0, |r| r.received);
            if received >= s.packets {
                stats.probes_without_loss += 1;
            }
        }
        stats.episodes_probed = probed.iter().filter(|&&b| b).count() as u64;
        stats
    }

    /// Empirical `P(probe sees no loss | probe inside a loss episode)` —
    /// Figure 7's y-axis. `None` when no probe fell inside an episode.
    pub fn p_no_loss(&self) -> Option<f64> {
        if self.probes_in_episodes == 0 {
            None
        } else {
            Some(self.probes_without_loss as f64 / self.probes_in_episodes as f64)
        }
    }
}

/// Attach a fixed-interval prober and a receiver to a dumbbell. Returns
/// `(prober_id, receiver_id)`.
pub fn attach_fixed(
    db: &mut badabing_sim::topology::Dumbbell,
    n_packets: u8,
    flow: FlowId,
) -> (NodeId, NodeId) {
    let receiver = db.add_node(Box::new(BadabingReceiver::new()));
    db.route_flow(flow, receiver);
    let bottleneck = db.bottleneck();
    let ingress = db.ingress_delay();
    let prober = db.add_node(Box::new(FixedIntervalProber::paper_calibration(
        n_packets, flow, bottleneck, ingress,
    )));
    (prober, receiver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::time::SimTime;
    use badabing_sim::topology::Dumbbell;
    use badabing_stats::rng::seeded;
    use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

    #[test]
    fn sends_at_fixed_cadence() {
        let mut db = Dumbbell::standard();
        let (prober, receiver) = attach_fixed(&mut db, 3, FlowId(900));
        db.run_for(1.0);
        let sent = db.sim.node::<FixedIntervalProber>(prober).sent();
        assert_eq!(
            sent.len(),
            100,
            "one probe per 10 ms starting at t=10ms, inclusive of t=1.0s"
        );
        for (i, s) in sent.iter().enumerate() {
            assert!((s.send_time_secs - 0.01 * (i + 1) as f64).abs() < 1e-9);
        }
        db.run_for(2.0);
        let arr = db.sim.node::<BadabingReceiver>(receiver).arrivals();
        assert!(arr.len() >= 99);
        assert!(arr.values().all(|r| r.received == 3));
    }

    #[test]
    fn bigger_probes_miss_fewer_episodes() {
        // Figure 7's headline effect on CBR traffic: single-packet probes
        // often survive a loss episode; 5-packet probes rarely do.
        let run = |n_packets: u8| -> f64 {
            let mut db = Dumbbell::standard();
            let cbr = CbrEpisodeConfig {
                mean_gap_secs: 3.0,
                ..CbrEpisodeConfig::paper_default()
            };
            attach_cbr(&mut db, FlowId(1), cbr, seeded(77, "cbr"));
            let (prober, receiver) = attach_fixed(&mut db, n_packets, FlowId(900));
            db.run_for(121.0);
            let gt = db.ground_truth(120.0);
            let sent = db.sim.node::<FixedIntervalProber>(prober).sent();
            let arr = db.sim.node::<BadabingReceiver>(receiver).arrivals();
            let stats = ProbeEpisodeStats::compute(sent, arr, &gt.episodes);
            assert!(
                stats.probes_in_episodes > 50,
                "n={n_packets}: too few probes in episodes"
            );
            stats.p_no_loss().expect("probes fell in episodes")
        };
        let p1 = run(1);
        let p5 = run(5);
        assert!(
            p1 > p5,
            "1-packet probes ({p1}) should miss more than 5-packet ({p5})"
        );
        assert!(
            p5 < 0.5,
            "5-packet probes should usually see loss, got {p5}"
        );
    }

    #[test]
    fn episode_stats_on_synthetic_data() {
        let episodes = vec![
            LossEpisode {
                start: SimTime::from_secs_f64(1.0),
                end: SimTime::from_secs_f64(1.1),
                drops: 10,
            },
            LossEpisode {
                start: SimTime::from_secs_f64(5.0),
                end: SimTime::from_secs_f64(5.05),
                drops: 4,
            },
        ];
        let sent = vec![
            SentProbe {
                experiment: 0,
                slot: 0,
                send_time_secs: 0.5,
                packets: 3,
            },
            SentProbe {
                experiment: 1,
                slot: 1,
                send_time_secs: 1.05,
                packets: 3,
            },
            SentProbe {
                experiment: 2,
                slot: 2,
                send_time_secs: 1.08,
                packets: 3,
            },
            SentProbe {
                experiment: 3,
                slot: 3,
                send_time_secs: 3.0,
                packets: 3,
            },
        ];
        let mut arrivals = HashMap::new();
        // Probe 1 loses a packet; probe 2 survives.
        arrivals.insert(
            (1u64, 1u64),
            crate::badabing::ProbeArrival {
                received: 2,
                owd_last_secs: 0.15,
                owd_max_secs: 0.15,
            },
        );
        arrivals.insert(
            (2u64, 2u64),
            crate::badabing::ProbeArrival {
                received: 3,
                owd_last_secs: 0.15,
                owd_max_secs: 0.15,
            },
        );
        let stats = ProbeEpisodeStats::compute(&sent, &arrivals, &episodes);
        assert_eq!(stats.probes_in_episodes, 2);
        assert_eq!(stats.probes_without_loss, 1);
        assert_eq!(stats.episodes_probed, 1);
        assert_eq!(stats.episodes_total, 2);
        assert!((stats.p_no_loss().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_none() {
        let stats = ProbeEpisodeStats::compute(&[], &HashMap::new(), &[]);
        assert_eq!(stats.p_no_loss(), None);
    }
}
