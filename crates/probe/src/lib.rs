//! Probers wired into the simulator.
//!
//! Three probe processes, matching the paper's evaluation:
//!
//! * [`zing::ZingProber`] — the Poisson-modulated single-packet prober
//!   (§4): UDP probes at exponential intervals with fixed mean rate,
//!   loss inferred from missing sequence numbers, episode durations from
//!   runs of consecutively lost probes;
//! * [`badabing::BadabingHarness`] — the paper's tool (§5–§6): geometric
//!   experiments of two (or three) multi-packet probes, marked by the
//!   α/τ/OWDmax detector from `badabing-core` and reduced to frequency
//!   and duration estimates;
//! * [`fixed::FixedIntervalProber`] — the modified sender used for the
//!   §6.1 calibration experiments (Figures 7 and 8): probes of `N`
//!   packets at fixed 10 ms intervals.
//!
//! All probers are ordinary simulation nodes; their packets share the
//! bottleneck with the cross traffic and therefore perturb it exactly the
//! way real probe traffic would (the effect Figure 8 visualizes).

pub mod badabing;
pub mod coverage;
pub mod fixed;
pub mod report;
pub mod zing;

pub use badabing::BadabingHarness;
pub use coverage::EpisodeCoverage;
pub use fixed::{FixedIntervalProber, ProbeEpisodeStats};
pub use report::ToolReport;
pub use zing::{ZingConfig, ZingProber, ZingReport};
