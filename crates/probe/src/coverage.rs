//! Episode-level detection diagnostics.
//!
//! The paper evaluates aggregate estimates (frequency, mean duration).
//! An orthogonal and operationally useful question is *per-episode*
//! behaviour: of the loss episodes that actually happened, how many did
//! the tool notice at all, how much congestion did it hallucinate, and
//! how late does it see an episode's onset? [`EpisodeCoverage`] matches
//! the marked slots of an experiment log against ground-truth episodes
//! (with a slot tolerance to absorb boundary rounding) and reports
//! recall, slot precision and onset error — the quantities a user of the
//! tool for, say, overlay path selection actually cares about.

use badabing_core::outcome::ExperimentLog;
use badabing_sim::monitor::GroundTruth;

/// Per-episode detection metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpisodeCoverage {
    /// Ground-truth episodes in the horizon.
    pub episodes_total: u64,
    /// Episodes with at least one marked probe slot inside them
    /// (± tolerance).
    pub episodes_detected: u64,
    /// Episodes that contained at least one *probed* slot — the rest
    /// were invisible at this probe rate no matter what the detector
    /// does.
    pub episodes_probed: u64,
    /// All marked slots across the log.
    pub marked_slots: u64,
    /// Marked slots lying inside some episode (± tolerance).
    pub marked_in_episode: u64,
    /// Mean onset error in slots over detected episodes: first marked
    /// slot minus true start (≥ -tolerance; NaN when none detected).
    pub mean_onset_error_slots: f64,
}

impl EpisodeCoverage {
    /// Fraction of episodes detected.
    pub fn recall(&self) -> f64 {
        if self.episodes_total == 0 {
            1.0
        } else {
            self.episodes_detected as f64 / self.episodes_total as f64
        }
    }

    /// Fraction of episodes detected among those the probe process
    /// sampled at all — isolates detector quality from probe sparsity.
    pub fn recall_given_probed(&self) -> f64 {
        if self.episodes_probed == 0 {
            1.0
        } else {
            self.episodes_detected as f64 / self.episodes_probed as f64
        }
    }

    /// Fraction of marked slots that lie inside real episodes.
    pub fn precision(&self) -> f64 {
        if self.marked_slots == 0 {
            1.0
        } else {
            self.marked_in_episode as f64 / self.marked_slots as f64
        }
    }

    /// Match `log` against `truth` with the given slot tolerance.
    pub fn compute(log: &ExperimentLog, truth: &GroundTruth, tolerance_slots: u64) -> Self {
        let slot_secs = truth.config.slot_secs;
        // True episodes as (start_slot, end_slot) inclusive, widened by
        // the tolerance.
        let episodes: Vec<(u64, u64)> = truth
            .episodes
            .iter()
            .map(|e| {
                let s = (e.start.as_secs_f64() / slot_secs) as u64;
                let t = (e.end.as_secs_f64() / slot_secs) as u64;
                (s.saturating_sub(tolerance_slots), t + tolerance_slots)
            })
            .collect();

        // Marked and probed slots from the log.
        let mut marked: Vec<u64> = Vec::new();
        let mut probed: Vec<u64> = Vec::new();
        for o in log.outcomes() {
            for (k, &st) in o.digits().iter().enumerate() {
                let slot = o.start_slot + k as u64;
                probed.push(slot);
                if st {
                    marked.push(slot);
                }
            }
        }
        marked.sort_unstable();
        marked.dedup();
        probed.sort_unstable();
        probed.dedup();

        let in_episode = |slot: u64| -> Option<usize> {
            episodes
                .binary_search_by(|&(s, t)| {
                    if t < slot {
                        std::cmp::Ordering::Less
                    } else if s > slot {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .ok()
        };

        let mut detected = vec![false; episodes.len()];
        let mut first_marked: Vec<Option<u64>> = vec![None; episodes.len()];
        let mut marked_in_episode = 0u64;
        for &slot in &marked {
            if let Some(i) = in_episode(slot) {
                marked_in_episode += 1;
                detected[i] = true;
                if first_marked[i].is_none() {
                    first_marked[i] = Some(slot);
                }
            }
        }
        let mut episode_probed = vec![false; episodes.len()];
        for &slot in &probed {
            if let Some(i) = in_episode(slot) {
                episode_probed[i] = true;
            }
        }

        let onset_errors: Vec<f64> = first_marked
            .iter()
            .zip(&episodes)
            .filter_map(|(fm, &(s, _))| fm.map(|f| f as f64 - (s + tolerance_slots) as f64))
            .collect();
        let mean_onset = if onset_errors.is_empty() {
            f64::NAN
        } else {
            onset_errors.iter().sum::<f64>() / onset_errors.len() as f64
        };

        Self {
            episodes_total: episodes.len() as u64,
            episodes_detected: detected.iter().filter(|&&d| d).count() as u64,
            episodes_probed: episode_probed.iter().filter(|&&d| d).count() as u64,
            marked_slots: marked.len() as u64,
            marked_in_episode,
            mean_onset_error_slots: mean_onset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_core::outcome::Outcome;
    use badabing_sim::monitor::{GroundTruthConfig, Monitor};
    use badabing_sim::time::SimTime;

    /// Ground truth with episodes at slots [100..110] and [400..402]
    /// (5 ms slots: 0.5–0.55 s and 2.0–2.01 s).
    fn truth() -> GroundTruth {
        let mut m = Monitor::default();
        let pkt = |id| badabing_sim::packet::Packet {
            id,
            flow: badabing_sim::packet::FlowId(1),
            size: 1500,
            created: SimTime::ZERO,
            kind: badabing_sim::packet::PacketKind::Udp { seq: id },
        };
        m.record(
            SimTime::from_secs_f64(0.5),
            badabing_sim::monitor::TraceEvent::Drop,
            &pkt(0),
            0.1,
        );
        m.record(
            SimTime::from_secs_f64(0.51),
            badabing_sim::monitor::TraceEvent::Enqueue,
            &pkt(1),
            0.095,
        );
        m.record(
            SimTime::from_secs_f64(0.55),
            badabing_sim::monitor::TraceEvent::Drop,
            &pkt(2),
            0.1,
        );
        m.record(
            SimTime::from_secs_f64(1.0),
            badabing_sim::monitor::TraceEvent::Depart,
            &pkt(1),
            0.0,
        );
        m.record(
            SimTime::from_secs_f64(2.0),
            badabing_sim::monitor::TraceEvent::Drop,
            &pkt(3),
            0.1,
        );
        let gt = GroundTruth::extract(&m, 3.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 2);
        gt
    }

    fn log_with_marks(marks: &[(u64, bool, bool)]) -> ExperimentLog {
        let mut log = ExperimentLog::new(600, 0.005);
        for (i, &(slot, a, b)) in marks.iter().enumerate() {
            log.push(Outcome::basic(i as u64, slot, a, b));
        }
        log
    }

    #[test]
    fn full_detection() {
        // Marks inside both episodes.
        let log = log_with_marks(&[(104, true, true), (400, true, false), (250, false, false)]);
        let c = EpisodeCoverage::compute(&log, &truth(), 1);
        assert_eq!(c.episodes_total, 2);
        assert_eq!(c.episodes_detected, 2);
        assert_eq!(c.marked_slots, 3);
        assert_eq!(c.marked_in_episode, 3);
        assert!((c.recall() - 1.0).abs() < 1e-12);
        assert!((c.precision() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missed_episode_reduces_recall() {
        let log = log_with_marks(&[(104, true, false)]);
        let c = EpisodeCoverage::compute(&log, &truth(), 1);
        assert_eq!(c.episodes_detected, 1);
        assert!((c.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn false_marks_reduce_precision() {
        let log = log_with_marks(&[(104, true, false), (250, true, true)]);
        let c = EpisodeCoverage::compute(&log, &truth(), 1);
        assert_eq!(c.marked_slots, 3);
        assert_eq!(c.marked_in_episode, 1);
        assert!((c.precision() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probed_but_unmarked_episode_counts_against_detector_only() {
        // Episode 2 (slot 400) is probed but not marked: recall 0.5,
        // recall_given_probed 0.5; episode 1 is both.
        let log = log_with_marks(&[(104, true, true), (400, false, false)]);
        let c = EpisodeCoverage::compute(&log, &truth(), 1);
        assert_eq!(c.episodes_probed, 2);
        assert_eq!(c.episodes_detected, 1);
        assert!((c.recall_given_probed() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unprobed_episode_is_not_the_detectors_fault() {
        let log = log_with_marks(&[(104, true, true)]);
        let c = EpisodeCoverage::compute(&log, &truth(), 1);
        assert_eq!(c.episodes_probed, 1);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.recall_given_probed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_vacuously_precise() {
        let log = ExperimentLog::new(600, 0.005);
        let c = EpisodeCoverage::compute(&log, &truth(), 1);
        assert_eq!(c.marked_slots, 0);
        assert!((c.precision() - 1.0).abs() < 1e-12);
        assert_eq!(c.episodes_detected, 0);
        assert!(c.mean_onset_error_slots.is_nan());
    }
}
