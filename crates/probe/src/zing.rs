//! The Poisson prober (ZING, §4).
//!
//! ZING sends UDP probes at Poisson-modulated intervals with a fixed mean
//! rate; the receiver logs arrivals and the sender's view of loss comes
//! from missing sequence numbers. Following §4.2 and the Zhang et al.
//! definition the paper adopts for it, a ZING *loss episode* is "a series
//! of consecutive packets (possibly only of length one) that were lost":
//!
//! * measured **frequency** is the fraction of probes lost (by PASTA, an
//!   unbiased estimate of the packet loss probability — which is *not*
//!   the episode frequency, the root of the tool's bias);
//! * measured **duration** of an episode is the send-time span of its
//!   lost-probe run, which is zero for an isolated loss — reproducing the
//!   "0 (0)" cells of Table 1.

use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::SimDuration;
use badabing_stats::dist::{Exponential, Sample};
use badabing_stats::summary::Summary;
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::HashSet;

/// ZING configuration.
#[derive(Debug, Clone, Copy)]
pub struct ZingConfig {
    /// Mean probes per second (the paper runs 10 Hz and 20 Hz).
    pub rate_hz: f64,
    /// Probe packet size in bytes (256 at 10 Hz, 64 at 20 Hz in §4.2).
    pub packet_bytes: u32,
}

impl ZingConfig {
    /// The paper's 10 Hz / 256-byte configuration.
    pub fn paper_10hz() -> Self {
        Self {
            rate_hz: 10.0,
            packet_bytes: 256,
        }
    }

    /// The paper's 20 Hz / 64-byte configuration.
    pub fn paper_20hz() -> Self {
        Self {
            rate_hz: 20.0,
            packet_bytes: 64,
        }
    }

    /// Offered load in bits per second.
    pub fn offered_load_bps(&self) -> f64 {
        self.rate_hz * f64::from(self.packet_bytes) * 8.0
    }

    /// The rate (probes/second) needed to offer `bps` bits per second at
    /// this packet size — used to match ZING's load to BADABING's for the
    /// Table 8 comparison.
    pub fn with_load_bps(packet_bytes: u32, bps: f64) -> Self {
        Self {
            rate_hz: bps / (f64::from(packet_bytes) * 8.0),
            packet_bytes,
        }
    }
}

const TOKEN_SEND: u64 = 0;

/// The sending node; records every (seq, send time).
pub struct ZingProber {
    cfg: ZingConfig,
    flow: FlowId,
    bottleneck: NodeId,
    ingress_delay: SimDuration,
    gap: Exponential,
    rng: StdRng,
    sent: Vec<f64>,
}

impl ZingProber {
    /// Create a prober for `flow` sending into `bottleneck`.
    pub fn new(
        cfg: ZingConfig,
        flow: FlowId,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
        rng: StdRng,
    ) -> Self {
        assert!(cfg.rate_hz > 0.0, "probe rate must be positive");
        let gap = Exponential::with_rate(cfg.rate_hz);
        Self {
            cfg,
            flow,
            bottleneck,
            ingress_delay,
            gap,
            rng,
            sent: Vec::new(),
        }
    }

    /// Send times of all probes, indexed by sequence number.
    pub fn sent(&self) -> &[f64] {
        &self.sent
    }
}

impl Node for ZingProber {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let first = self.gap.sample(&mut self.rng);
        ctx.set_timer(SimDuration::from_secs_f64(first), TOKEN_SEND);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        let seq = self.sent.len() as u64;
        self.sent.push(ctx.now().as_secs_f64());
        let pkt = Packet {
            id: ctx.next_packet_id(),
            flow: self.flow,
            size: self.cfg.packet_bytes,
            created: ctx.now(),
            kind: PacketKind::Udp { seq },
        };
        ctx.send(self.bottleneck, pkt, self.ingress_delay);
        let next = self.gap.sample(&mut self.rng);
        ctx.set_timer(SimDuration::from_secs_f64(next), TOKEN_SEND);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The receiving node: remembers which sequence numbers arrived and the
/// one-way delays they experienced (ZING measures "packet delay and loss
/// in one direction", §4.2).
#[derive(Default)]
pub struct ZingReceiver {
    received: HashSet<u64>,
    delay: Summary,
}

impl ZingReceiver {
    /// New empty receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set of received sequence numbers.
    pub fn received(&self) -> &HashSet<u64> {
        &self.received
    }

    /// One-way delay summary over delivered probes.
    pub fn delay(&self) -> &Summary {
        &self.delay
    }
}

impl Node for ZingReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if let PacketKind::Udp { seq } = packet.kind {
            self.received.insert(seq);
            self.delay.push(packet.owd_secs(ctx.now()));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// ZING's measurement output.
#[derive(Debug, Clone)]
pub struct ZingReport {
    /// Probes sent.
    pub sent: u64,
    /// Probes lost.
    pub lost: u64,
    /// Fraction of probes lost — ZING's frequency measure.
    pub frequency: f64,
    /// Loss episodes (runs of consecutively lost probes): count.
    pub episodes: u64,
    /// Episode durations in seconds (send-time span of each run).
    pub duration: Summary,
    /// One-way delay of delivered probes, seconds.
    pub delay: Summary,
}

impl ZingReport {
    /// Compute the report from the sender's send log and the receiver's
    /// arrival set.
    pub fn compute(sent_times: &[f64], received: &HashSet<u64>) -> Self {
        Self::compute_with_delay(sent_times, received, Summary::new())
    }

    /// Compute the report including the receiver's delay summary.
    pub fn compute_with_delay(sent_times: &[f64], received: &HashSet<u64>, delay: Summary) -> Self {
        let sent = sent_times.len() as u64;
        let mut lost = 0u64;
        let mut episodes = 0u64;
        let mut duration = Summary::new();
        let mut run_start: Option<usize> = None;
        for (i, _t) in sent_times.iter().enumerate() {
            let ok = received.contains(&(i as u64));
            if !ok {
                lost += 1;
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else if let Some(s) = run_start.take() {
                episodes += 1;
                duration.push(sent_times[i - 1] - sent_times[s]);
            }
        }
        if let Some(s) = run_start {
            episodes += 1;
            duration.push(sent_times[sent_times.len() - 1] - sent_times[s]);
        }
        let frequency = if sent == 0 {
            0.0
        } else {
            lost as f64 / sent as f64
        };
        Self {
            sent,
            lost,
            frequency,
            episodes,
            duration,
            delay,
        }
    }
}

/// Attach a ZING sender/receiver pair to a dumbbell. Returns
/// `(prober_id, receiver_id)`.
pub fn attach_zing(
    db: &mut badabing_sim::topology::Dumbbell,
    cfg: ZingConfig,
    flow: FlowId,
    rng: StdRng,
) -> (NodeId, NodeId) {
    let receiver = db.add_node(Box::new(ZingReceiver::new()));
    db.route_flow(flow, receiver);
    let bottleneck = db.bottleneck();
    let ingress = db.ingress_delay();
    let prober = db.add_node(Box::new(ZingProber::new(
        cfg, flow, bottleneck, ingress, rng,
    )));
    (prober, receiver)
}

/// Extract the [`ZingReport`] after a run.
pub fn zing_report(
    sim: &badabing_sim::engine::Simulator,
    prober: NodeId,
    receiver: NodeId,
) -> ZingReport {
    let sent = sim.node::<ZingProber>(prober).sent();
    let rx = sim.node::<ZingReceiver>(receiver);
    ZingReport::compute_with_delay(sent, rx.received(), *rx.delay())
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::topology::Dumbbell;
    use badabing_stats::rng::seeded;

    #[test]
    fn config_loads() {
        assert!((ZingConfig::paper_10hz().offered_load_bps() - 20_480.0).abs() < 1e-9);
        assert!((ZingConfig::paper_20hz().offered_load_bps() - 10_240.0).abs() < 1e-9);
        let matched = ZingConfig::with_load_bps(600, 864_000.0);
        assert!((matched.rate_hz - 180.0).abs() < 1e-9);
    }

    #[test]
    fn report_on_synthetic_loss_patterns() {
        // Probes at 0.0, 0.1, ..., 0.9; lose 3,4,5 and 8.
        let sent: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let received: HashSet<u64> = (0..10u64).filter(|s| ![3, 4, 5, 8].contains(s)).collect();
        let r = ZingReport::compute(&sent, &received);
        assert_eq!(r.sent, 10);
        assert_eq!(r.lost, 4);
        assert_eq!(r.episodes, 2);
        assert!((r.frequency - 0.4).abs() < 1e-12);
        // Runs: 3..5 spans 0.2 s; 8 alone spans 0.
        assert!((r.duration.mean() - 0.1).abs() < 1e-12);
        assert_eq!(r.duration.min(), 0.0);
        assert!((r.duration.max() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn trailing_loss_run_is_closed() {
        let sent: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let received: HashSet<u64> = [0u64, 1].into_iter().collect();
        let r = ZingReport::compute(&sent, &received);
        assert_eq!(r.episodes, 1);
        assert!((r.duration.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_loss_means_empty_report() {
        let sent: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        let received: HashSet<u64> = (0..100u64).collect();
        let r = ZingReport::compute(&sent, &received);
        assert_eq!(r.lost, 0);
        assert_eq!(r.episodes, 0);
        assert_eq!(r.frequency, 0.0);
        assert_eq!(r.duration.count(), 0);
        assert_eq!(r.duration.mean(), 0.0);
    }

    #[test]
    fn probes_traverse_idle_dumbbell_losslessly() {
        let mut db = Dumbbell::standard();
        let (prober, receiver) = attach_zing(
            &mut db,
            ZingConfig::paper_10hz(),
            FlowId(900),
            seeded(1, "zing"),
        );
        db.run_for(30.0);
        // Allow in-flight probes to land.
        db.run_for(31.0);
        let r = zing_report(&db.sim, prober, receiver);
        assert!(r.sent > 200, "sent {}", r.sent);
        // Rate check: ~10 Hz.
        assert!((r.sent as f64 / 31.0 - 10.0).abs() < 2.0);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn poisson_spacing_has_exponential_cv() {
        let mut db = Dumbbell::standard();
        let (prober, _) = attach_zing(
            &mut db,
            ZingConfig {
                rate_hz: 100.0,
                packet_bytes: 64,
            },
            FlowId(900),
            seeded(5, "zing-cv"),
        );
        db.run_for(120.0);
        let sent = db.sim.node::<ZingProber>(prober).sent();
        let gaps: Vec<f64> = sent.windows(2).map(|w| w[1] - w[0]).collect();
        let s = Summary::from_slice(&gaps);
        // Exponential: coefficient of variation = 1.
        let cv = s.std_dev() / s.mean();
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }
}
