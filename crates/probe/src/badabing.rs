//! The BADABING prober as simulation nodes, plus the analysis harness.
//!
//! The sender walks the geometric experiment schedule from
//! [`badabing_core::schedule`], sending one multi-packet probe per
//! scheduled slot (§6: 3 packets of 600 bytes, ~30 µs apart). The receiver
//! timestamps arrivals and, after the run, sender and receiver logs are
//! joined into [`ProbeObservation`]s, marked by the §6.1 detector, and
//! reduced to estimates — the same pipeline the live tool uses.

use badabing_core::config::BadabingConfig;
use badabing_core::detector::{CongestionDetector, DetectorReport, ProbeObservation};
use badabing_core::estimator::Estimates;
use badabing_core::outcome::ExperimentLog;
use badabing_core::schedule::ExperimentScheduler;
use badabing_core::validate::Validation;
use badabing_sim::engine::Simulator;
use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::HashMap;

/// One probe as sent (sender-side log entry).
#[derive(Debug, Clone, Copy)]
pub struct SentProbe {
    /// Owning experiment.
    pub experiment: u64,
    /// Targeted slot.
    pub slot: u64,
    /// Actual send time in seconds.
    pub send_time_secs: f64,
    /// Packets in the probe.
    pub packets: u8,
}

/// A planned probe (slot, experiment, precomputed send instant).
#[derive(Debug, Clone, Copy)]
struct PlannedProbe {
    slot: u64,
    experiment: u64,
    /// Exact send time; comparisons use this `SimTime` (never a float
    /// round-trip, which could alias a slot boundary to the previous
    /// slot and stall the send loop).
    at: SimTime,
}

const TOKEN_SEND: u64 = 0;

/// The sending node.
pub struct BadabingProber {
    cfg: BadabingConfig,
    flow: FlowId,
    bottleneck: NodeId,
    ingress_delay: SimDuration,
    n_slots: u64,
    rng: Option<StdRng>,
    plan: Vec<PlannedProbe>,
    cursor: usize,
    sent: Vec<SentProbe>,
    seq: u64,
}

impl BadabingProber {
    /// Create a prober that runs `n_slots` slots of the configured width.
    pub fn new(
        cfg: BadabingConfig,
        n_slots: u64,
        flow: FlowId,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
        rng: StdRng,
    ) -> Self {
        Self {
            cfg,
            flow,
            bottleneck,
            ingress_delay,
            n_slots,
            rng: Some(rng),
            plan: Vec::new(),
            cursor: 0,
            sent: Vec::new(),
            seq: 0,
        }
    }

    /// Sender-side log of every probe sent.
    pub fn sent(&self) -> &[SentProbe] {
        &self.sent
    }

    /// Number of experiments in the plan.
    pub fn planned_experiments(&self) -> u64 {
        self.plan.last().map_or(0, |p| p.experiment + 1)
    }

    fn schedule_next(&self, ctx: &mut Context<'_>) {
        if let Some(next) = self.plan.get(self.cursor) {
            ctx.set_timer_at(next.at.max(ctx.now()), TOKEN_SEND);
        }
    }

    fn send_probe(&mut self, probe: PlannedProbe, ctx: &mut Context<'_>) {
        let n = self.cfg.probe_packets;
        for idx in 0..n {
            let extra = SimDuration::from_secs_f64(self.cfg.intra_probe_gap_secs * f64::from(idx));
            let pkt = Packet {
                id: ctx.next_packet_id(),
                flow: self.flow,
                size: self.cfg.packet_bytes,
                created: ctx.now() + extra,
                kind: PacketKind::Probe {
                    experiment: probe.experiment,
                    slot: probe.slot,
                    idx,
                    probe_len: n,
                    seq: self.seq,
                },
            };
            self.seq += 1;
            ctx.send(self.bottleneck, pkt, self.ingress_delay + extra);
        }
        self.sent.push(SentProbe {
            experiment: probe.experiment,
            slot: probe.slot,
            send_time_secs: ctx.now().as_secs_f64(),
            packets: n,
        });
    }
}

impl Node for BadabingProber {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let rng = self.rng.take().expect("start called twice");
        let mut sched = ExperimentScheduler::new(self.cfg.p, self.cfg.improved, rng);
        let mut plan = Vec::new();
        for e in sched.take_run(self.n_slots) {
            for slot in e.slots() {
                let at = SimTime::from_secs_f64(self.cfg.slot_start_secs(slot));
                plan.push(PlannedProbe {
                    slot,
                    experiment: e.id,
                    at,
                });
            }
        }
        plan.sort_by_key(|p| p.slot);
        self.plan = plan;
        self.schedule_next(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        while let Some(&probe) = self.plan.get(self.cursor) {
            if probe.at > ctx.now() {
                break;
            }
            self.send_probe(probe, ctx);
            self.cursor += 1;
        }
        self.schedule_next(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Receiver-side record for one probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeArrival {
    /// Packets of the probe that arrived.
    pub received: u8,
    /// One-way delay of the most recent arrival (FIFO ⇒ highest index).
    pub owd_last_secs: f64,
    /// Maximum one-way delay over the probe's arrivals.
    pub owd_max_secs: f64,
}

/// The receiving node: joins per-packet arrivals into per-probe records.
#[derive(Default)]
pub struct BadabingReceiver {
    arrivals: HashMap<(u64, u64), ProbeArrival>,
}

impl BadabingReceiver {
    /// New empty receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arrival records keyed by (experiment, slot).
    pub fn arrivals(&self) -> &HashMap<(u64, u64), ProbeArrival> {
        &self.arrivals
    }
}

impl Node for BadabingReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if let PacketKind::Probe {
            experiment, slot, ..
        } = packet.kind
        {
            let owd = packet.owd_secs(ctx.now());
            let rec = self.arrivals.entry((experiment, slot)).or_default();
            rec.received += 1;
            rec.owd_last_secs = owd;
            rec.owd_max_secs = rec.owd_max_secs.max(owd);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Everything a finished run produces.
#[derive(Debug, Clone)]
pub struct BadabingAnalysis {
    /// The assembled experiment log (`yᵢ` records).
    pub log: ExperimentLog,
    /// Pattern counts and estimates.
    pub estimates: Estimates,
    /// §5.4 validation tallies.
    pub validation: Validation,
    /// Detector diagnostics.
    pub detector: DetectorReport,
}

impl BadabingAnalysis {
    /// Estimated episode frequency.
    pub fn frequency(&self) -> Option<f64> {
        self.estimates.frequency()
    }

    /// Estimated mean episode duration in seconds (improved estimator
    /// when available, otherwise basic).
    pub fn duration_secs(&self) -> Option<f64> {
        self.estimates
            .duration_secs_improved()
            .or_else(|| self.estimates.duration_secs_basic())
    }

    /// §3 end-to-end loss rate estimate: episode frequency × measured
    /// in-congestion packet loss intensity.
    pub fn loss_rate(&self) -> Option<f64> {
        Some(self.frequency()? * self.detector.loss_intensity()?)
    }
}

/// Wires a BADABING sender/receiver pair into a dumbbell and performs the
/// post-run analysis.
pub struct BadabingHarness {
    /// Sender node id.
    pub prober: NodeId,
    /// Receiver node id.
    pub receiver: NodeId,
    cfg: BadabingConfig,
    n_slots: u64,
}

impl BadabingHarness {
    /// Attach to a dumbbell: the probe flow is routed through the
    /// bottleneck to the receiver.
    pub fn attach(
        db: &mut badabing_sim::topology::Dumbbell,
        cfg: BadabingConfig,
        n_slots: u64,
        flow: FlowId,
        rng: StdRng,
    ) -> Self {
        let entry = db.bottleneck();
        Self::attach_via(db, cfg, n_slots, flow, entry, rng)
    }

    /// Attach to a dumbbell but send probes into `entry` instead of the
    /// bottleneck directly — used to interpose extra path elements (e.g.
    /// a [`badabing_sim::jitter::JitterLink`]) in front of the bottleneck.
    pub fn attach_via(
        db: &mut badabing_sim::topology::Dumbbell,
        cfg: BadabingConfig,
        n_slots: u64,
        flow: FlowId,
        entry: badabing_sim::node::NodeId,
        rng: StdRng,
    ) -> Self {
        let receiver = db.add_node(Box::new(BadabingReceiver::new()));
        db.route_flow(flow, receiver);
        let ingress = db.ingress_delay();
        let prober = db.add_node(Box::new(BadabingProber::new(
            cfg, n_slots, flow, entry, ingress, rng,
        )));
        Self {
            prober,
            receiver,
            cfg,
            n_slots,
        }
    }

    /// Attach to a multi-hop [`badabing_sim::tandem::TandemPath`]: probes
    /// enter at hop 0 and the receiver sits past the last hop.
    pub fn attach_tandem(
        path: &mut badabing_sim::tandem::TandemPath,
        cfg: BadabingConfig,
        n_slots: u64,
        flow: FlowId,
        rng: StdRng,
    ) -> Self {
        let receiver = path.add_node(Box::new(BadabingReceiver::new()));
        path.route_flow(flow, receiver);
        let ingress = path.ingress();
        let ingress_delay = path.ingress_delay();
        let prober = path.add_node(Box::new(BadabingProber::new(
            cfg,
            n_slots,
            flow,
            ingress,
            ingress_delay,
            rng,
        )));
        Self {
            prober,
            receiver,
            cfg,
            n_slots,
        }
    }

    /// The measurement horizon in seconds (`N × Δ`); run the simulation at
    /// least this long plus in-flight slack (≈ 1 s) before analyzing.
    pub fn horizon_secs(&self) -> f64 {
        self.n_slots as f64 * self.cfg.slot_secs
    }

    /// The configuration in use.
    pub fn config(&self) -> &BadabingConfig {
        &self.cfg
    }

    /// Join sender and receiver logs into time-ordered observations.
    pub fn observations(&self, sim: &Simulator) -> Vec<ProbeObservation> {
        let sent = sim.node::<BadabingProber>(self.prober).sent();
        let arrivals = sim.node::<BadabingReceiver>(self.receiver).arrivals();
        let mut obs: Vec<ProbeObservation> = sent
            .iter()
            .map(|s| {
                let rec = arrivals.get(&(s.experiment, s.slot));
                let received = rec.map_or(0, |r| r.received).min(s.packets);
                ProbeObservation {
                    experiment: s.experiment,
                    slot: s.slot,
                    send_time_secs: s.send_time_secs,
                    packets_sent: s.packets,
                    packets_lost: s.packets - received,
                    owd_last_secs: rec.map(|r| r.owd_last_secs),
                    owd_max_secs: rec.map(|r| r.owd_max_secs),
                }
            })
            .collect();
        obs.sort_by(|a, b| a.send_time_secs.total_cmp(&b.send_time_secs));
        obs
    }

    /// Run the detector + estimators over the collected observations.
    pub fn analyze(&self, sim: &Simulator) -> BadabingAnalysis {
        let obs = self.observations(sim);
        let detector = CongestionDetector::new(&self.cfg);
        let (log, report) = detector.assemble(&obs, self.n_slots, self.cfg.slot_secs);
        let estimates = Estimates::from_log(&log);
        let validation = Validation::from_log(&log);
        BadabingAnalysis {
            log,
            estimates,
            validation,
            detector: report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::topology::Dumbbell;
    use badabing_stats::rng::seeded;
    use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

    #[test]
    fn idle_path_reports_zero_frequency() {
        let mut db = Dumbbell::standard();
        let cfg = BadabingConfig::paper_default(0.5);
        let n_slots = 4_000; // 20 s
        let h = BadabingHarness::attach(&mut db, cfg, n_slots, FlowId(900), seeded(1, "bb"));
        db.run_for(h.horizon_secs() + 1.0);
        let a = h.analyze(&db.sim);
        assert!(a.log.len() > 1_500, "experiments: {}", a.log.len());
        assert_eq!(a.frequency(), Some(0.0));
        assert_eq!(a.duration_secs(), None, "no loss → duration undefined");
        assert_eq!(a.detector.probes_with_loss, 0);
        assert!(a.validation.passes(0.25));
    }

    #[test]
    fn probe_sender_covers_experiment_slots() {
        let mut db = Dumbbell::standard();
        let cfg = BadabingConfig::paper_default(1.0);
        let h = BadabingHarness::attach(&mut db, cfg, 100, FlowId(900), seeded(2, "bb-all"));
        db.run_for(2.0);
        let sent = db.sim.node::<BadabingProber>(h.prober).sent();
        // p = 1: an experiment starts at every slot 0..100, probing slots
        // i and i+1 → 200 probes total (2 per experiment).
        assert_eq!(sent.len(), 200);
        // Probes of one experiment sit in adjacent slots.
        let by_exp: std::collections::HashMap<u64, Vec<u64>> = {
            let mut m: std::collections::HashMap<u64, Vec<u64>> = Default::default();
            for s in sent {
                m.entry(s.experiment).or_default().push(s.slot);
            }
            m
        };
        for (exp, mut slots) in by_exp {
            slots.sort_unstable();
            assert_eq!(slots.len(), 2, "experiment {exp}");
            assert_eq!(slots[1], slots[0] + 1, "experiment {exp}");
        }
    }

    #[test]
    fn send_times_align_with_slot_starts() {
        let mut db = Dumbbell::standard();
        let cfg = BadabingConfig::paper_default(0.3);
        let h = BadabingHarness::attach(&mut db, cfg, 2_000, FlowId(900), seeded(3, "bb-align"));
        db.run_for(h.horizon_secs() + 0.5);
        for s in db.sim.node::<BadabingProber>(h.prober).sent() {
            let slot_start = h.config().slot_start_secs(s.slot);
            assert!(
                (s.send_time_secs - slot_start).abs() < 1e-9,
                "probe for slot {} sent at {}",
                s.slot,
                s.send_time_secs
            );
        }
    }

    #[test]
    fn detects_cbr_episodes_with_sensible_accuracy() {
        // The headline behaviour: with CBR loss episodes of 68 ms, a p=0.5
        // run of 2 minutes should land close to the ground truth.
        let mut db = Dumbbell::standard();
        let cbr = CbrEpisodeConfig {
            mean_gap_secs: 5.0,
            ..CbrEpisodeConfig::paper_default()
        };
        attach_cbr(&mut db, FlowId(1), cbr, seeded(10, "cbr"));
        let cfg = BadabingConfig::paper_default(0.5);
        let n_slots = 24_000; // 120 s
        let h = BadabingHarness::attach(&mut db, cfg, n_slots, FlowId(900), seeded(11, "bb"));
        db.run_for(h.horizon_secs() + 1.0);
        let gt = db.ground_truth(h.horizon_secs());
        let a = h.analyze(&db.sim);
        let f_true = gt.frequency();
        let f_hat = a.frequency().expect("nonempty run");
        assert!(f_true > 0.005, "ground truth too quiet: {f_true}");
        assert!(
            (f_hat - f_true).abs() / f_true < 0.5,
            "frequency: estimated {f_hat}, true {f_true}"
        );
        let d_true = gt.mean_duration_secs();
        let d_hat = a.duration_secs().expect("episodes observed");
        assert!(
            (d_hat - d_true).abs() / d_true < 0.5,
            "duration: estimated {d_hat}, true {d_true}"
        );
        assert!(a.validation.passes(0.5), "validation: {:?}", a.validation);
    }

    #[test]
    fn loss_rate_tracks_router_loss_rate_order_of_magnitude() {
        let mut db = Dumbbell::standard();
        let cbr = CbrEpisodeConfig {
            mean_gap_secs: 4.0,
            ..CbrEpisodeConfig::paper_default()
        };
        attach_cbr(&mut db, FlowId(1), cbr, seeded(31, "cbr"));
        let cfg = BadabingConfig::paper_default(0.7);
        let h = BadabingHarness::attach(&mut db, cfg, 24_000, FlowId(900), seeded(32, "bb"));
        db.run_for(h.horizon_secs() + 1.0);
        let a = h.analyze(&db.sim);
        let est = a.loss_rate().expect("loss observed");
        // Truth: the *end-to-end* loss rate a uniform packet stream would
        // see ≈ episode time fraction × in-episode drop fraction (~0.5 at
        // 2× overdrive): a small number of the same order as the router
        // loss rate experienced by the overdriving CBR flow itself.
        let gt = db.ground_truth(h.horizon_secs());
        let rough_truth = gt.frequency() * 0.5;
        assert!(
            est > rough_truth / 4.0 && est < rough_truth * 4.0,
            "loss rate estimate {est} vs rough truth {rough_truth}"
        );
    }

    #[test]
    fn improved_mode_produces_extended_experiments() {
        let mut db = Dumbbell::standard();
        let cfg = BadabingConfig::paper_default(0.5).with_improved();
        let h = BadabingHarness::attach(&mut db, cfg, 4_000, FlowId(900), seeded(4, "bb-imp"));
        db.run_for(h.horizon_secs() + 1.0);
        let a = h.analyze(&db.sim);
        assert!(a.estimates.extended_experiments > 0);
        assert!(a.estimates.basic_experiments > 0);
        let frac = a.estimates.extended_experiments as f64 / a.log.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "extended fraction {frac}");
    }

    #[test]
    fn observations_are_complete_and_ordered() {
        let mut db = Dumbbell::standard();
        let cfg = BadabingConfig::paper_default(0.3);
        let h = BadabingHarness::attach(&mut db, cfg, 2_000, FlowId(900), seeded(6, "bb-obs"));
        db.run_for(h.horizon_secs() + 1.0);
        let obs = h.observations(&db.sim);
        let sent = db.sim.node::<BadabingProber>(h.prober).sent().len();
        assert_eq!(obs.len(), sent);
        assert!(obs
            .windows(2)
            .all(|w| w[0].send_time_secs <= w[1].send_time_secs));
        // Idle path: every packet arrives, base OWD ≈ ingress + tx + 50 ms.
        for o in &obs {
            assert_eq!(o.packets_lost, 0);
            let owd = o.owd_max_secs.unwrap();
            assert!((0.0500..0.0520).contains(&owd), "owd {owd}");
        }
    }
}
