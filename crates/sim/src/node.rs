//! The component model: nodes and their dispatch context.
//!
//! Every active element — traffic source, sink, router queue, prober — is a
//! [`Node`]. The engine owns all nodes and dispatches events to them one at
//! a time; a node reacts by mutating its own state and emitting new events
//! through the borrowed [`Context`]. Emitted events are buffered in the
//! context and flushed into the global queue after the handler returns, so a
//! node never needs (and never gets) a reference to another node.

use crate::event::Event;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Index of a node within the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Handler context passed to nodes during dispatch.
///
/// Provides the current virtual time, packet-id allocation, and event
/// emission. All emissions are relative to the node receiving the dispatch
/// (`self_id`) unless an explicit target is given.
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    next_packet_id: &'a mut u64,
    out: &'a mut Vec<(SimTime, NodeId, Event)>,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        now: SimTime,
        self_id: NodeId,
        next_packet_id: &'a mut u64,
        out: &'a mut Vec<(SimTime, NodeId, Event)>,
    ) -> Self {
        Self {
            now,
            self_id,
            next_packet_id,
            out,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node currently being dispatched.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Allocate a globally unique packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        id
    }

    /// Deliver `packet` to node `to` after `delay`.
    pub fn send(&mut self, to: NodeId, packet: Packet, delay: SimDuration) {
        self.out
            .push((self.now + delay, to, Event::Deliver(packet)));
    }

    /// Fire `Timer(token)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.out
            .push((self.now + delay, self.self_id, Event::Timer(token)));
    }

    /// Fire `Timer(token)` on this node at absolute time `at` (must not be
    /// in the past).
    ///
    /// # Panics
    /// Panics if `at < now`.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        assert!(
            at >= self.now,
            "timer scheduled in the past: {at} < {}",
            self.now
        );
        self.out.push((at, self.self_id, Event::Timer(token)));
    }
}

/// An active simulation component.
pub trait Node: Any {
    /// Called once when the simulation starts, before any event fires.
    /// Nodes schedule their initial timers here. Default: no-op.
    fn start(&mut self, _ctx: &mut Context<'_>) {}

    /// A packet has arrived at this node.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>);

    /// A timer set by this node has fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {}

    /// Downcast support so harnesses can extract results after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A sink that counts and remembers the packets it receives. Useful as a
/// flow terminator and in tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    received: u64,
    bytes: u64,
    last_arrival: Option<SimTime>,
}

impl CountingSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Bytes received so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Arrival time of the most recent packet.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }
}

impl Node for CountingSink {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        self.received += 1;
        self.bytes += u64::from(packet.size);
        self.last_arrival = Some(ctx.now());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};

    #[test]
    fn context_allocates_monotonic_packet_ids() {
        let mut next = 5u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), &mut next, &mut out);
        assert_eq!(ctx.next_packet_id(), 5);
        assert_eq!(ctx.next_packet_id(), 6);
        assert_eq!(next, 7);
    }

    #[test]
    fn context_buffers_emissions() {
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::from_nanos(100), NodeId(3), &mut next, &mut out);
        ctx.set_timer(SimDuration::from_nanos(10), 42);
        let pkt = Packet {
            id: 0,
            flow: FlowId(0),
            size: 100,
            created: ctx.now(),
            kind: PacketKind::Udp { seq: 0 },
        };
        ctx.send(NodeId(9), pkt, SimDuration::from_nanos(5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, SimTime::from_nanos(110));
        assert_eq!(out[0].1, NodeId(3));
        assert_eq!(out[1].0, SimTime::from_nanos(105));
        assert_eq!(out[1].1, NodeId(9));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn absolute_timer_in_past_panics() {
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::from_nanos(100), NodeId(0), &mut next, &mut out);
        ctx.set_timer_at(SimTime::from_nanos(50), 0);
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::from_nanos(7), NodeId(0), &mut next, &mut out);
        let pkt = Packet {
            id: 0,
            flow: FlowId(1),
            size: 1500,
            created: SimTime::ZERO,
            kind: PacketKind::Udp { seq: 0 },
        };
        sink.on_packet(pkt, &mut ctx);
        sink.on_packet(pkt, &mut ctx);
        assert_eq!(sink.received(), 2);
        assert_eq!(sink.bytes(), 3000);
        assert_eq!(sink.last_arrival(), Some(SimTime::from_nanos(7)));
    }
}
