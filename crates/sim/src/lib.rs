//! Discrete-event network simulator for the BADABING reproduction.
//!
//! The paper's testbed (Figure 3) is a dumbbell: traffic generators feed two
//! Cisco GSRs over Gigabit Ethernet, the flows multiplex onto a single OC3
//! (155 Mb/s) bottleneck with ~100 ms of buffer and 50 ms of emulated
//! propagation delay per direction, and Endace DAG cards capture every
//! packet entering and leaving the bottleneck as ground truth.
//!
//! This crate reproduces that substrate in virtual time:
//!
//! * [`engine::Simulator`] — a single-threaded event scheduler over integer
//!   nanosecond [`time::SimTime`];
//! * [`node::Node`] — the component trait (traffic sources, sinks, queues,
//!   probers all plug in as nodes);
//! * [`queue::DropTailQueue`] — the store-and-forward FIFO bottleneck with
//!   byte-bounded buffer and exact per-packet serialization times;
//! * [`monitor::Monitor`] — the DAG-card stand-in: an exact per-packet trace
//!   of enqueue/drop/depart events at the bottleneck, from which queue-length
//!   series and ground-truth loss episodes (§3's definitions) are derived;
//! * [`topology::Dumbbell`] — a builder that wires the standard experiment
//!   topology used by every table and figure.
//!
//! Determinism: the engine breaks event-time ties by insertion sequence and
//! all stochastic components draw from seeded, per-stream RNGs, so a given
//! (seed, configuration) pair replays identically.

pub mod engine;
pub mod event;
pub mod jitter;
pub mod monitor;
pub mod node;
pub mod packet;
pub mod queue;
pub mod red;
pub mod tandem;
pub mod time;
pub mod topology;

pub use engine::Simulator;
pub use event::{default_queue_kind, set_default_queue_kind, Event, QueueKind};
pub use monitor::{
    GroundTruth, GroundTruthConfig, Monitor, MonitorHandle, TraceEvent, TraceRecord,
};
pub use node::{Context, Node, NodeId};
pub use packet::{FlowId, Packet, PacketKind};
pub use queue::DropTailQueue;
pub use red::{RedConfig, RedQueue};
pub use tandem::{HopConfig, TandemPath};
pub use time::{SimDuration, SimTime};
pub use topology::{Dumbbell, DumbbellConfig};
