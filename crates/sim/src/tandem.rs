//! Multi-hop (tandem-queue) paths.
//!
//! The paper's testbed has a single congested hop; §6.2 defers "more
//! complex multi-hop scenarios" to future work. [`TandemPath`] builds a
//! chain of drop-tail queues so experiments can measure how the method
//! behaves when probes cross several queues — e.g. a lightly loaded
//! access hop in front of the true bottleneck, which adds delay noise to
//! the one-way-delay signal the §6.1 detector thresholds on.

use crate::engine::Simulator;
use crate::monitor::{GroundTruth, GroundTruthConfig, Monitor, MonitorHandle};
use crate::node::{Node, NodeId};
use crate::packet::FlowId;
use crate::queue::{DropTailQueue, FlowDemux};
use crate::time::{SimDuration, SimTime};

/// One hop of the tandem.
#[derive(Debug, Clone, Copy)]
pub struct HopConfig {
    /// Service rate in bits/second.
    pub rate_bps: u64,
    /// Buffer as drain time in seconds.
    pub buffer_secs: f64,
    /// Propagation delay to the next hop (or to the egress demux for the
    /// last hop).
    pub prop_delay: SimDuration,
    /// Buffer particle size (1 = exact bytes).
    pub cell_bytes: u32,
}

impl HopConfig {
    /// Buffer capacity in bytes.
    pub fn buffer_bytes(&self) -> u64 {
        (self.buffer_secs * self.rate_bps as f64 / 8.0) as u64
    }
}

/// A chain of drop-tail queues with per-hop monitors.
pub struct TandemPath {
    /// The simulator.
    pub sim: Simulator,
    hops: Vec<NodeId>,
    monitors: Vec<MonitorHandle>,
    hop_configs: Vec<HopConfig>,
    demux_id: NodeId,
    ingress_delay: SimDuration,
    reverse_delay: SimDuration,
}

impl TandemPath {
    /// Build a tandem of the given hops. Traffic enters at hop 0 and
    /// leaves through the egress demux after the last hop.
    ///
    /// # Panics
    /// Panics if `hops` is empty.
    pub fn new(hops: &[HopConfig], ingress_delay: SimDuration, reverse_delay: SimDuration) -> Self {
        assert!(!hops.is_empty(), "a path needs at least one hop");
        let mut sim = Simulator::new();
        let demux_id = sim.add_node(Box::new(FlowDemux::new()));
        // Build back to front so each hop knows its successor.
        let mut next = demux_id;
        let mut ids_rev = Vec::new();
        let mut monitors_rev = Vec::new();
        for hop in hops.iter().rev() {
            let monitor = Monitor::new_handle();
            let id = sim.add_node(Box::new(
                DropTailQueue::new(hop.rate_bps, hop.buffer_bytes(), next, hop.prop_delay)
                    .with_cell_bytes(hop.cell_bytes)
                    .with_monitor(monitor.clone()),
            ));
            ids_rev.push(id);
            monitors_rev.push(monitor);
            next = id;
        }
        ids_rev.reverse();
        monitors_rev.reverse();
        Self {
            sim,
            hops: ids_rev,
            monitors: monitors_rev,
            hop_configs: hops.to_vec(),
            demux_id,
            ingress_delay,
            reverse_delay,
        }
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The entry node (hop 0's queue) — sources send here.
    pub fn ingress(&self) -> NodeId {
        self.hops[0]
    }

    /// The node id of hop `i`'s queue (for injecting cross traffic at an
    /// interior hop).
    pub fn hop(&self, i: usize) -> NodeId {
        self.hops[i]
    }

    /// Monitor of hop `i`.
    pub fn monitor(&self, i: usize) -> MonitorHandle {
        self.monitors[i].clone()
    }

    /// Opt every hop's monitor into full per-event trace retention. Call
    /// before the first run.
    ///
    /// # Panics
    /// Panics if events have already been recorded.
    pub fn enable_trace(&mut self) {
        for m in &self.monitors {
            m.borrow_mut().enable_trace();
        }
    }

    /// Ingress delay for sources.
    pub fn ingress_delay(&self) -> SimDuration {
        self.ingress_delay
    }

    /// Reverse-path delay for ACK traffic.
    pub fn reverse_delay(&self) -> SimDuration {
        self.reverse_delay
    }

    /// Add a node.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.sim.add_node(node)
    }

    /// Route a flow's egress to `dst`.
    pub fn route_flow(&mut self, flow: FlowId, dst: NodeId) {
        self.sim
            .node_mut::<FlowDemux>(self.demux_id)
            .register(flow, dst);
    }

    /// Route unknown flows to `dst`.
    pub fn route_default(&mut self, dst: NodeId) {
        self.sim
            .node_mut::<FlowDemux>(self.demux_id)
            .set_default(dst);
    }

    /// Run for `secs` of virtual time.
    pub fn run_for(&mut self, secs: f64) {
        self.sim.run_until(SimTime::from_secs_f64(secs));
    }

    /// Ground truth at hop `i`.
    pub fn ground_truth(&self, i: usize, horizon_secs: f64) -> GroundTruth {
        GroundTruth::extract(
            &self.monitors[i].borrow(),
            horizon_secs,
            GroundTruthConfig {
                queue_capacity_secs: self.hop_configs[i].buffer_secs,
                ..Default::default()
            },
        )
    }

    /// Combined (any-hop) congestion ground truth: a slot is congested if
    /// it is congested at any hop — what an end-to-end tool actually
    /// measures.
    pub fn ground_truth_end_to_end(&self, horizon_secs: f64) -> GroundTruth {
        let mut gts: Vec<GroundTruth> = (0..self.hops.len())
            .map(|i| self.ground_truth(i, horizon_secs))
            .collect();
        let mut combined = gts.remove(0);
        for gt in gts {
            combined.episodes.extend(gt.episodes);
        }
        combined.episodes.sort_by_key(|e| e.start);
        // Merge overlapping episodes from different hops.
        let mut merged: Vec<crate::monitor::LossEpisode> = Vec::new();
        for e in combined.episodes.drain(..) {
            match merged.last_mut() {
                Some(last) if e.start <= last.end => {
                    last.end = last.end.max(e.end);
                    last.drops += e.drops;
                }
                _ => merged.push(e),
            }
        }
        combined.episodes = merged;
        // Rebuild the slot indicator from the merged episodes.
        let slot = combined.config.slot_secs;
        let n_slots = (horizon_secs / slot).round() as usize;
        let mut slots = vec![false; n_slots];
        for e in &combined.episodes {
            let first = (e.start.as_secs_f64() / slot) as usize;
            let last = ((e.end.as_secs_f64() / slot) as usize).min(n_slots.saturating_sub(1));
            for s in slots.iter_mut().take(last + 1).skip(first.min(n_slots)) {
                *s = true;
            }
        }
        combined.congested = badabing_stats::runs::EpisodeSet::from_bools(&slots);
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Context, CountingSink};
    use crate::packet::{Packet, PacketKind};
    use std::any::Any;

    fn hop(rate_mbps: u64, buffer_ms: u64) -> HopConfig {
        HopConfig {
            rate_bps: rate_mbps * 1_000_000,
            buffer_secs: buffer_ms as f64 / 1000.0,
            prop_delay: SimDuration::from_millis(10),
            cell_bytes: 1500,
        }
    }

    struct Burst {
        dst: NodeId,
        n: u64,
    }
    impl Node for Burst {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                let pkt = Packet {
                    id: ctx.next_packet_id(),
                    flow: FlowId(1),
                    size: 1500,
                    created: ctx.now(),
                    kind: PacketKind::Udp { seq: i },
                };
                ctx.send(self.dst, pkt, SimDuration::from_micros(100));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn packets_traverse_all_hops() {
        let mut path = TandemPath::new(
            &[hop(100, 100), hop(10, 100)],
            SimDuration::from_micros(100),
            SimDuration::from_millis(10),
        );
        assert_eq!(path.hop_count(), 2);
        let sink = path.add_node(Box::new(CountingSink::new()));
        path.route_flow(FlowId(1), sink);
        let ingress = path.ingress();
        path.add_node(Box::new(Burst {
            dst: ingress,
            n: 10,
        }));
        path.run_for(2.0);
        assert_eq!(path.sim.node::<CountingSink>(sink).received(), 10);
        assert_eq!(path.monitor(0).borrow().departs(), 10);
        assert_eq!(path.monitor(1).borrow().departs(), 10);
    }

    #[test]
    fn second_hop_bottleneck_takes_the_loss() {
        // Hop 0: 100 Mb/s, huge buffer. Hop 1: 10 Mb/s with only 10 ms of
        // buffer (12.5 kB): a 100-packet burst overflows hop 1 only.
        let mut path = TandemPath::new(
            &[hop(100, 200), hop(10, 10)],
            SimDuration::from_micros(100),
            SimDuration::from_millis(10),
        );
        let sink = path.add_node(Box::new(CountingSink::new()));
        path.route_flow(FlowId(1), sink);
        let ingress = path.ingress();
        path.add_node(Box::new(Burst {
            dst: ingress,
            n: 100,
        }));
        path.run_for(3.0);
        assert_eq!(
            path.monitor(0).borrow().drops(),
            0,
            "first hop must not drop"
        );
        assert!(
            path.monitor(1).borrow().drops() > 0,
            "bottleneck hop must drop"
        );
        let gt = path.ground_truth_end_to_end(3.0);
        assert!(!gt.episodes.is_empty());
        assert_eq!(
            gt.episodes.len(),
            path.ground_truth(1, 3.0).episodes.len(),
            "end-to-end truth equals hop-1 truth when hop 0 is clean"
        );
    }

    #[test]
    fn end_to_end_truth_merges_overlapping_hop_episodes() {
        // Both hops congest simultaneously: tight buffers on both.
        let mut path = TandemPath::new(
            &[hop(10, 5), hop(10, 5)],
            SimDuration::from_micros(100),
            SimDuration::from_millis(10),
        );
        let sink = path.add_node(Box::new(CountingSink::new()));
        path.route_flow(FlowId(1), sink);
        let ingress = path.ingress();
        path.add_node(Box::new(Burst {
            dst: ingress,
            n: 200,
        }));
        path.run_for(3.0);
        let gt0 = path.ground_truth(0, 3.0);
        let e2e = path.ground_truth_end_to_end(3.0);
        assert!(gt0.router_loss_rate > 0.0);
        // Merged episodes never overlap.
        for w in e2e.episodes.windows(2) {
            assert!(w[0].end < w[1].start);
        }
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_panics() {
        let _ = TandemPath::new(&[], SimDuration::ZERO, SimDuration::ZERO);
    }
}
