//! A jittering delay link.
//!
//! Adds an independent random delay to every packet, which can reorder
//! them — deliberately violating the FIFO assumption that §6.1's
//! formulation of probe-measured congestion relies on ("this formulation
//! ... assumes that queuing at intermediate routers is FIFO"). Used by
//! robustness tests to quantify how much delay noise and reordering the
//! detector tolerates before its estimates drift.

use crate::node::{Context, Node, NodeId};
use crate::packet::Packet;
use crate::time::SimDuration;
use badabing_stats::dist::{Sample, Uniform};
use rand::rngs::StdRng;
use std::any::Any;

/// Forwards packets to `next` after `base + U(0, jitter_max)`.
pub struct JitterLink {
    next: NodeId,
    base: SimDuration,
    jitter: Option<Uniform>,
    rng: StdRng,
    forwarded: u64,
}

impl JitterLink {
    /// Create a link with the given base delay and maximum jitter.
    pub fn new(next: NodeId, base: SimDuration, jitter_max: SimDuration, rng: StdRng) -> Self {
        let jitter = if jitter_max == SimDuration::ZERO {
            None
        } else {
            Some(Uniform::new(0.0, jitter_max.as_secs_f64()))
        };
        Self {
            next,
            base,
            jitter,
            rng,
            forwarded: 0,
        }
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Node for JitterLink {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        self.forwarded += 1;
        let extra = match &self.jitter {
            Some(u) => SimDuration::from_secs_f64(u.sample(&mut self.rng)),
            None => SimDuration::ZERO,
        };
        ctx.send(self.next, packet, self.base + extra);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::node::CountingSink;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::SimTime;
    use badabing_stats::rng::seeded;

    struct Burst {
        dst: NodeId,
        n: u64,
    }
    impl Node for Burst {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                let pkt = Packet {
                    id: ctx.next_packet_id(),
                    flow: FlowId(1),
                    size: 100,
                    created: ctx.now(),
                    kind: PacketKind::Udp { seq: i },
                };
                // Spaced 1 ms apart at the source.
                ctx.send(self.dst, pkt, SimDuration::from_millis(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sink that records arrival order by sequence number.
    #[derive(Default)]
    struct OrderSink {
        seqs: Vec<u64>,
    }
    impl Node for OrderSink {
        fn on_packet(&mut self, packet: Packet, _ctx: &mut Context<'_>) {
            if let PacketKind::Udp { seq } = packet.kind {
                self.seqs.push(seq);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn zero_jitter_is_a_fixed_delay_line() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let link = sim.add_node(Box::new(JitterLink::new(
            sink,
            SimDuration::from_millis(10),
            SimDuration::ZERO,
            seeded(1, "jit"),
        )));
        sim.add_node(Box::new(Burst { dst: link, n: 5 }));
        sim.run_to_completion();
        let s = sim.node::<CountingSink>(sink);
        assert_eq!(s.received(), 5);
        // Last packet: 4 ms source spacing + 10 ms link.
        assert_eq!(s.last_arrival(), Some(SimTime::from_secs_f64(0.014)));
        assert_eq!(sim.node::<JitterLink>(link).forwarded(), 5);
    }

    #[test]
    fn heavy_jitter_reorders() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(OrderSink::default()));
        let link = sim.add_node(Box::new(JitterLink::new(
            sink,
            SimDuration::ZERO,
            SimDuration::from_millis(50), // ≫ 1 ms source spacing
            seeded(7, "jit-reorder"),
        )));
        sim.add_node(Box::new(Burst { dst: link, n: 100 }));
        sim.run_to_completion();
        let seqs = &sim.node::<OrderSink>(sink).seqs;
        assert_eq!(seqs.len(), 100);
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, &sorted, "50 ms jitter over 1 ms spacing must reorder");
    }

    #[test]
    fn light_jitter_stays_in_bounds() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let link = sim.add_node(Box::new(JitterLink::new(
            sink,
            SimDuration::from_millis(5),
            SimDuration::from_millis(2),
            seeded(9, "jit-bound"),
        )));
        sim.add_node(Box::new(Burst { dst: link, n: 1 }));
        sim.run_to_completion();
        let t = sim
            .node::<CountingSink>(sink)
            .last_arrival()
            .unwrap()
            .as_secs_f64();
        assert!((0.005..0.007).contains(&t), "arrival at {t}");
    }
}
