//! The event queue.
//!
//! Two event kinds suffice for the whole system: a packet delivery to a node
//! and a node-local timer. Ties in firing time are broken by insertion
//! sequence number, which makes runs deterministic and preserves the
//! intuitive "FIFO among simultaneous events" semantics that the
//! store-and-forward queue relies on.

use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event to be dispatched to a node.
#[derive(Debug, Clone)]
pub enum Event {
    /// Deliver a packet to the node.
    Deliver(Packet),
    /// Fire a node-defined timer carrying an opaque token.
    Timer(u64),
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    target: NodeId,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of scheduled events, earliest first, FIFO among ties.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` for `target` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, target: NodeId, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            target,
            event,
        });
    }

    /// Remove and return the earliest event as `(time, target, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, NodeId, Event)> {
        self.heap.pop().map(|s| (s.at, s.target, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_at(q: &mut EventQueue, ns: u64, node: usize, token: u64) {
        q.push(SimTime::from_nanos(ns), NodeId(node), Event::Timer(token));
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 30, 0, 3);
        timer_at(&mut q, 10, 0, 1);
        timer_at(&mut q, 20, 0, 2);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, _, e)| match e {
                Event::Timer(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            timer_at(&mut q, 5, 0, token);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, _, e)| match e {
                Event::Timer(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        timer_at(&mut q, 42, 1, 0);
        timer_at(&mut q, 7, 2, 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
    }

    #[test]
    fn targets_are_preserved() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 1, 9, 0);
        let (_, target, _) = q.pop().unwrap();
        assert_eq!(target, NodeId(9));
    }
}
