//! The event queue.
//!
//! Two event kinds suffice for the whole system: a packet delivery to a node
//! and a node-local timer. Ties in firing time are broken by insertion
//! sequence number, which makes runs deterministic and preserves the
//! intuitive "FIFO among simultaneous events" semantics that the
//! store-and-forward queue relies on.
//!
//! ## Engines
//!
//! Two interchangeable engines implement the queue, selected by
//! [`QueueKind`]:
//!
//! * **Heap** — the reference `BinaryHeap<Scheduled>`: `O(log n)` push and
//!   pop, comparison-based.
//! * **Calendar** — a calendar queue (Brown 1988) / two-level
//!   hierarchical timer wheel (Varghese–Lauck 1987) keyed directly on
//!   `SimTime` nanoseconds: a fine ring of [`FINE_BUCKETS`] buckets of
//!   `1 << FINE_SHIFT` ns each (≈67 ms of virtual time), a coarse ring
//!   of one-fine-window epochs spanning ≈69 s, occupancy bitmaps for
//!   constant-time advance, and a min-heap overflow beyond the coarse
//!   window. Pushes within the windows are `O(1)`; dispatch drains a
//!   span of consecutive buckets into a sorted front stack, so pops are
//!   `Vec::pop` with an amortized `O(log k)` sort per event, and
//!   short-delay pushes insert directly into the small, cache-resident
//!   front.
//!
//! Both engines dispatch in **exactly** the same order — ascending
//! `(time, insertion-seq)`, a total order because `seq` is unique — so
//! seeded runs are byte-identical under either. The calendar engine does
//! not rely on bucket insertion order: it selects the bucket minimum by
//! key, which makes the equivalence structural rather than incidental
//! (see the differential tests). The default engine is Calendar; set the
//! `BADABING_ENGINE` environment variable to `heap` or `calendar`, or
//! call [`set_default_queue_kind`], to pin one (differential testing,
//! benchmarking).

use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::OnceLock;

/// An event to be dispatched to a node.
#[derive(Debug, Clone)]
pub enum Event {
    /// Deliver a packet to the node.
    Deliver(Packet),
    /// Fire a node-defined timer carrying an opaque token.
    Timer(u64),
}

/// Which engine backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Reference binary-heap engine.
    Heap,
    /// Calendar-queue / timer-wheel engine (default).
    Calendar,
}

/// Process-wide default engine override: 0 = unset, 1 = heap, 2 = calendar.
static KIND_OVERRIDE: AtomicU8 = AtomicU8::new(0);
/// Lazily parsed `BADABING_ENGINE` environment default.
static KIND_ENV: OnceLock<Option<QueueKind>> = OnceLock::new();

/// The engine new queues are built with: the programmatic override if one
/// was set, else the `BADABING_ENGINE` environment variable (`heap` or
/// `calendar`), else [`QueueKind::Calendar`].
pub fn default_queue_kind() -> QueueKind {
    match KIND_OVERRIDE.load(AtomicOrdering::Relaxed) {
        1 => return QueueKind::Heap,
        2 => return QueueKind::Calendar,
        _ => {}
    }
    let env = KIND_ENV.get_or_init(|| match std::env::var("BADABING_ENGINE").as_deref() {
        Ok("heap") => Some(QueueKind::Heap),
        Ok("calendar") => Some(QueueKind::Calendar),
        _ => None,
    });
    env.unwrap_or(QueueKind::Calendar)
}

/// Set (or with `None`, clear) the process-wide default engine. Meant for
/// differential tests and benchmarks that build many simulators and want
/// them all on one engine without threading a parameter everywhere.
pub fn set_default_queue_kind(kind: Option<QueueKind>) {
    let v = match kind {
        None => 0,
        Some(QueueKind::Heap) => 1,
        Some(QueueKind::Calendar) => 2,
    };
    KIND_OVERRIDE.store(v, AtomicOrdering::Relaxed);
}

#[derive(Debug)]
struct Scheduled {
    /// Packed sort key: firing time (u64 nanoseconds) in the high word,
    /// insertion sequence in the low. One wide integer compare orders by
    /// `(at, seq)`, and `key >> (64 + FINE_SHIFT)` is the virtual
    /// bucket in a single shift.
    key: u128,
    target: NodeId,
    event: Event,
}

impl Scheduled {
    fn new(at: SimTime, seq: u64, target: NodeId, event: Event) -> Self {
        Self {
            key: ((at.as_nanos() as u128) << 64) | seq as u128,
            target,
            event,
        }
    }

    fn at(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. `seq` is
        // unique, so key order is exactly `(at, seq)` lexicographic.
        other.key.cmp(&self.key)
    }
}

/// log2 of the fine bucket width in nanoseconds: 2^15 ns ≈ 32.8 µs —
/// the order of the typical inter-event spacing under load (thousands
/// of pending events spread over an RTT of tens of milliseconds), so
/// fine buckets hold a few events each: narrow enough that the front
/// sort stays in its cheap regime, wide enough that sparse workloads
/// do not pay a bitmap scan per event.
const FINE_SHIFT: u32 = 15;
/// Fine ring size; spans 2^26 ns ≈ 67 ms of virtual time — wider than
/// the simulated RTTs, so acks and retransmit timers land directly in
/// the fine ring instead of cascading through the coarse ring.
const FINE_BUCKETS: usize = 1 << 11;
const FINE_WORDS: usize = FINE_BUCKETS / 64;
/// Shift from a fine virtual bucket to its coarse epoch: one coarse
/// bucket holds exactly one fine window (2^26 ns ≈ 67 ms), so a
/// cascaded coarse bucket always fits the fine ring.
const EPOCH_SHIFT: u32 = 11;
/// Coarse ring size; spans 2^36 ns ≈ 68.7 s of virtual time. Timers
/// beyond that (rare: nothing in the simulator schedules minutes out)
/// wait in the `far` heap.
const COARSE_BUCKETS: usize = 1 << 10;
const COARSE_WORDS: usize = COARSE_BUCKETS / 64;
/// Preparing the front drains consecutive occupied fine buckets until it
/// holds at least this many events (or the epoch ends). A span keeps the
/// amortized prepare cost per pop low even when buckets hold a single
/// event each (sparse workloads), while dense buckets reach the target
/// in one swap.
const FRONT_TARGET: usize = 16;

/// Two-level calendar queue (a Varghese–Lauck hierarchical timer wheel
/// with an exact dispatch order). Invariants:
///
/// * the current front **span** — the contents of one or more
///   consecutive fine buckets — lives outside the rings in the `front`
///   stack, sorted **descending** by `(at, seq)`: the queue minimum is
///   `front.last()` and popping it is `Vec::pop`. While `front` is
///   non-empty it holds every pending item before `front_hi`:
///   preparing it advanced the fine cursor past the span and cascaded
///   every coarse/far item due inside it, so all ring/far items sort
///   strictly after the span, and pushes into the span insert into
///   `front` directly;
/// * every fine-ring item has virtual bucket `vb = at >> FINE_SHIFT` in
///   `[cursor_vb, cursor_vb + FINE_BUCKETS)`; every coarse-ring item
///   has epoch `e = vb >> EPOCH_SHIFT` in `[cursor epoch,
///   (cursor_vb >> EPOCH_SHIFT) + COARSE_BUCKETS)`. Ring indices `vb % ring len`
///   are therefore unique per virtual bucket, and circular bitmap scans
///   from the cursor visit buckets in ascending time order;
/// * `cursor_vb` (a fine virtual bucket) never exceeds the virtual
///   bucket of any pending item; it advances only when a new front
///   bucket is prepared;
/// * `far` holds items beyond the coarse window until the window
///   reaches them.
///
/// An event is touched O(1) times outside the front sort: push into its
/// level, at most one cascade from `far` to coarse, one from coarse to
/// fine, and one move into `front`. The front sort is amortized
/// `O(log k)` per event for a k-event span, and k stays near
/// [`FRONT_TARGET`] by construction.
#[derive(Debug)]
struct CalendarQueue {
    /// Current front span, sorted descending by key; the queue minimum
    /// is its last element.
    front: Vec<Scheduled>,
    /// Exclusive upper fine virtual bucket of the span drained into
    /// `front` (meaningful only while `front` is non-empty): every ring
    /// or far item has virtual bucket at or after this.
    front_hi: u64,
    fine: Vec<Vec<Scheduled>>,
    fine_bitmap: [u64; FINE_WORDS],
    /// Items in fine buckets (excludes `front`, coarse and `far`).
    fine_len: usize,
    coarse: Vec<Vec<Scheduled>>,
    coarse_bitmap: [u64; COARSE_WORDS],
    coarse_len: usize,
    cursor_vb: u64,
    far: BinaryHeap<Scheduled>,
}

impl CalendarQueue {
    fn new() -> Self {
        Self {
            front: Vec::new(),
            front_hi: 0,
            fine: std::iter::repeat_with(Vec::new)
                .take(FINE_BUCKETS)
                .collect(),
            fine_bitmap: [0; FINE_WORDS],
            fine_len: 0,
            coarse: std::iter::repeat_with(Vec::new)
                .take(COARSE_BUCKETS)
                .collect(),
            coarse_bitmap: [0; COARSE_WORDS],
            coarse_len: 0,
            cursor_vb: 0,
            far: BinaryHeap::new(),
        }
    }

    /// Fine virtual bucket of a packed key: the firing time divided by
    /// the fine bucket width, in one shift.
    fn vb_of(key: u128) -> u64 {
        (key >> (64 + FINE_SHIFT)) as u64
    }

    fn push(&mut self, s: Scheduled) {
        let vb = Self::vb_of(s.key);
        if !self.front.is_empty() && vb < self.front_hi {
            // The push lands inside the active front span, which is kept
            // sorted (descending): insert in place. Short reschedules —
            // the bulk of a simulation's pushes — take this L1-resident
            // path and never touch the rings.
            let pos = self.front.partition_point(|x| x.key > s.key);
            self.front.insert(pos, s);
            return;
        }
        // Clamp into the cursor bucket if something schedules before the
        // cursor (cannot happen through the engine, which never schedules
        // into the past; harmless if it does — the clamp lands it in the
        // first-scanned bucket, and selection is by key, so order is
        // preserved).
        let vb = vb.max(self.cursor_vb);
        if vb - self.cursor_vb < FINE_BUCKETS as u64 {
            let b = (vb % FINE_BUCKETS as u64) as usize;
            if self.fine[b].is_empty() {
                self.fine_bitmap[b / 64] |= 1 << (b % 64);
            }
            self.fine[b].push(s);
            self.fine_len += 1;
            return;
        }
        let epoch = vb >> EPOCH_SHIFT;
        if epoch - (self.cursor_vb >> EPOCH_SHIFT) < COARSE_BUCKETS as u64 {
            let b = (epoch % COARSE_BUCKETS as u64) as usize;
            if self.coarse[b].is_empty() {
                self.coarse_bitmap[b / 64] |= 1 << (b % 64);
            }
            self.coarse[b].push(s);
            self.coarse_len += 1;
            return;
        }
        self.far.push(s);
    }

    /// First occupied index of `bitmap` at or circularly after `start`.
    fn next_occupied(bitmap: &[u64], start: usize) -> Option<usize> {
        let words = bitmap.len();
        let sw = start / 64;
        let sb = start % 64;
        let w = bitmap[sw] & (!0u64 << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        for k in 1..words {
            let i = (sw + k) % words;
            let w = bitmap[i];
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        let w = bitmap[sw] & !(!0u64 << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    /// Whether the coarse ring has an occupied epoch in `[cursor epoch,
    /// bound_epoch]`. The span is at most one fine window = one epoch
    /// wide, so this checks at most two bits.
    fn coarse_due(&self, bound_epoch: u64) -> Option<u64> {
        if self.coarse_len == 0 {
            return None;
        }
        let mut e = self.cursor_vb >> EPOCH_SHIFT;
        while e <= bound_epoch {
            let b = (e % COARSE_BUCKETS as u64) as usize;
            if self.coarse_bitmap[b / 64] & (1 << (b % 64)) != 0 {
                return Some(e);
            }
            e += 1;
        }
        None
    }

    /// Empty coarse epoch `e` into the fine ring (each item lands in its
    /// exact fine bucket — one epoch spans exactly one fine window).
    fn cascade_epoch(&mut self, e: u64) {
        let b = (e % COARSE_BUCKETS as u64) as usize;
        self.coarse_bitmap[b / 64] &= !(1 << (b % 64));
        let mut items = std::mem::take(&mut self.coarse[b]);
        self.coarse_len -= items.len();
        self.cursor_vb = self.cursor_vb.max(e << EPOCH_SHIFT);
        for s in items.drain(..) {
            self.push(s);
        }
        // Park the emptied allocation back in the slot for reuse.
        self.coarse[b] = items;
    }

    /// Pull every `far` item whose epoch has come inside the coarse
    /// window into the rings. The far heap is a min-heap on `(at, seq)`,
    /// so the loop stops at the first survivor.
    fn migrate_due_far(&mut self) {
        let cursor_epoch = self.cursor_vb >> EPOCH_SHIFT;
        while let Some(o) = self.far.peek() {
            let epoch = (Self::vb_of(o.key) >> EPOCH_SHIFT).max(cursor_epoch);
            if epoch - cursor_epoch >= COARSE_BUCKETS as u64 {
                break;
            }
            let s = self.far.pop().unwrap();
            self.push(s);
        }
    }

    /// Refill the (empty) `front` stack with the earliest pending
    /// bucket: cascade due coarse epochs and far items, scan the fine
    /// bitmap, swap the winning bucket's contents out of the ring, sort
    /// them descending. Runs once per bucket, not per pop. Returns
    /// `false` if nothing is pending anywhere.
    fn prepare_front(&mut self) -> bool {
        debug_assert!(self.front.is_empty());
        loop {
            if self.fine_len == 0 {
                if self.coarse_len > 0 {
                    // Map the first occupied slot at or circularly after
                    // the cursor's slot back to its epoch: it lies within
                    // one coarse window of the cursor epoch.
                    let cursor_epoch = self.cursor_vb >> EPOCH_SHIFT;
                    let cursor_slot = cursor_epoch % COARSE_BUCKETS as u64;
                    let slot = Self::next_occupied(&self.coarse_bitmap, cursor_slot as usize)
                        .expect("coarse items but bitmap empty")
                        as u64;
                    let delta =
                        (slot + COARSE_BUCKETS as u64 - cursor_slot) % COARSE_BUCKETS as u64;
                    self.cascade_epoch(cursor_epoch + delta);
                    continue;
                }
                if self.far.is_empty() {
                    return false;
                }
                // Jump the cursor straight to the far top so the
                // migration lands its whole leading window.
                let key = self.far.peek().unwrap().key;
                self.cursor_vb = self.cursor_vb.max(Self::vb_of(key));
                self.migrate_due_far();
                continue;
            }
            let b = Self::next_occupied(
                &self.fine_bitmap,
                (self.cursor_vb % FINE_BUCKETS as u64) as usize,
            )
            .expect("fine items but bitmap empty");
            // The slot's virtual bucket: every item in it shares one vb,
            // except cursor-clamped strays, which share the cursor slot —
            // either way `vb` of any element identifies the slot's epoch.
            let vb = Self::vb_of(self.fine[b][0].key).max(self.cursor_vb);
            // Order guard: a coarse epoch (or far item) could still hold
            // events at or before this candidate — at most the cursor's
            // epoch and the next, since the fine window spans one epoch.
            if let Some(e) = self.coarse_due(vb >> EPOCH_SHIFT) {
                self.cascade_epoch(e);
                continue;
            }
            if let Some(o) = self.far.peek() {
                if Self::vb_of(o.key) >> EPOCH_SHIFT <= vb >> EPOCH_SHIFT {
                    self.migrate_due_far();
                    continue;
                }
            }
            // Candidate confirmed. The old front Vec (empty, with
            // capacity) parks in the ring slot for reuse; the bucket's
            // items seed the new front.
            std::mem::swap(&mut self.front, &mut self.fine[b]);
            self.fine_len -= self.front.len();
            self.fine_bitmap[b / 64] &= !(1 << (b % 64));
            // Extend the span over consecutive occupied buckets until it
            // holds FRONT_TARGET events. The guards above cleared every
            // coarse epoch and far item at or before this epoch, so any
            // fine bucket still inside it may be drained without another
            // guard check; the epoch boundary is the stopping point.
            let epoch_end = ((vb >> EPOCH_SHIFT) + 1) << EPOCH_SHIFT;
            let mut vb_last = vb;
            while self.front.len() < FRONT_TARGET && self.fine_len > 0 {
                let nb = match Self::next_occupied(
                    &self.fine_bitmap,
                    ((vb_last + 1) % FINE_BUCKETS as u64) as usize,
                ) {
                    Some(nb) => nb,
                    None => break,
                };
                let nvb = Self::vb_of(self.fine[nb][0].key).max(vb_last + 1);
                if nvb >= epoch_end {
                    break;
                }
                let mut items = std::mem::take(&mut self.fine[nb]);
                self.fine_len -= items.len();
                self.fine_bitmap[nb / 64] &= !(1 << (nb % 64));
                self.front.append(&mut items);
                self.fine[nb] = items;
                vb_last = nvb;
            }
            self.front
                .sort_unstable_by_key(|x| std::cmp::Reverse(x.key));
            self.front_hi = vb_last + 1;
            // Every bucket before the span's end is drained and every
            // coarse/far item lies beyond it, so the cursor may advance
            // past the whole span; pushes from here on either land in
            // the active front (before `front_hi`) or at/after the
            // cursor.
            self.cursor_vb = self.front_hi;
            return true;
        }
    }

    fn pop(&mut self) -> Option<Scheduled> {
        if let Some(s) = self.front.pop() {
            return Some(s);
        }
        if !self.prepare_front() {
            return None;
        }
        self.front.pop()
    }

    /// Pop the front only if it fires at or before `t_end`.
    fn pop_at_or_before(&mut self, t_end: SimTime) -> Option<Scheduled> {
        if self.front.is_empty() && !self.prepare_front() {
            return None;
        }
        let last = self.front.last().expect("prepared front is non-empty");
        if last.at() <= t_end {
            self.front.pop()
        } else {
            None
        }
    }

    /// Front firing time without mutating (for the immutable peek):
    /// takes the minimum over the sorted front, the first occupied fine
    /// bucket, the first occupied coarse epoch and the far top —
    /// `O(first bucket)`, but peeks are off the dispatch fast path.
    fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.front.last() {
            return Some(s.at());
        }
        let fine_key = if self.fine_len == 0 {
            None
        } else {
            let b = Self::next_occupied(
                &self.fine_bitmap,
                (self.cursor_vb % FINE_BUCKETS as u64) as usize,
            )
            .expect("fine items but bitmap empty");
            self.fine[b].iter().map(|s| s.key).min()
        };
        let coarse_key = if self.coarse_len == 0 {
            None
        } else {
            let b = Self::next_occupied(
                &self.coarse_bitmap,
                ((self.cursor_vb >> EPOCH_SHIFT) % COARSE_BUCKETS as u64) as usize,
            )
            .expect("coarse items but bitmap empty");
            self.coarse[b].iter().map(|s| s.key).min()
        };
        let far_key = self.far.peek().map(|o| o.key);
        let key = [fine_key, coarse_key, far_key]
            .into_iter()
            .flatten()
            .min()?;
        Some(SimTime::from_nanos((key >> 64) as u64))
    }

    fn len(&self) -> usize {
        self.front.len() + self.fine_len + self.coarse_len + self.far.len()
    }
}

#[derive(Debug)]
enum Engine {
    Heap(BinaryHeap<Scheduled>),
    Calendar(Box<CalendarQueue>),
}

/// Priority queue of scheduled events, earliest first, FIFO among ties.
#[derive(Debug)]
pub struct EventQueue {
    engine: Engine,
    kind: QueueKind,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue on the process-default engine (see
    /// [`default_queue_kind`]).
    pub fn new() -> Self {
        Self::with_kind(default_queue_kind())
    }

    /// An empty queue on a specific engine.
    pub fn with_kind(kind: QueueKind) -> Self {
        let engine = match kind {
            QueueKind::Heap => Engine::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Engine::Calendar(Box::new(CalendarQueue::new())),
        };
        Self {
            engine,
            kind,
            next_seq: 0,
        }
    }

    /// Which engine backs this queue.
    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// Schedule `event` for `target` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, target: NodeId, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled::new(at, seq, target, event);
        match &mut self.engine {
            Engine::Heap(h) => h.push(s),
            Engine::Calendar(c) => c.push(s),
        }
    }

    /// Remove and return the earliest event as `(time, target, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, NodeId, Event)> {
        match &mut self.engine {
            Engine::Heap(h) => h.pop(),
            Engine::Calendar(c) => c.pop(),
        }
        .map(|s| (s.at(), s.target, s.event))
    }

    /// Remove and return the earliest event if it fires at or before
    /// `t_end`; otherwise leave the queue untouched. One front lookup
    /// instead of a peek-then-pop pair — the dispatch loop's fast path.
    pub fn pop_at_or_before(&mut self, t_end: SimTime) -> Option<(SimTime, NodeId, Event)> {
        match &mut self.engine {
            Engine::Heap(h) => {
                if h.peek().is_some_and(|s| s.at() <= t_end) {
                    h.pop()
                } else {
                    None
                }
            }
            Engine::Calendar(c) => c.pop_at_or_before(t_end),
        }
        .map(|s| (s.at(), s.target, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.engine {
            Engine::Heap(h) => h.peek().map(|s| s.at()),
            Engine::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.engine {
            Engine::Heap(h) => h.len(),
            Engine::Calendar(c) => c.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

    fn timer_at(q: &mut EventQueue, ns: u64, node: usize, token: u64) {
        q.push(SimTime::from_nanos(ns), NodeId(node), Event::Timer(token));
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, _, e)| match e {
                Event::Timer(t) => t,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            timer_at(&mut q, 30, 0, 3);
            timer_at(&mut q, 10, 0, 1);
            timer_at(&mut q, 20, 0, 2);
            assert_eq!(drain_tokens(&mut q), vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            for token in 0..100 {
                timer_at(&mut q, 5, 0, token);
            }
            assert_eq!(
                drain_tokens(&mut q),
                (0..100).collect::<Vec<_>>(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn peek_and_len() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            timer_at(&mut q, 42, 1, 0);
            timer_at(&mut q, 7, 2, 0);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        }
    }

    #[test]
    fn targets_are_preserved() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            timer_at(&mut q, 1, 9, 0);
            let (_, target, _) = q.pop().unwrap();
            assert_eq!(target, NodeId(9));
        }
    }

    #[test]
    fn pop_at_or_before_respects_the_bound() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            timer_at(&mut q, 100, 0, 1);
            timer_at(&mut q, 200, 0, 2);
            assert!(q.pop_at_or_before(SimTime::from_nanos(50)).is_none());
            assert_eq!(q.len(), 2, "{kind:?}: a refused pop must not remove");
            let (at, _, _) = q.pop_at_or_before(SimTime::from_nanos(100)).unwrap();
            assert_eq!(at, SimTime::from_nanos(100));
            assert!(q.pop_at_or_before(SimTime::from_nanos(150)).is_none());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_still_order() {
        // Mix events inside the fine window (< 67 ms) with seconds-away
        // timers (coarse ring), interleaving pushes and pops.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        timer_at(&mut q, 5_000_000_000, 0, 50); // 5 s — overflow
        timer_at(&mut q, 1_000, 0, 1);
        timer_at(&mut q, 2_000_000_000, 0, 20); // 2 s — overflow
        timer_at(&mut q, 2_000, 0, 2);
        assert_eq!(q.len(), 4);
        let (at, _, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_nanos(1_000));
        // After popping, push something between the overflow items: the
        // window has not advanced that far, so it also overflows.
        timer_at(&mut q, 3_000_000_000, 0, 30);
        assert_eq!(drain_tokens(&mut q), vec![2, 20, 30, 50]);
    }

    #[test]
    fn overflow_and_ring_ties_keep_insertion_order() {
        // An overflow item and a ring item at the same instant: the one
        // pushed first must pop first, across the structural boundary.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        timer_at(&mut q, 200_000_000, 0, 1); // 200 ms: overflow at push time
        timer_at(&mut q, 1, 0, 0);
        // Drain to 150 ms so the window now covers 200 ms.
        let (_, _, _) = q.pop().unwrap();
        timer_at(&mut q, 150_000_000, 0, 2);
        let (_, _, _) = q.pop().unwrap();
        // Now a ring push at the very same time as the overflow item,
        // inserted later → must pop after it.
        timer_at(&mut q, 200_000_000, 0, 3);
        assert_eq!(drain_tokens(&mut q), vec![1, 3]);
    }

    #[test]
    fn engines_agree_on_a_randomized_workload() {
        // Deterministic LCG; interleaved pushes and pops with clustered
        // times (ties), window-local times, and far-future overflow times.
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut now = 0u64;
        let mut token = 0u64;
        for round in 0..2_000 {
            let r = rng();
            if r % 3 != 0 {
                // Push at now + jitter; every ~20th lands seconds away.
                let horizon = if r % 20 == 7 { 3_000_000_000 } else { 400_000 };
                let at = now + (rng() % horizon) / (1 + (r % 4)); // clusters
                timer_at(&mut heap, at, (round % 5) as usize, token);
                timer_at(&mut cal, at, (round % 5) as usize, token);
                token += 1;
            } else {
                let a = heap.pop();
                let b = cal.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some((ta, na, Event::Timer(ka))), Some((tb, nb, Event::Timer(kb)))) => {
                        assert_eq!((ta, na, ka), (tb, nb, kb), "divergence at round {round}");
                        now = ta.as_nanos();
                    }
                    other => panic!("engines disagree on emptiness: {other:?}"),
                }
            }
            assert_eq!(heap.len(), cal.len());
        }
        // Drain the rest in lockstep.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some((ta, na, Event::Timer(ka))), Some((tb, nb, Event::Timer(kb)))) => {
                    assert_eq!((ta, na, ka), (tb, nb, kb));
                }
                other => panic!("tail divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn default_kind_override_round_trips() {
        // Serialize against other tests touching the global: this test is
        // the only one that mutates it (the rest pin kinds explicitly).
        set_default_queue_kind(Some(QueueKind::Heap));
        assert_eq!(default_queue_kind(), QueueKind::Heap);
        assert_eq!(EventQueue::new().kind(), QueueKind::Heap);
        set_default_queue_kind(Some(QueueKind::Calendar));
        assert_eq!(default_queue_kind(), QueueKind::Calendar);
        set_default_queue_kind(None);
        let k = default_queue_kind();
        assert!(k == QueueKind::Heap || k == QueueKind::Calendar);
    }
}
