//! A RED (Random Early Detection) bottleneck queue.
//!
//! The paper evaluates on a drop-tail FIFO — the §6.1 detector leans on
//! the fact that loss coincides with a full buffer, i.e. maximal delay.
//! Active queue management breaks exactly that coupling: RED drops
//! *before* the buffer fills, at moderate delays, so loss episodes no
//! longer pin the queue at `OWDmax`. This queue exists to measure how the
//! method degrades under AQM (`ablation_red` in the bench crate) — the
//! kind of "more complex environment" §6.2 defers to future work.
//!
//! Classic RED (Floyd & Jacobson): an EWMA of the queue occupancy is
//! compared against `[min_th, max_th]`; below `min_th` nothing drops,
//! above `max_th` everything drops, in between the drop probability rises
//! linearly to `max_p` and is inflated by the count of packets since the
//! last drop so that drops spread out evenly.

use crate::monitor::{MonitorHandle, TraceEvent};
use crate::node::{Context, Node, NodeId};
use crate::packet::Packet;
use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::RngExt;
use std::any::Any;
use std::collections::VecDeque;

const TOKEN_TX_DONE: u64 = 0;

/// RED parameters.
#[derive(Debug, Clone, Copy)]
pub struct RedConfig {
    /// EWMA weight for the average queue size (classic 0.002).
    pub weight: f64,
    /// Lower threshold as a fraction of capacity (drops start here).
    pub min_th_frac: f64,
    /// Upper threshold as a fraction of capacity (all arrivals drop
    /// above the *average* staying here).
    pub max_th_frac: f64,
    /// Maximum early-drop probability at `max_th`.
    pub max_p: f64,
}

impl Default for RedConfig {
    fn default() -> Self {
        Self {
            weight: 0.002,
            min_th_frac: 0.25,
            max_th_frac: 0.75,
            max_p: 0.1,
        }
    }
}

/// A RED queue serving packets at a fixed rate.
pub struct RedQueue {
    rate_bps: u64,
    capacity_bytes: u64,
    next_hop: NodeId,
    prop_delay: SimDuration,
    red: RedConfig,
    rng: StdRng,
    buf: VecDeque<Packet>,
    buf_bytes: u64,
    avg_bytes: f64,
    since_last_drop: u64,
    busy: bool,
    monitor: Option<MonitorHandle>,
    early_drops: u64,
    forced_drops: u64,
}

impl RedQueue {
    /// Create a RED queue.
    ///
    /// # Panics
    /// Panics on zero rate/capacity or inconsistent thresholds.
    pub fn new(
        rate_bps: u64,
        capacity_bytes: u64,
        next_hop: NodeId,
        prop_delay: SimDuration,
        red: RedConfig,
        rng: StdRng,
    ) -> Self {
        assert!(
            rate_bps > 0 && capacity_bytes > 0,
            "rate and capacity must be positive"
        );
        assert!(
            0.0 < red.min_th_frac && red.min_th_frac < red.max_th_frac && red.max_th_frac <= 1.0,
            "thresholds must satisfy 0 < min < max <= 1"
        );
        assert!(
            (0.0..=1.0).contains(&red.max_p),
            "max_p must be a probability"
        );
        Self {
            rate_bps,
            capacity_bytes,
            next_hop,
            prop_delay,
            red,
            rng,
            buf: VecDeque::new(),
            buf_bytes: 0,
            avg_bytes: 0.0,
            since_last_drop: 0,
            busy: false,
            monitor: None,
            early_drops: 0,
            forced_drops: 0,
        }
    }

    /// Attach a passive monitor.
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Early (probabilistic) drops so far.
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// Forced drops (buffer exhausted or average above `max_th`).
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }

    /// Occupancy as drain time in seconds.
    pub fn occupancy_secs(&self) -> f64 {
        self.buf_bytes as f64 * 8.0 / self.rate_bps as f64
    }

    fn trace(&self, ctx: &Context<'_>, event: TraceEvent, pkt: &Packet) {
        if let Some(m) = &self.monitor {
            m.borrow_mut()
                .record(ctx.now(), event, pkt, self.occupancy_secs());
        }
    }

    /// RED admission decision. Returns true to drop.
    fn should_drop(&mut self, size: u32) -> (bool, bool) {
        // Update the average (when idle, classic RED decays it; the
        // simple instantaneous update is adequate at our event density).
        self.avg_bytes =
            (1.0 - self.red.weight) * self.avg_bytes + self.red.weight * self.buf_bytes as f64;
        let min_th = self.red.min_th_frac * self.capacity_bytes as f64;
        let max_th = self.red.max_th_frac * self.capacity_bytes as f64;

        if self.buf_bytes + u64::from(size) > self.capacity_bytes {
            return (true, true); // physical overflow
        }
        if self.avg_bytes < min_th {
            self.since_last_drop += 1;
            return (false, false);
        }
        if self.avg_bytes >= max_th {
            return (true, true);
        }
        let pb = self.red.max_p * (self.avg_bytes - min_th) / (max_th - min_th);
        let denom = (1.0 - self.since_last_drop as f64 * pb).max(1e-9);
        let pa = (pb / denom).clamp(0.0, 1.0);
        if self.rng.random::<f64>() < pa {
            (true, false)
        } else {
            self.since_last_drop += 1;
            (false, false)
        }
    }

    fn start_tx(&mut self, ctx: &mut Context<'_>) {
        let front = self.buf.front().expect("start_tx on empty queue");
        let tx = SimDuration::transmission(front.size, self.rate_bps);
        self.busy = true;
        ctx.set_timer(tx, TOKEN_TX_DONE);
    }
}

impl Node for RedQueue {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let (drop, forced) = self.should_drop(packet.size);
        if drop {
            if forced {
                self.forced_drops += 1;
            } else {
                self.early_drops += 1;
            }
            self.since_last_drop = 0;
            self.trace(ctx, TraceEvent::Drop, &packet);
            return;
        }
        self.buf_bytes += u64::from(packet.size);
        self.buf.push_back(packet);
        self.trace(ctx, TraceEvent::Enqueue, &packet);
        if !self.busy {
            self.start_tx(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, TOKEN_TX_DONE);
        let pkt = self.buf.pop_front().expect("tx-done with empty queue");
        self.buf_bytes -= u64::from(pkt.size);
        self.trace(ctx, TraceEvent::Depart, &pkt);
        ctx.send(self.next_hop, pkt, self.prop_delay);
        if self.buf.is_empty() {
            self.busy = false;
        } else {
            self.start_tx(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::node::CountingSink;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::SimTime;
    use badabing_stats::rng::seeded;

    fn queue(rng_label: &str) -> RedQueue {
        RedQueue::new(
            8_000_000,
            100_000,
            NodeId(0),
            SimDuration::ZERO,
            RedConfig::default(),
            seeded(1, rng_label),
        )
    }

    fn ctx_parts() -> (u64, Vec<(SimTime, NodeId, crate::event::Event)>) {
        (0, Vec::new())
    }

    fn udp(id: u64) -> Packet {
        Packet {
            id,
            flow: FlowId(1),
            size: 1000,
            created: SimTime::ZERO,
            kind: PacketKind::Udp { seq: id },
        }
    }

    #[test]
    fn below_min_threshold_never_drops() {
        let mut q = queue("red-low");
        let (mut next, mut out) = ctx_parts();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(1), &mut next, &mut out);
        // Keep instantaneous occupancy low: feed 10 packets; avg stays
        // near zero — far below min_th (25 kB).
        for i in 0..10 {
            q.on_packet(udp(i), &mut ctx);
        }
        assert_eq!(q.early_drops() + q.forced_drops(), 0);
    }

    #[test]
    fn sustained_overload_drops_early_not_just_at_capacity() {
        // Push the queue to a standing occupancy between thresholds: RED
        // must shed with early drops before the buffer physically fills.
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(RedQueue::new(
            8_000_000, // 1 MB/s service
            100_000,
            sink,
            SimDuration::ZERO,
            RedConfig::default(),
            seeded(2, "red-overload"),
        )));
        // 1.2 MB/s offered: 1200 B packet per ms.
        struct Cbr {
            dst: NodeId,
            n: u32,
        }
        impl Node for Cbr {
            fn start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                let pkt = Packet {
                    id: ctx.next_packet_id(),
                    flow: FlowId(1),
                    size: 1200,
                    created: ctx.now(),
                    kind: PacketKind::Udp { seq: 0 },
                };
                ctx.send(self.dst, pkt, SimDuration::ZERO);
                self.n -= 1;
                if self.n > 0 {
                    ctx.set_timer(SimDuration::from_millis(1), 0);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_node(Box::new(Cbr { dst: q, n: 20_000 }));
        sim.run_to_completion();
        let rq = sim.node::<RedQueue>(q);
        assert!(rq.early_drops() > 50, "early drops: {}", rq.early_drops());
        // RED keeps the queue from pinning: most drops are early, not
        // physical overflows.
        assert!(
            rq.early_drops() + rq.forced_drops() > 0 && rq.forced_drops() < rq.early_drops(),
            "early {} vs forced {}",
            rq.early_drops(),
            rq.forced_drops()
        );
    }

    #[test]
    fn forced_drop_on_physical_overflow() {
        let mut q = queue("red-full");
        let (mut next, mut out) = ctx_parts();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(1), &mut next, &mut out);
        // Instantly oversubscribe the 100 kB buffer with 1 kB packets; the
        // EWMA lags, so the tail drops are forced overflows.
        for i in 0..150 {
            q.on_packet(udp(i), &mut ctx);
        }
        assert!(q.forced_drops() > 0);
        assert!(q.occupancy_secs() <= 0.1 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_bad_thresholds() {
        let _ = RedQueue::new(
            1_000_000,
            1_000,
            NodeId(0),
            SimDuration::ZERO,
            RedConfig {
                min_th_frac: 0.8,
                max_th_frac: 0.5,
                ..Default::default()
            },
            seeded(0, "bad"),
        );
    }
}
