//! Packets and flow identifiers.
//!
//! The simulator models packets at the granularity the experiments need:
//! wire size (which drives queue occupancy and serialization time), a flow
//! identifier (so the monitor can attribute drops and Figure 8 can separate
//! probe losses from cross-traffic losses), and a small typed payload for
//! the protocol machinery (TCP sequence numbers, probe tags).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies one end-to-end flow (a TCP connection, a UDP blaster, or a
/// probe stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// Typed packet payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// TCP data segment covering bytes `[seq, seq + len)`.
    TcpData {
        /// First byte covered.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// Pure TCP acknowledgment (cumulative).
    TcpAck {
        /// Next byte expected by the receiver.
        ack: u64,
    },
    /// TCP acknowledgment carrying SACK blocks (RFC 2018, which the
    /// paper's related work cites as one consequence of understanding
    /// loss). Blocks are `[start, end)` segment ranges received above
    /// the cumulative ack; only the first `n_blocks` entries are valid.
    TcpSack {
        /// Next segment expected by the receiver.
        ack: u64,
        /// Out-of-order ranges, most recently updated first.
        blocks: [(u64, u64); 3],
        /// Number of valid blocks.
        n_blocks: u8,
    },
    /// UDP datagram from a constant-bit-rate or bursty source.
    Udp {
        /// Per-flow sequence number.
        seq: u64,
    },
    /// A probe packet.
    Probe {
        /// Identifier of the experiment this probe belongs to.
        experiment: u64,
        /// The time slot this probe targets.
        slot: u64,
        /// Index of this packet within the probe (probes carry 1..=N
        /// packets sent back to back, §6.1).
        idx: u8,
        /// Total packets in this probe.
        probe_len: u8,
        /// Sender-side per-flow sequence number (for receiver-side loss
        /// detection, as in the real tool).
        seq: u64,
    },
}

impl PacketKind {
    /// Whether this is probe traffic.
    pub fn is_probe(&self) -> bool {
        matches!(self, PacketKind::Probe { .. })
    }
}

/// A simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet id (assigned by the creator via
    /// [`crate::node::Context::next_packet_id`]).
    pub id: u64,
    /// Owning flow.
    pub flow: FlowId,
    /// Total wire size in bytes (headers + payload); this is what occupies
    /// queue buffer and determines serialization time.
    pub size: u32,
    /// Creation timestamp (sender-side, used for one-way delay).
    pub created: SimTime,
    /// Typed payload.
    pub kind: PacketKind,
}

impl Packet {
    /// One-way delay from creation to `now`, in seconds.
    pub fn owd_secs(&self, now: SimTime) -> f64 {
        now.since(self.created).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn probe_detection() {
        let probe = PacketKind::Probe {
            experiment: 1,
            slot: 2,
            idx: 0,
            probe_len: 3,
            seq: 9,
        };
        assert!(probe.is_probe());
        assert!(!PacketKind::Udp { seq: 0 }.is_probe());
        assert!(!PacketKind::TcpData { seq: 0, len: 1448 }.is_probe());
        assert!(!PacketKind::TcpAck { ack: 10 }.is_probe());
    }

    #[test]
    fn owd_measures_from_creation() {
        let p = Packet {
            id: 1,
            flow: FlowId(7),
            size: 600,
            created: SimTime::from_secs_f64(1.0),
            kind: PacketKind::Udp { seq: 0 },
        };
        let now = SimTime::from_secs_f64(1.0) + SimDuration::from_millis(62);
        assert!((p.owd_secs(now) - 0.062).abs() < 1e-9);
        // A packet "received" before creation reports zero, not negative.
        assert_eq!(p.owd_secs(SimTime::ZERO), 0.0);
    }
}
