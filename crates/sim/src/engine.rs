//! The simulation engine: node registry plus event loop.

use crate::event::{Event, EventQueue, QueueKind};
use crate::node::{Context, Node, NodeId};
use crate::time::SimTime;
use badabing_metrics::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Upper bucket edges for the virtual-time step histogram: events in this
/// simulator are queueing/transmission-scale, so the interesting range is
/// sub-microsecond (coincident events) up to around a second (idle gaps).
const STEP_BOUNDS_SECS: [f64; 8] = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Pre-resolved instrument handles so the dispatch loop never touches the
/// registry lock (see `badabing_metrics`' hot-path contract).
struct Instruments {
    registry: Arc<Registry>,
    deliver_events: Arc<Counter>,
    timer_events: Arc<Counter>,
    step: Arc<Histogram>,
}

/// Owns all nodes and the event queue; advances virtual time by dispatching
/// events in order.
pub struct Simulator {
    nodes: Vec<Box<dyn Node>>,
    queue: EventQueue,
    now: SimTime,
    started: bool,
    next_packet_id: u64,
    dispatched: u64,
    out_buf: Vec<(SimTime, NodeId, Event)>,
    instruments: Option<Instruments>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// An empty simulator at t = 0, on the process-default event engine
    /// (see [`crate::event::default_queue_kind`]).
    pub fn new() -> Self {
        Self::with_queue_kind(crate::event::default_queue_kind())
    }

    /// An empty simulator at t = 0 on a specific event engine.
    pub fn with_queue_kind(kind: QueueKind) -> Self {
        Self {
            nodes: Vec::new(),
            queue: EventQueue::with_kind(kind),
            now: SimTime::ZERO,
            started: false,
            next_packet_id: 0,
            dispatched: 0,
            out_buf: Vec::new(),
            instruments: None,
        }
    }

    /// Which event engine this simulator runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Attach a metrics registry: every subsequent dispatch counts into
    /// `events_deliver` / `events_timer` and records its virtual-time
    /// advance in the `virtual_step_secs` histogram. Counters accumulate,
    /// so several simulators may share one registry (parallel replicate
    /// runs fold into pool totals).
    pub fn attach_metrics(&mut self, registry: Arc<Registry>) {
        self.instruments = Some(Instruments {
            deliver_events: registry.counter("events_deliver"),
            timer_events: registry.counter("events_timer"),
            step: registry.histogram_with("virtual_step_secs", &STEP_BOUNDS_SECS),
            registry,
        });
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.instruments.as_ref().map(|i| &i.registry)
    }

    /// Register a node, returning its id.
    ///
    /// # Panics
    /// Panics if called after the simulation has started (node ids are
    /// wired into other nodes' routing, so late registration is a bug).
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        assert!(
            !self.started,
            "cannot add nodes after the simulation started"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events currently pending in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable downcast access to a node (for result extraction).
    ///
    /// # Panics
    /// Panics if the id is out of range or the concrete type does not match.
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.0]
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch in Simulator::node")
    }

    /// Mutable downcast access to a node.
    ///
    /// # Panics
    /// Panics if the id is out of range or the concrete type does not match.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch in Simulator::node_mut")
    }

    /// Run `start` hooks if not yet run.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = NodeId(i);
            let mut ctx = Context::new(self.now, id, &mut self.next_packet_id, &mut self.out_buf);
            self.nodes[i].start(&mut ctx);
            Self::flush(&mut self.queue, &mut self.out_buf);
        }
    }

    fn flush(queue: &mut EventQueue, out: &mut Vec<(SimTime, NodeId, Event)>) {
        for (at, target, event) in out.drain(..) {
            queue.push(at, target, event);
        }
    }

    /// Dispatch events until the queue is empty or the next event is after
    /// `t_end`; the clock finishes at exactly `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        self.ensure_started();
        while let Some((at, target, event)) = self.queue.pop_at_or_before(t_end) {
            debug_assert!(at >= self.now, "event queue went backwards");
            if let Some(ins) = &self.instruments {
                ins.step.record_secs(at.since(self.now).as_secs_f64());
                match event {
                    Event::Deliver(_) => ins.deliver_events.inc(),
                    Event::Timer(_) => ins.timer_events.inc(),
                }
            }
            self.now = at;
            self.dispatched += 1;
            let mut ctx = Context::new(
                self.now,
                target,
                &mut self.next_packet_id,
                &mut self.out_buf,
            );
            match event {
                Event::Deliver(pkt) => self.nodes[target.0].on_packet(pkt, &mut ctx),
                Event::Timer(token) => self.nodes[target.0].on_timer(token, &mut ctx),
            }
            Self::flush(&mut self.queue, &mut self.out_buf);
        }
        if t_end > self.now {
            self.now = t_end;
        }
    }

    /// Run until no events remain (only safe when every node eventually goes
    /// quiet; sources with unbounded timers never do — use
    /// [`Self::run_until`] for those).
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::from_nanos(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::CountingSink;
    use crate::packet::{FlowId, Packet, PacketKind};
    use crate::time::SimDuration;
    use std::any::Any;

    /// Emits `count` packets to `dst`, one every `gap`.
    struct PeriodicSource {
        dst: NodeId,
        gap: SimDuration,
        remaining: u32,
        flow: FlowId,
    }

    impl Node for PeriodicSource {
        fn start(&mut self, ctx: &mut Context<'_>) {
            if self.remaining > 0 {
                ctx.set_timer(self.gap, 0);
            }
        }

        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}

        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
            let pkt = Packet {
                id: ctx.next_packet_id(),
                flow: self.flow,
                size: 100,
                created: ctx.now(),
                kind: PacketKind::Udp {
                    seq: u64::from(self.remaining),
                },
            };
            ctx.send(self.dst, pkt, SimDuration::from_millis(1));
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(self.gap, 0);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn source_to_sink_delivery() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        sim.add_node(Box::new(PeriodicSource {
            dst: sink,
            gap: SimDuration::from_millis(10),
            remaining: 5,
            flow: FlowId(1),
        }));
        sim.run_to_completion();
        assert_eq!(sim.node::<CountingSink>(sink).received(), 5);
        // Last packet: timer at 50ms + 1ms delivery.
        assert_eq!(
            sim.node::<CountingSink>(sink).last_arrival(),
            Some(SimTime::from_secs_f64(0.051))
        );
    }

    #[test]
    fn run_until_stops_at_horizon_and_resumes() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        sim.add_node(Box::new(PeriodicSource {
            dst: sink,
            gap: SimDuration::from_millis(10),
            remaining: 5,
            flow: FlowId(1),
        }));
        sim.run_until(SimTime::from_secs_f64(0.025));
        assert_eq!(sim.node::<CountingSink>(sink).received(), 2);
        assert_eq!(sim.now(), SimTime::from_secs_f64(0.025));
        sim.run_to_completion();
        assert_eq!(sim.node::<CountingSink>(sink).received(), 5);
    }

    #[test]
    fn clock_advances_to_horizon_with_no_events() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
        assert_eq!(sim.dispatched(), 0);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn late_node_registration_panics() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::from_nanos(1));
        sim.add_node(Box::new(CountingSink::new()));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_downcast_panics() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let _ = sim.node::<PeriodicSource>(sink);
    }

    #[test]
    fn attached_metrics_count_every_dispatch() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        sim.add_node(Box::new(PeriodicSource {
            dst: sink,
            gap: SimDuration::from_millis(10),
            remaining: 5,
            flow: FlowId(1),
        }));
        let reg = Arc::new(Registry::new("sim"));
        sim.attach_metrics(reg.clone());
        assert!(sim.metrics().is_some());
        sim.run_to_completion();
        let deliver = reg.counter("events_deliver").get();
        let timer = reg.counter("events_timer").get();
        assert_eq!(deliver, 5, "one delivery per packet");
        assert_eq!(timer, 5, "one timer firing per emission");
        assert_eq!(deliver + timer, sim.dispatched());
        let steps = reg.histogram_with("virtual_step_secs", &STEP_BOUNDS_SECS);
        assert_eq!(steps.count(), sim.dispatched());
        // The largest step is the 10 ms inter-emission gap.
        assert!((steps.max_secs().unwrap() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn packet_ids_are_globally_unique() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        for f in 0..3 {
            sim.add_node(Box::new(PeriodicSource {
                dst: sink,
                gap: SimDuration::from_millis(1),
                remaining: 10,
                flow: FlowId(f),
            }));
        }
        sim.run_to_completion();
        assert_eq!(sim.node::<CountingSink>(sink).received(), 30);
    }
}
