//! Virtual time in integer nanoseconds.
//!
//! The paper stresses that the probe process only requires the time
//! discretization to be finer than the congestion dynamics of interest (§7).
//! Internally the simulator keeps *exact* integer-nanosecond time so that
//! serialization times at OC3 rates (a 1500-byte packet is ~77 µs) and 30 µs
//! intra-probe packet gaps are represented without rounding drift.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulation clock, in nanoseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (fine for reporting; internal
    /// arithmetic stays integral).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`; saturates at zero instead of wrapping.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// The exact serialization time of `bytes` at `rate_bps` bits/second,
    /// rounded to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics if `rate_bps` is zero.
    pub fn transmission(bytes: u32, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * NANOS_PER_SEC as u128 + (rate_bps as u128 / 2)) / rate_bps as u128;
        SimDuration(ns as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "time subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(30).as_nanos(), 30_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!((t - SimTime::from_nanos(100)).as_nanos(), 50);
        let mut d = SimDuration::from_nanos(10);
        d += SimDuration::from_nanos(5);
        assert_eq!(d.as_nanos(), 15);
        assert_eq!(d.mul(3).as_nanos(), 45);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a).as_nanos(), 5);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn transmission_time_oc3() {
        // 1500 bytes at 155.52 Mb/s ≈ 77.16 µs.
        let d = SimDuration::transmission(1500, 155_520_000);
        let expect = 1500.0 * 8.0 / 155_520_000.0;
        assert!(
            (d.as_secs_f64() - expect).abs() < 2e-9,
            "got {}",
            d.as_secs_f64()
        );
    }

    #[test]
    fn transmission_time_zero_bytes() {
        assert_eq!(SimDuration::transmission(0, 1_000_000).as_nanos(), 0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
