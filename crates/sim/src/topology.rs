//! The standard experiment topology.
//!
//! Every experiment in the paper runs on the same dumbbell (Figure 3):
//! sources feed a single OC3 bottleneck (155 Mb/s payload rate, ~100 ms of
//! buffer) with 50 ms of emulated propagation delay per direction, and a
//! passive monitor watches the bottleneck. [`Dumbbell`] wires that up once
//! so that the per-experiment harnesses only attach sources and sinks.

use crate::engine::Simulator;
use crate::monitor::{GroundTruth, GroundTruthConfig, Monitor, MonitorHandle};
use crate::node::{Node, NodeId};
use crate::packet::FlowId;
use crate::queue::{DropTailQueue, FlowDemux};
use crate::red::{RedConfig, RedQueue};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the dumbbell; defaults match the paper's testbed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DumbbellConfig {
    /// Bottleneck service rate in bits/second. Default: OC3 payload rate,
    /// 155.52 Mb/s.
    pub bottleneck_rate_bps: u64,
    /// Bottleneck buffer expressed as drain time in seconds. Default 0.1
    /// (the testbed queue held "approximately 100 milliseconds of packets").
    pub buffer_secs: f64,
    /// Forward-path propagation delay from the bottleneck to receivers.
    /// Default 50 ms (the Adtech SX-14 added 50 ms each way).
    pub forward_delay: SimDuration,
    /// Reverse-path delay (receiver back to sender, uncongested in the
    /// testbed). Default 50 ms.
    pub reverse_delay: SimDuration,
    /// Access delay from a source into the bottleneck (the GE/OC12 ingress,
    /// effectively uncongested). Default 0.1 ms.
    pub ingress_delay: SimDuration,
    /// Buffer-allocation particle size at the bottleneck. The testbed's
    /// Cisco GSR carves buffers into fixed particles, which is why the
    /// paper's 600-byte probes stress the buffer like full-size frames
    /// (§6.1 footnote); default 1500 models that. Set 1 for exact byte
    /// accounting.
    pub buffer_cell_bytes: u32,
}

impl Default for DumbbellConfig {
    fn default() -> Self {
        Self {
            bottleneck_rate_bps: 155_520_000,
            buffer_secs: 0.1,
            forward_delay: SimDuration::from_millis(50),
            reverse_delay: SimDuration::from_millis(50),
            ingress_delay: SimDuration::from_micros(100),
            buffer_cell_bytes: 1500,
        }
    }
}

impl DumbbellConfig {
    /// Buffer capacity in bytes implied by `buffer_secs`.
    pub fn buffer_bytes(&self) -> u64 {
        (self.buffer_secs * self.bottleneck_rate_bps as f64 / 8.0) as u64
    }

    /// Base round-trip time for the standard configuration (forward +
    /// reverse propagation, excluding queueing): the paper's `M`.
    pub fn base_rtt(&self) -> SimDuration {
        self.forward_delay + self.reverse_delay + self.ingress_delay
    }
}

/// The wired dumbbell: a simulator pre-populated with the bottleneck queue,
/// the egress demux, and a passive monitor.
pub struct Dumbbell {
    /// The simulator; attach sources/sinks with [`Dumbbell::add_node`] and
    /// run with [`Dumbbell::run_for`].
    pub sim: Simulator,
    config: DumbbellConfig,
    queue_id: NodeId,
    demux_id: NodeId,
    monitor: MonitorHandle,
}

impl Dumbbell {
    /// Build the dumbbell with the given configuration (drop-tail
    /// bottleneck, as in the testbed).
    pub fn new(config: DumbbellConfig) -> Self {
        let mut sim = Simulator::new();
        let monitor = Monitor::new_handle();
        let demux_id = sim.add_node(Box::new(FlowDemux::new()));
        let queue_id = sim.add_node(Box::new(
            DropTailQueue::new(
                config.bottleneck_rate_bps,
                config.buffer_bytes(),
                demux_id,
                config.forward_delay,
            )
            .with_cell_bytes(config.buffer_cell_bytes)
            .with_monitor(monitor.clone()),
        ));
        Self {
            sim,
            config,
            queue_id,
            demux_id,
            monitor,
        }
    }

    /// Build the dumbbell with a RED (AQM) bottleneck instead of
    /// drop-tail — used by the robustness ablations; the paper's testbed
    /// was drop-tail only.
    pub fn new_red(config: DumbbellConfig, red: RedConfig, rng: rand::rngs::StdRng) -> Self {
        let mut sim = Simulator::new();
        let monitor = Monitor::new_handle();
        let demux_id = sim.add_node(Box::new(FlowDemux::new()));
        let queue_id = sim.add_node(Box::new(
            RedQueue::new(
                config.bottleneck_rate_bps,
                config.buffer_bytes(),
                demux_id,
                config.forward_delay,
                red,
                rng,
            )
            .with_monitor(monitor.clone()),
        ));
        Self {
            sim,
            config,
            queue_id,
            demux_id,
            monitor,
        }
    }

    /// Build with the paper's default testbed parameters.
    pub fn standard() -> Self {
        Self::new(DumbbellConfig::default())
    }

    /// Configuration in use.
    pub fn config(&self) -> &DumbbellConfig {
        &self.config
    }

    /// The node id sources should send into (the bottleneck queue).
    pub fn bottleneck(&self) -> NodeId {
        self.queue_id
    }

    /// The ingress delay sources should use when sending into the
    /// bottleneck.
    pub fn ingress_delay(&self) -> SimDuration {
        self.config.ingress_delay
    }

    /// Shared monitor handle.
    pub fn monitor(&self) -> MonitorHandle {
        self.monitor.clone()
    }

    /// Opt the bottleneck monitor into full per-event trace retention
    /// (memory then grows with the event count — see the monitor-modes
    /// notes in DESIGN.md). Call before the first `run_for`.
    ///
    /// # Panics
    /// Panics if events have already been recorded.
    pub fn enable_trace(&mut self) {
        self.monitor.borrow_mut().enable_trace();
    }

    /// Add an arbitrary node (source, sink, prober) to the simulation.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.sim.add_node(node)
    }

    /// Route `flow`'s bottleneck departures to `dst`.
    pub fn route_flow(&mut self, flow: FlowId, dst: NodeId) {
        self.sim
            .node_mut::<FlowDemux>(self.demux_id)
            .register(flow, dst);
    }

    /// Route any flow without an explicit entry to `dst` (for dynamically
    /// created flows, e.g. web sessions).
    pub fn route_default(&mut self, dst: NodeId) {
        self.sim
            .node_mut::<FlowDemux>(self.demux_id)
            .set_default(dst);
    }

    /// Packets of unregistered flows seen at the egress demux.
    pub fn unrouted(&self) -> u64 {
        self.sim.node::<FlowDemux>(self.demux_id).unrouted()
    }

    /// Run the simulation for `secs` of virtual time (from t = 0).
    pub fn run_for(&mut self, secs: f64) {
        self.sim.run_until(SimTime::from_secs_f64(secs));
    }

    /// Extract ground truth for a run of `horizon_secs`, using the
    /// configured buffer size and default slotting.
    pub fn ground_truth(&self, horizon_secs: f64) -> GroundTruth {
        self.ground_truth_with(
            horizon_secs,
            GroundTruthConfig {
                queue_capacity_secs: self.config.buffer_secs,
                ..Default::default()
            },
        )
    }

    /// Extract ground truth with explicit parameters.
    pub fn ground_truth_with(&self, horizon_secs: f64, cfg: GroundTruthConfig) -> GroundTruth {
        GroundTruth::extract(&self.monitor.borrow(), horizon_secs, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Context, CountingSink};
    use crate::packet::{Packet, PacketKind};
    use std::any::Any;

    #[test]
    fn config_defaults_match_testbed() {
        let c = DumbbellConfig::default();
        assert_eq!(c.bottleneck_rate_bps, 155_520_000);
        // 100 ms at OC3 ≈ 1.944 MB.
        assert_eq!(c.buffer_bytes(), 1_944_000);
        assert_eq!(c.forward_delay, SimDuration::from_millis(50));
        // Base RTT ≈ 100.1 ms.
        assert!((c.base_rtt().as_secs_f64() - 0.1001).abs() < 1e-9);
    }

    /// A source that sends one burst of `n` packets into the bottleneck.
    struct Burst {
        dst: NodeId,
        delay: SimDuration,
        n: u64,
        flow: FlowId,
    }
    impl Node for Burst {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                let pkt = Packet {
                    id: ctx.next_packet_id(),
                    flow: self.flow,
                    size: 1500,
                    created: ctx.now(),
                    kind: PacketKind::Udp { seq: i },
                };
                ctx.send(self.dst, pkt, self.delay);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn end_to_end_through_dumbbell() {
        let mut db = Dumbbell::standard();
        let sink = db.add_node(Box::new(CountingSink::new()));
        db.route_flow(FlowId(1), sink);
        let bottleneck = db.bottleneck();
        let ingress = db.ingress_delay();
        db.add_node(Box::new(Burst {
            dst: bottleneck,
            delay: ingress,
            n: 10,
            flow: FlowId(1),
        }));
        db.run_for(1.0);
        assert_eq!(db.sim.node::<CountingSink>(sink).received(), 10);
        assert_eq!(db.unrouted(), 0);
        assert_eq!(db.monitor().borrow().drops(), 0);
    }

    #[test]
    fn burst_overflow_is_visible_in_ground_truth() {
        // Shrink the buffer so a single burst overflows it.
        let cfg = DumbbellConfig {
            buffer_secs: 0.001, // 1 ms at OC3 ≈ 19 440 bytes ≈ 12 packets
            ..Default::default()
        };
        let mut db = Dumbbell::new(cfg);
        let sink = db.add_node(Box::new(CountingSink::new()));
        db.route_flow(FlowId(1), sink);
        let bottleneck = db.bottleneck();
        let ingress = db.ingress_delay();
        db.add_node(Box::new(Burst {
            dst: bottleneck,
            delay: ingress,
            n: 100,
            flow: FlowId(1),
        }));
        db.run_for(1.0);
        let gt = db.ground_truth(1.0);
        assert!(gt.router_loss_rate > 0.0);
        assert!(!gt.episodes.is_empty());
        let received = db.sim.node::<CountingSink>(sink).received();
        assert_eq!(received + db.monitor().borrow().drops(), 100);
    }
}
