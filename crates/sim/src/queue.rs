//! The bottleneck: a store-and-forward drop-tail FIFO.
//!
//! Models the congested OC3 output queue at hop C of the testbed (Figure 3):
//! a byte-bounded buffer drained at the link rate, dropping arrivals that
//! would overflow it. Loss episodes begin exactly when aggregate demand has
//! kept the buffer full (§3, Figure 2) — no abstraction sits between the
//! traffic and the loss process, which is the property the laboratory
//! testbed was chosen for.

use crate::monitor::{MonitorHandle, TraceEvent};
use crate::node::{Context, Node, NodeId};
use crate::packet::Packet;
use crate::time::SimDuration;
use std::any::Any;
use std::collections::VecDeque;

const TOKEN_TX_DONE: u64 = 0;

/// A drop-tail FIFO queue serving packets at a fixed link rate, forwarding
/// departures to a downstream node after a fixed propagation delay.
pub struct DropTailQueue {
    rate_bps: u64,
    capacity_bytes: u64,
    next_hop: NodeId,
    prop_delay: SimDuration,
    /// Buffer-allocation particle size: every packet occupies a whole
    /// number of cells of this many bytes. Models router line cards (the
    /// testbed's Cisco GSR) that carve buffers into fixed particles — the
    /// paper chose 600-byte probes precisely because they consume as much
    /// GSR buffer as a maximum-sized frame (§6.1 footnote). `1` gives
    /// exact byte accounting.
    cell_bytes: u32,
    buf: VecDeque<Packet>,
    /// Wire bytes queued (determines drain time and queueing delay).
    buf_bytes: u64,
    /// Cell bytes allocated (determines admission/drop).
    buf_cells_bytes: u64,
    busy: bool,
    monitor: Option<MonitorHandle>,
}

impl DropTailQueue {
    /// Create a queue serving at `rate_bps` with `capacity_bytes` of
    /// buffer, forwarding to `next_hop` after `prop_delay`.
    ///
    /// # Panics
    /// Panics if the rate or capacity is zero.
    pub fn new(
        rate_bps: u64,
        capacity_bytes: u64,
        next_hop: NodeId,
        prop_delay: SimDuration,
    ) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        assert!(capacity_bytes > 0, "buffer capacity must be positive");
        Self {
            rate_bps,
            capacity_bytes,
            next_hop,
            prop_delay,
            cell_bytes: 1,
            buf: VecDeque::new(),
            buf_bytes: 0,
            buf_cells_bytes: 0,
            busy: false,
            monitor: None,
        }
    }

    /// Attach a passive monitor (the DAG-card stand-in).
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Use particle-based buffer accounting with the given cell size.
    ///
    /// # Panics
    /// Panics if `cell_bytes` is zero.
    pub fn with_cell_bytes(mut self, cell_bytes: u32) -> Self {
        assert!(cell_bytes > 0, "cell size must be positive");
        self.cell_bytes = cell_bytes;
        self
    }

    /// Buffer bytes a packet of `size` wire bytes occupies.
    fn alloc_bytes(&self, size: u32) -> u64 {
        u64::from(size.div_ceil(self.cell_bytes)) * u64::from(self.cell_bytes)
    }

    /// Buffer capacity expressed as drain time in seconds.
    pub fn capacity_secs(&self) -> f64 {
        self.capacity_bytes as f64 * 8.0 / self.rate_bps as f64
    }

    /// Current occupancy expressed as drain time in seconds.
    pub fn occupancy_secs(&self) -> f64 {
        self.buf_bytes as f64 * 8.0 / self.rate_bps as f64
    }

    /// Current occupancy in bytes.
    pub fn occupancy_bytes(&self) -> u64 {
        self.buf_bytes
    }

    /// The configured service rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn trace(&self, ctx: &Context<'_>, event: TraceEvent, pkt: &Packet) {
        if let Some(m) = &self.monitor {
            m.borrow_mut()
                .record(ctx.now(), event, pkt, self.occupancy_secs());
        }
    }

    fn start_tx(&mut self, ctx: &mut Context<'_>) {
        let front = self.buf.front().expect("start_tx on empty queue");
        let tx = SimDuration::transmission(front.size, self.rate_bps);
        self.busy = true;
        ctx.set_timer(tx, TOKEN_TX_DONE);
    }
}

impl Node for DropTailQueue {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if self.buf_cells_bytes + self.alloc_bytes(packet.size) > self.capacity_bytes {
            self.trace(ctx, TraceEvent::Drop, &packet);
            return;
        }
        self.buf_bytes += u64::from(packet.size);
        self.buf_cells_bytes += self.alloc_bytes(packet.size);
        self.buf.push_back(packet);
        self.trace(ctx, TraceEvent::Enqueue, &packet);
        if !self.busy {
            self.start_tx(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, TOKEN_TX_DONE);
        let pkt = self.buf.pop_front().expect("tx-done with empty queue");
        self.buf_bytes -= u64::from(pkt.size);
        self.buf_cells_bytes -= self.alloc_bytes(pkt.size);
        self.trace(ctx, TraceEvent::Depart, &pkt);
        ctx.send(self.next_hop, pkt, self.prop_delay);
        if self.buf.is_empty() {
            self.busy = false;
        } else {
            self.start_tx(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Routes packets to per-flow destinations with zero delay; the hop-D
/// router of the testbed, where the multiplexed bottleneck output fans back
/// out to receiving hosts.
#[derive(Default)]
pub struct FlowDemux {
    routes: std::collections::HashMap<crate::packet::FlowId, NodeId>,
    default_route: Option<NodeId>,
    unrouted: u64,
}

impl FlowDemux {
    /// An empty demux.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route `flow` to `dst`.
    pub fn register(&mut self, flow: crate::packet::FlowId, dst: NodeId) {
        self.routes.insert(flow, dst);
    }

    /// Route any flow without an explicit entry to `dst` (used by the
    /// web-session generator, whose flows are created dynamically).
    pub fn set_default(&mut self, dst: NodeId) {
        self.default_route = Some(dst);
    }

    /// Packets that arrived with no registered route (dropped silently but
    /// counted; a nonzero value in a test signals a wiring bug).
    pub fn unrouted(&self) -> u64 {
        self.unrouted
    }
}

impl Node for FlowDemux {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match self
            .routes
            .get(&packet.flow)
            .copied()
            .or(self.default_route)
        {
            Some(dst) => ctx.send(dst, packet, SimDuration::ZERO),
            None => self.unrouted += 1,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::monitor::Monitor;
    use crate::node::CountingSink;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::SimTime;

    fn udp(id: u64, size: u32, flow: u32) -> Packet {
        Packet {
            id,
            flow: FlowId(flow),
            size,
            created: SimTime::ZERO,
            kind: PacketKind::Udp { seq: id },
        }
    }

    /// Blasts `n` equal packets into `dst` at t=0.
    struct Blaster {
        dst: NodeId,
        n: u64,
        size: u32,
    }

    impl Node for Blaster {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                let id = ctx.next_packet_id();
                ctx.send(self.dst, udp(id, self.size, 1), SimDuration::ZERO);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn serializes_at_link_rate() {
        // 10 packets of 1000 bytes at 8 Mb/s: 1 ms each, last departs at 10 ms
        // (+0 propagation), so the sink's last arrival is t=10ms.
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(DropTailQueue::new(
            8_000_000,
            1_000_000,
            sink,
            SimDuration::ZERO,
        )));
        sim.add_node(Box::new(Blaster {
            dst: q,
            n: 10,
            size: 1000,
        }));
        sim.run_to_completion();
        let sink_node = sim.node::<CountingSink>(sink);
        assert_eq!(sink_node.received(), 10);
        assert_eq!(
            sink_node.last_arrival(),
            Some(SimTime::from_secs_f64(0.010))
        );
    }

    #[test]
    fn overflow_drops_tail() {
        // Capacity 5000 bytes; burst of 10×1000B arrives instantaneously:
        // 5 admitted, 5 dropped.
        let mut sim = Simulator::new();
        let monitor = Monitor::new_handle();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(
            DropTailQueue::new(8_000_000, 5_000, sink, SimDuration::ZERO)
                .with_monitor(monitor.clone()),
        ));
        sim.add_node(Box::new(Blaster {
            dst: q,
            n: 10,
            size: 1000,
        }));
        sim.run_to_completion();
        assert_eq!(sim.node::<CountingSink>(sink).received(), 5);
        assert_eq!(monitor.borrow().drops(), 5);
        assert_eq!(monitor.borrow().departs(), 5);
        assert!((monitor.borrow().router_loss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay_applies_after_serialization() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(DropTailQueue::new(
            8_000_000,
            1_000_000,
            sink,
            SimDuration::from_millis(50),
        )));
        sim.add_node(Box::new(Blaster {
            dst: q,
            n: 1,
            size: 1000,
        }));
        sim.run_to_completion();
        // 1 ms serialization + 50 ms propagation.
        assert_eq!(
            sim.node::<CountingSink>(sink).last_arrival(),
            Some(SimTime::from_secs_f64(0.051))
        );
    }

    #[test]
    fn occupancy_tracks_bytes() {
        let sink = NodeId(0);
        let mut q = DropTailQueue::new(8_000_000, 10_000, sink, SimDuration::ZERO);
        assert_eq!(q.occupancy_bytes(), 0);
        assert!((q.capacity_secs() - 0.01).abs() < 1e-12);
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(1), &mut next, &mut out);
        q.on_packet(udp(0, 4000, 1), &mut ctx);
        assert_eq!(q.occupancy_bytes(), 4000);
        assert!((q.occupancy_secs() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn cell_accounting_drops_small_packets_like_big_ones() {
        // Capacity of 2 cells (3000 bytes at cell=1500). Two 600-byte
        // packets fill it completely under particle accounting: a third
        // — of any size — drops, even though only 1200 wire bytes are
        // queued.
        let mut q = DropTailQueue::new(8_000_000, 3_000, NodeId(0), SimDuration::ZERO)
            .with_cell_bytes(1500);
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(1), &mut next, &mut out);
        let monitor = Monitor::new_handle();
        q.monitor = Some(monitor.clone());
        q.on_packet(udp(0, 600, 1), &mut ctx);
        q.on_packet(udp(1, 600, 1), &mut ctx);
        q.on_packet(udp(2, 64, 1), &mut ctx);
        assert_eq!(monitor.borrow().enqueues(), 2);
        assert_eq!(monitor.borrow().drops(), 1);
        // Wire occupancy (drain time) reflects actual bytes, not cells.
        assert_eq!(q.occupancy_bytes(), 1200);
    }

    #[test]
    fn byte_accounting_is_default() {
        let mut q = DropTailQueue::new(8_000_000, 3_000, NodeId(0), SimDuration::ZERO);
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(1), &mut next, &mut out);
        for i in 0..4 {
            q.on_packet(udp(i, 600, 1), &mut ctx);
        }
        // 4 × 600 = 2400 ≤ 3000: all admitted under byte accounting.
        assert_eq!(q.occupancy_bytes(), 2400);
    }

    #[test]
    fn monitor_sees_full_lifecycle() {
        let mut sim = Simulator::new();
        let monitor = Monitor::new_traced_handle();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(
            DropTailQueue::new(8_000_000, 1_000_000, sink, SimDuration::ZERO)
                .with_monitor(monitor.clone()),
        ));
        sim.add_node(Box::new(Blaster {
            dst: q,
            n: 3,
            size: 1000,
        }));
        sim.run_to_completion();
        let m = monitor.borrow();
        assert_eq!(m.enqueues(), 3);
        assert_eq!(m.departs(), 3);
        assert_eq!(m.drops(), 0);
        assert_eq!(m.records().len(), 6);
    }

    #[test]
    fn demux_routes_by_flow() {
        let mut sim = Simulator::new();
        let sink_a = sim.add_node(Box::new(CountingSink::new()));
        let sink_b = sim.add_node(Box::new(CountingSink::new()));
        let demux_id = {
            let mut d = FlowDemux::new();
            d.register(FlowId(1), sink_a);
            d.register(FlowId(2), sink_b);
            sim.add_node(Box::new(d))
        };
        let q = sim.add_node(Box::new(DropTailQueue::new(
            8_000_000,
            1_000_000,
            demux_id,
            SimDuration::ZERO,
        )));
        struct TwoFlows {
            dst: NodeId,
        }
        impl Node for TwoFlows {
            fn start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::ZERO, 0);
            }
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                for flow in [1u32, 1, 2] {
                    let id = ctx.next_packet_id();
                    ctx.send(self.dst, udp(id, 500, flow), SimDuration::ZERO);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_node(Box::new(TwoFlows { dst: q }));
        sim.run_to_completion();
        assert_eq!(sim.node::<CountingSink>(sink_a).received(), 2);
        assert_eq!(sim.node::<CountingSink>(sink_b).received(), 1);
        assert_eq!(sim.node::<FlowDemux>(demux_id).unrouted(), 0);
    }

    #[test]
    fn demux_counts_unrouted() {
        let mut sim = Simulator::new();
        let demux_id = sim.add_node(Box::new(FlowDemux::new()));
        struct One {
            dst: NodeId,
        }
        impl Node for One {
            fn start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::ZERO, 0);
            }
            fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                let id = ctx.next_packet_id();
                ctx.send(self.dst, udp(id, 100, 7), SimDuration::ZERO);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_node(Box::new(One { dst: demux_id }));
        sim.run_to_completion();
        assert_eq!(sim.node::<FlowDemux>(demux_id).unrouted(), 1);
    }
}
