//! Passive monitoring: the DAG-card stand-in.
//!
//! The testbed's ground truth came from optical splitters feeding Endace DAG
//! capture cards on the ingress and egress of the bottleneck hop; comparing
//! the two traces identified exactly which packets were lost and what the
//! queue length was at every instant (§4.1). The simulator can do strictly
//! better: the bottleneck queue reports every enqueue, drop, and departure
//! to a [`Monitor`] together with the exact buffer occupancy.
//!
//! [`GroundTruth`] then derives the quantities the paper reports:
//!
//! * the queue-length time series (Figures 4, 5, 6, 8),
//! * router-centric loss rate `L/(S+L)` (§3),
//! * loss episodes — using the paper's delineation rule for bursty traffic:
//!   an episode is bounded by drops, and consecutive drops belong to the
//!   same episode only while the queue stays above a high-water delay
//!   threshold between them (§4.2's "within 10 ms of the maximum" rule),
//! * the slot-level congestion indicator series that defines the *true*
//!   episode frequency `F` and mean duration `D` targeted by the estimators.
//!
//! ## Monitor modes
//!
//! By default the monitor is **streaming**: every event is folded online
//! into exactly the state ground truth needs — per-slot queue-delay maxima
//! (`O(slots)`), one compact [`DropPoint`] per drop (`O(drops)`), and the
//! running minimum delay since the last drop. Memory is therefore bounded
//! by the observation grid and the loss process, *not* by the event count:
//! a minutes-long run at OC3 rates folds tens of millions of events into a
//! few megabytes. [`GroundTruth`] can be extracted at any moment of the
//! run, for any horizon at or before the current virtual time.
//!
//! Full per-event retention is opt-in via [`Monitor::with_trace`] /
//! [`Monitor::enable_trace`]; it is what `dump_trace` and the
//! trace-conservation property tests use, and it also enables the
//! record-by-record extraction path ([`GroundTruth::from_trace`]) that the
//! differential tests compare against the streaming fold.

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use badabing_stats::{EpisodeSet, SlotSeries};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// What happened to a packet at the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Packet admitted to the buffer.
    Enqueue,
    /// Packet discarded because the buffer was full.
    Drop,
    /// Packet fully serialized onto the output link.
    Depart,
}

/// One captured packet event.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the event occurred.
    pub t: SimTime,
    /// What happened.
    pub event: TraceEvent,
    /// The packet's globally unique id.
    pub packet_id: u64,
    /// Owning flow.
    pub flow: FlowId,
    /// Wire size in bytes.
    pub size: u32,
    /// Whether the packet is probe traffic.
    pub is_probe: bool,
    /// Buffer occupancy *after* the event, expressed as drain time in
    /// seconds (bytes × 8 / link rate) — the y-axis of the paper's queue
    /// length figures.
    pub qdelay_secs: f64,
}

/// One drop, reduced to what the episode state machine needs: its time and
/// the minimum queue delay observed since the previous drop (including the
/// delay seen at this drop itself — the "sag" the §3 episode-end rule
/// thresholds on).
#[derive(Debug, Clone, Copy)]
struct DropPoint {
    t: SimTime,
    sag: f64,
}

/// The streaming ground-truth fold: per-slot delay maxima plus the drop
/// log, maintained online by [`Monitor::record`].
#[derive(Debug)]
struct StreamFold {
    slot_secs: f64,
    /// Per-slot maximum queue drain time; grows with virtual time, never
    /// with event count.
    slot_max: Vec<f64>,
    /// One entry per drop, in event order.
    drops: Vec<DropPoint>,
    /// Minimum delay observed since the last drop (∞ before the first).
    min_qdelay_since_drop: f64,
}

impl StreamFold {
    fn new(slot_secs: f64) -> Self {
        assert!(slot_secs > 0.0, "slot width must be positive");
        Self {
            slot_secs,
            slot_max: Vec::new(),
            drops: Vec::new(),
            min_qdelay_since_drop: f64::INFINITY,
        }
    }

    fn fold(&mut self, t: SimTime, event: TraceEvent, qdelay_secs: f64) {
        let slot = (t.as_secs_f64() / self.slot_secs) as usize;
        if slot >= self.slot_max.len() {
            self.slot_max.resize(slot + 1, 0.0);
        }
        if qdelay_secs > self.slot_max[slot] {
            self.slot_max[slot] = qdelay_secs;
        }
        if qdelay_secs < self.min_qdelay_since_drop {
            self.min_qdelay_since_drop = qdelay_secs;
        }
        if event == TraceEvent::Drop {
            self.drops.push(DropPoint {
                t,
                sag: self.min_qdelay_since_drop,
            });
            // The delay observed at this drop also starts the next
            // inter-drop interval: a drop seen at a sagged queue sits
            // below high water on *both* sides.
            self.min_qdelay_since_drop = qdelay_secs;
        }
    }

    fn bytes(&self) -> usize {
        self.slot_max.capacity() * std::mem::size_of::<f64>()
            + self.drops.capacity() * std::mem::size_of::<DropPoint>()
    }
}

/// Captures the bottleneck's packet-level event stream.
#[derive(Debug)]
pub struct Monitor {
    /// Full per-event retention; `None` in (default) streaming mode.
    trace: Option<Vec<TraceRecord>>,
    stream: StreamFold,
    drops: u64,
    departs: u64,
    enqueues: u64,
    probe_drops: u64,
    peak_bytes: usize,
}

impl Default for Monitor {
    fn default() -> Self {
        Self {
            trace: None,
            stream: StreamFold::new(GroundTruthConfig::default().slot_secs),
            drops: 0,
            departs: 0,
            enqueues: 0,
            probe_drops: 0,
            peak_bytes: 0,
        }
    }
}

/// Shared handle to a [`Monitor`]; held by the bottleneck queue and by the
/// experiment harness (the simulator is single-threaded, so `Rc<RefCell>`
/// is the right tool).
pub type MonitorHandle = Rc<RefCell<Monitor>>;

impl Monitor {
    /// A new, empty streaming monitor behind a shared handle.
    pub fn new_handle() -> MonitorHandle {
        Rc::new(RefCell::new(Monitor::default()))
    }

    /// A monitor that additionally retains the full [`TraceRecord`] stream
    /// (opt-in; memory grows with the event count).
    pub fn with_trace() -> Monitor {
        Monitor {
            trace: Some(Vec::new()),
            ..Monitor::default()
        }
    }

    /// [`Monitor::with_trace`] behind a shared handle.
    pub fn new_traced_handle() -> MonitorHandle {
        Rc::new(RefCell::new(Monitor::with_trace()))
    }

    /// Switch full-trace retention on. Must be called before any event is
    /// recorded — a partial trace would silently corrupt everything that
    /// folds over [`Monitor::records`].
    ///
    /// # Panics
    /// Panics if events have already been recorded.
    pub fn enable_trace(&mut self) {
        if self.trace.is_some() {
            return;
        }
        assert!(
            self.enqueues == 0 && self.drops == 0 && self.departs == 0,
            "enable_trace after events were recorded: the trace would be partial"
        );
        self.trace = Some(Vec::new());
    }

    /// Whether full-trace retention is on.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Override the streaming fold's slot width (default 5 ms, the
    /// paper's discretization). Must be called before any event is
    /// recorded.
    ///
    /// # Panics
    /// Panics if events have already been recorded.
    pub fn set_stream_slot_secs(&mut self, slot_secs: f64) {
        assert!(
            self.enqueues == 0 && self.drops == 0 && self.departs == 0,
            "set_stream_slot_secs after events were recorded"
        );
        self.stream = StreamFold::new(slot_secs);
    }

    /// Record one event.
    pub fn record(&mut self, t: SimTime, event: TraceEvent, pkt: &Packet, qdelay_secs: f64) {
        match event {
            TraceEvent::Enqueue => self.enqueues += 1,
            TraceEvent::Drop => {
                self.drops += 1;
                if pkt.kind.is_probe() {
                    self.probe_drops += 1;
                }
            }
            TraceEvent::Depart => self.departs += 1,
        }
        self.stream.fold(t, event, qdelay_secs);
        if let Some(records) = &mut self.trace {
            records.push(TraceRecord {
                t,
                event,
                packet_id: pkt.id,
                flow: pkt.flow,
                size: pkt.size,
                is_probe: pkt.kind.is_probe(),
                qdelay_secs,
            });
        }
        let bytes = self.records_bytes() + self.stream.bytes();
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// All captured records, in event order (empty unless trace retention
    /// is on — see [`Monitor::enable_trace`]).
    pub fn records(&self) -> &[TraceRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Packets dropped at the bottleneck.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Probe packets dropped at the bottleneck.
    pub fn probe_drops(&self) -> u64 {
        self.probe_drops
    }

    /// Packets fully transmitted.
    pub fn departs(&self) -> u64 {
        self.departs
    }

    /// Packets admitted to the buffer.
    pub fn enqueues(&self) -> u64 {
        self.enqueues
    }

    /// Router-centric loss rate `L / (S + L)` (§3), with `S` the number of
    /// successfully transmitted packets.
    pub fn router_loss_rate(&self) -> f64 {
        let total = self.drops + self.departs;
        if total == 0 {
            0.0
        } else {
            self.drops as f64 / total as f64
        }
    }

    /// Bytes currently allocated to the full trace (zero in streaming
    /// mode, or after [`Monitor::clear_records`]).
    pub fn records_bytes(&self) -> usize {
        self.trace
            .as_ref()
            .map_or(0, |v| v.capacity() * std::mem::size_of::<TraceRecord>())
    }

    /// Bytes currently allocated to the streaming fold (slot maxima plus
    /// the drop log).
    pub fn streaming_bytes(&self) -> usize {
        self.stream.bytes()
    }

    /// High-water mark of total monitor memory (trace + streaming fold)
    /// over the monitor's lifetime — what the perf gate reports.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of drop points held by the streaming fold.
    pub fn drop_points(&self) -> usize {
        self.stream.drops.len()
    }

    /// Number of slots the streaming fold has touched so far.
    pub fn stream_slots(&self) -> usize {
        self.stream.slot_max.len()
    }

    /// Discard the retained trace (for long runs that only need counters
    /// and the streaming fold going forward). Releases the allocation
    /// rather than keeping the grown buffer alive for the rest of a
    /// replicate batch.
    pub fn clear_records(&mut self) {
        if let Some(records) = &mut self.trace {
            records.clear();
            records.shrink_to_fit();
        }
    }

    /// Ground truth from the streaming fold, for any horizon at or before
    /// the current virtual time. Identical — field for field — to
    /// [`GroundTruth::from_trace`] over a full trace of the same run.
    ///
    /// # Panics
    /// Panics if `config.slot_secs` differs from the streaming fold's
    /// slot width (set it before the run with
    /// [`Monitor::set_stream_slot_secs`], or retain a trace).
    pub fn ground_truth(&self, horizon_secs: f64, config: GroundTruthConfig) -> GroundTruth {
        assert!(
            config.slot_secs == self.stream.slot_secs,
            "streaming monitor folds {} s slots but {} s were requested; \
             call set_stream_slot_secs before the run or enable trace mode",
            self.stream.slot_secs,
            config.slot_secs
        );
        let n_slots = (horizon_secs / config.slot_secs).round() as usize;
        let mut values = vec![0.0; n_slots];
        let n = n_slots.min(self.stream.slot_max.len());
        values[..n].copy_from_slice(&self.stream.slot_max[..n]);
        let qdelay = SlotSeries::from_values(config.slot_secs, values);

        let mut machine = EpisodeMachine::new(config.highwater_frac * config.queue_capacity_secs);
        for d in &self.stream.drops {
            if d.t.as_secs_f64() >= horizon_secs {
                break;
            }
            machine.drop_with_sag(d.t, d.sag);
        }
        GroundTruth::assemble(
            config,
            machine.finish(),
            qdelay,
            n_slots,
            self.router_loss_rate(),
        )
    }
}

/// Parameters controlling ground-truth episode extraction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Slot width in seconds for the congestion-indicator series (the
    /// paper's discretization, default 5 ms).
    pub slot_secs: f64,
    /// Queue drain-time capacity in seconds (the "100 milliseconds of
    /// packets" the testbed buffer held).
    pub queue_capacity_secs: f64,
    /// Fraction of capacity above which the queue counts as "at the
    /// high-water mark" when bridging consecutive drops into one episode
    /// (the paper used within 10 ms of a 100 ms maximum, i.e. 0.9).
    pub highwater_frac: f64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        Self {
            slot_secs: 0.005,
            queue_capacity_secs: 0.1,
            highwater_frac: 0.9,
        }
    }
}

/// A loss episode in continuous time, bounded by packet drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossEpisode {
    /// Time of the first drop of the episode.
    pub start: SimTime,
    /// Time of the last drop of the episode.
    pub end: SimTime,
    /// Number of packets dropped during the episode.
    pub drops: u64,
}

impl LossEpisode {
    /// Episode duration in seconds (zero for an isolated single drop).
    pub fn duration_secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// The §3 / §4.2 episode state machine: drops delimit episodes, and two
/// consecutive drops share an episode only if the queue never sagged below
/// the high-water mark in between. The sag includes the delay observed at
/// the drop instants themselves — a drop recorded at a low queue delay
/// (RED early drops, particle-accounted buffers full of small packets)
/// must be able to split an episode even when no enqueue or departure was
/// observed between the two drops.
#[derive(Debug, Clone)]
struct EpisodeMachine {
    highwater: f64,
    episodes: Vec<LossEpisode>,
    current: Option<LossEpisode>,
    min_qdelay_since_drop: f64,
}

impl EpisodeMachine {
    fn new(highwater: f64) -> Self {
        Self {
            highwater,
            episodes: Vec::new(),
            current: None,
            min_qdelay_since_drop: f64::INFINITY,
        }
    }

    /// Fold a non-drop observation of the queue delay.
    fn observe(&mut self, qdelay_secs: f64) {
        if qdelay_secs < self.min_qdelay_since_drop {
            self.min_qdelay_since_drop = qdelay_secs;
        }
    }

    /// A drop at `t` whose own observed delay is `qdelay_secs`.
    fn drop_at(&mut self, t: SimTime, qdelay_secs: f64) {
        self.observe(qdelay_secs);
        let sag = self.min_qdelay_since_drop;
        self.drop_with_sag(t, sag);
        // The drop's own observation also seeds the next interval (see
        // `StreamFold::fold`).
        self.min_qdelay_since_drop = qdelay_secs;
    }

    /// A drop at `t` where the minimum delay since the previous drop
    /// (including this drop's own delay) is already known — the replay
    /// path over a streaming fold's precomputed drop log.
    fn drop_with_sag(&mut self, t: SimTime, sag: f64) {
        match self.current.as_mut() {
            Some(ep) if sag >= self.highwater => {
                ep.end = t;
                ep.drops += 1;
            }
            Some(ep) => {
                self.episodes.push(*ep);
                self.current = Some(LossEpisode {
                    start: t,
                    end: t,
                    drops: 1,
                });
            }
            None => {
                self.current = Some(LossEpisode {
                    start: t,
                    end: t,
                    drops: 1,
                });
            }
        }
    }

    fn finish(mut self) -> Vec<LossEpisode> {
        if let Some(ep) = self.current {
            self.episodes.push(ep);
        }
        self.episodes
    }
}

/// Ground truth derived from a monitor over `[0, horizon)`.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Extraction parameters used.
    pub config: GroundTruthConfig,
    /// Continuous-time loss episodes.
    pub episodes: Vec<LossEpisode>,
    /// Slot-level congestion indicators (true episode coverage).
    pub congested: EpisodeSet,
    /// Per-slot maximum queue drain time in seconds.
    pub qdelay: SlotSeries,
    /// Router-centric loss rate over the horizon.
    pub router_loss_rate: f64,
}

impl GroundTruth {
    /// Extract ground truth from `monitor` for a run of length
    /// `horizon_secs`: record-by-record from the retained trace when the
    /// monitor has one, from the streaming fold otherwise. The two paths
    /// produce identical results (see the differential tests).
    pub fn extract(monitor: &Monitor, horizon_secs: f64, config: GroundTruthConfig) -> Self {
        if monitor.is_tracing() {
            Self::from_trace(monitor, horizon_secs, config)
        } else {
            monitor.ground_truth(horizon_secs, config)
        }
    }

    /// Extract ground truth by folding the retained trace (requires trace
    /// mode; the streaming path is [`Monitor::ground_truth`]).
    pub fn from_trace(monitor: &Monitor, horizon_secs: f64, config: GroundTruthConfig) -> Self {
        let n_slots = (horizon_secs / config.slot_secs).round() as usize;
        let mut qdelay = SlotSeries::new(n_slots, config.slot_secs);
        for r in monitor.records() {
            qdelay.record_max(r.t.as_secs_f64(), r.qdelay_secs);
        }

        let mut machine = EpisodeMachine::new(config.highwater_frac * config.queue_capacity_secs);
        for r in monitor.records() {
            if r.t.as_secs_f64() >= horizon_secs {
                break;
            }
            match r.event {
                TraceEvent::Drop => machine.drop_at(r.t, r.qdelay_secs),
                TraceEvent::Enqueue | TraceEvent::Depart => machine.observe(r.qdelay_secs),
            }
        }

        Self::assemble(
            config,
            machine.finish(),
            qdelay,
            n_slots,
            monitor.router_loss_rate(),
        )
    }

    /// Common tail of both extraction paths: episode list → slot
    /// indicator series → assembled result.
    fn assemble(
        config: GroundTruthConfig,
        episodes: Vec<LossEpisode>,
        qdelay: SlotSeries,
        n_slots: usize,
        router_loss_rate: f64,
    ) -> Self {
        // Slot indicator: a slot is congested if it overlaps an episode.
        let mut slots = vec![false; n_slots];
        for ep in &episodes {
            let first = (ep.start.as_secs_f64() / config.slot_secs) as usize;
            let last = (ep.end.as_secs_f64() / config.slot_secs) as usize;
            for s in slots
                .iter_mut()
                .take(last.min(n_slots.saturating_sub(1)) + 1)
                .skip(first.min(n_slots))
            {
                *s = true;
            }
        }
        let congested = EpisodeSet::from_bools(&slots);

        Self {
            config,
            episodes,
            congested,
            qdelay,
            router_loss_rate,
        }
    }

    /// True episode frequency `F`: fraction of congested slots.
    pub fn frequency(&self) -> f64 {
        self.congested.frequency()
    }

    /// True mean episode duration in seconds, from continuous-time episodes
    /// (one slot width is added to close the half-open drop interval, so an
    /// isolated drop contributes one slot rather than zero).
    pub fn mean_duration_secs(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .episodes
            .iter()
            .map(|e| e.duration_secs() + self.config.slot_secs)
            .sum();
        total / self.episodes.len() as f64
    }

    /// Mean loss-free period between consecutive episodes, in seconds
    /// (zero with fewer than two episodes).
    pub fn mean_loss_free_secs(&self) -> f64 {
        if self.episodes.len() < 2 {
            return 0.0;
        }
        let total: f64 = self
            .episodes
            .windows(2)
            .map(|w| w[1].start.since(w[0].end).as_secs_f64())
            .sum();
        total / (self.episodes.len() - 1) as f64
    }

    /// Standard deviation of episode durations in seconds.
    pub fn std_duration_secs(&self) -> f64 {
        if self.episodes.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_duration_secs();
        let var = self
            .episodes
            .iter()
            .map(|e| {
                let d = e.duration_secs() + self.config.slot_secs - mean;
                d * d
            })
            .sum::<f64>()
            / self.episodes.len() as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(id: u64, probe: bool) -> Packet {
        Packet {
            id,
            flow: FlowId(if probe { 99 } else { 1 }),
            size: 1500,
            created: SimTime::ZERO,
            kind: if probe {
                PacketKind::Probe {
                    experiment: 0,
                    slot: 0,
                    idx: 0,
                    probe_len: 1,
                    seq: id,
                }
            } else {
                PacketKind::Udp { seq: id }
            },
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// Extract through both paths and assert they agree exactly; returns
    /// the streaming result. The monitor must be in trace mode.
    fn extract_both(m: &Monitor, horizon: f64, cfg: GroundTruthConfig) -> GroundTruth {
        let traced = GroundTruth::from_trace(m, horizon, cfg);
        let streamed = m.ground_truth(horizon, cfg);
        assert_eq!(traced.episodes, streamed.episodes, "episode mismatch");
        assert_eq!(
            traced.congested.episodes(),
            streamed.congested.episodes(),
            "slot indicator mismatch"
        );
        assert_eq!(
            traced.qdelay.values(),
            streamed.qdelay.values(),
            "qdelay series mismatch"
        );
        assert_eq!(traced.router_loss_rate, streamed.router_loss_rate);
        streamed
    }

    #[test]
    fn counters_and_loss_rate() {
        let mut m = Monitor::default();
        m.record(t(0.0), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        m.record(t(0.1), TraceEvent::Depart, &pkt(0, false), 0.0);
        m.record(t(0.2), TraceEvent::Drop, &pkt(1, false), 0.1);
        m.record(t(0.3), TraceEvent::Drop, &pkt(2, true), 0.1);
        assert_eq!(m.enqueues(), 1);
        assert_eq!(m.departs(), 1);
        assert_eq!(m.drops(), 2);
        assert_eq!(m.probe_drops(), 1);
        assert!((m.router_loss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_monitor_loss_rate_is_zero() {
        assert_eq!(Monitor::default().router_loss_rate(), 0.0);
    }

    #[test]
    fn streaming_is_the_default_and_retains_no_records() {
        let mut m = Monitor::default();
        assert!(!m.is_tracing());
        m.record(t(0.1), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        assert!(m.records().is_empty());
        assert_eq!(m.records_bytes(), 0);
        assert!(m.streaming_bytes() > 0);
        assert!(m.peak_bytes() >= m.streaming_bytes());
    }

    #[test]
    fn drops_bridged_while_queue_stays_high() {
        let mut m = Monitor::with_trace();
        // Queue rises, a cluster of drops with queue pinned at capacity.
        m.record(t(0.010), TraceEvent::Enqueue, &pkt(0, false), 0.095);
        m.record(t(0.020), TraceEvent::Drop, &pkt(1, false), 0.100);
        m.record(t(0.025), TraceEvent::Enqueue, &pkt(2, false), 0.099);
        m.record(t(0.040), TraceEvent::Drop, &pkt(3, false), 0.100);
        // Queue drains well below high water, then a second episode.
        m.record(t(0.100), TraceEvent::Depart, &pkt(0, false), 0.020);
        m.record(t(0.300), TraceEvent::Drop, &pkt(4, false), 0.100);
        let gt = extract_both(&m, 1.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 2);
        assert_eq!(gt.episodes[0].drops, 2);
        assert!((gt.episodes[0].duration_secs() - 0.020).abs() < 1e-9);
        assert_eq!(gt.episodes[1].drops, 1);
        assert_eq!(gt.episodes[1].duration_secs(), 0.0);
    }

    #[test]
    fn sag_observed_only_at_the_drop_instant_still_splits_episodes() {
        // Regression for the lost-sag bug: the queue sags below high water
        // but the *only* event carrying that observation is the next drop
        // itself (a RED early drop at moderate delay, say). The old
        // extractor never folded a Drop's own qdelay into the sag, so the
        // two drops were bridged into one episode.
        let cfg = GroundTruthConfig::default(); // highwater at 0.09 s
        let mut m = Monitor::with_trace();
        m.record(t(0.020), TraceEvent::Drop, &pkt(0, false), 0.100);
        // Next event: a drop observed at a low queue delay.
        m.record(t(0.050), TraceEvent::Drop, &pkt(1, false), 0.030);
        // And a third drop back at capacity: the low observation at
        // t=0.050 must also split this pair.
        m.record(t(0.080), TraceEvent::Drop, &pkt(2, false), 0.100);
        let gt = extract_both(&m, 1.0, cfg);
        assert_eq!(
            gt.episodes.len(),
            3,
            "a sag observed only at drop instants must split episodes"
        );
        // Control: same shape with the middle drop at capacity bridges.
        let mut m2 = Monitor::with_trace();
        m2.record(t(0.020), TraceEvent::Drop, &pkt(0, false), 0.100);
        m2.record(t(0.050), TraceEvent::Drop, &pkt(1, false), 0.100);
        m2.record(t(0.080), TraceEvent::Drop, &pkt(2, false), 0.100);
        let gt2 = extract_both(&m2, 1.0, cfg);
        assert_eq!(gt2.episodes.len(), 1);
        assert_eq!(gt2.episodes[0].drops, 3);
    }

    #[test]
    fn isolated_drop_counts_one_slot() {
        let mut m = Monitor::with_trace();
        m.record(t(0.0521), TraceEvent::Drop, &pkt(0, false), 0.1);
        let gt = extract_both(&m, 1.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 1);
        assert_eq!(gt.congested.count(), 1);
        assert_eq!(gt.congested.congested_slots(), 1);
        // Frequency: 1 congested slot of 200.
        assert!((gt.frequency() - 1.0 / 200.0).abs() < 1e-12);
        assert!((gt.mean_duration_secs() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn slot_indicator_covers_episode_span() {
        let mut m = Monitor::with_trace();
        m.record(t(0.010), TraceEvent::Drop, &pkt(0, false), 0.1);
        m.record(t(0.011), TraceEvent::Enqueue, &pkt(1, false), 0.099);
        m.record(t(0.032), TraceEvent::Drop, &pkt(2, false), 0.1);
        let gt = extract_both(&m, 0.1, GroundTruthConfig::default());
        // Episode spans 10ms..32ms → slots 2..=6 congested.
        assert_eq!(gt.congested.count(), 1);
        assert_eq!(gt.congested.episodes()[0].start, 2);
        assert_eq!(gt.congested.episodes()[0].end, 7);
    }

    #[test]
    fn qdelay_series_tracks_maxima() {
        let mut m = Monitor::with_trace();
        m.record(t(0.001), TraceEvent::Enqueue, &pkt(0, false), 0.02);
        m.record(t(0.002), TraceEvent::Enqueue, &pkt(1, false), 0.05);
        m.record(t(0.007), TraceEvent::Depart, &pkt(0, false), 0.03);
        let gt = extract_both(&m, 0.02, GroundTruthConfig::default());
        assert_eq!(gt.qdelay.len(), 4);
        assert!((gt.qdelay.values()[0] - 0.05).abs() < 1e-12);
        assert!((gt.qdelay.values()[1] - 0.03).abs() < 1e-12);
    }

    #[test]
    fn loss_free_period_between_episodes() {
        // Records fed in time order (the monitor contract): drops at 0.10,
        // 0.50, 1.10 with full drains between them → three episodes with
        // gaps of 0.4 and 0.6 s: mean 0.5.
        let mut m = Monitor::with_trace();
        m.record(t(0.10), TraceEvent::Drop, &pkt(0, false), 0.1);
        m.record(t(0.2), TraceEvent::Depart, &pkt(0, false), 0.0);
        m.record(t(0.50), TraceEvent::Drop, &pkt(1, false), 0.1);
        m.record(t(0.6), TraceEvent::Depart, &pkt(1, false), 0.0);
        m.record(t(1.10), TraceEvent::Drop, &pkt(2, false), 0.1);
        let gt = extract_both(&m, 2.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 3);
        assert!((gt.mean_loss_free_secs() - 0.5).abs() < 1e-9);
        // Single episode → zero.
        let mut m2 = Monitor::default();
        m2.record(t(0.1), TraceEvent::Drop, &pkt(0, false), 0.1);
        let gt2 = GroundTruth::extract(&m2, 1.0, GroundTruthConfig::default());
        assert_eq!(gt2.mean_loss_free_secs(), 0.0);
    }

    #[test]
    fn events_beyond_horizon_are_ignored_for_episodes() {
        let mut m = Monitor::with_trace();
        m.record(t(0.5), TraceEvent::Drop, &pkt(0, false), 0.1);
        m.record(t(2.0), TraceEvent::Drop, &pkt(1, false), 0.1);
        let gt = extract_both(&m, 1.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 1);
    }

    #[test]
    fn no_drops_means_no_episodes() {
        let mut m = Monitor::with_trace();
        m.record(t(0.1), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        m.record(t(0.2), TraceEvent::Depart, &pkt(0, false), 0.0);
        let gt = extract_both(&m, 1.0, GroundTruthConfig::default());
        assert!(gt.episodes.is_empty());
        assert_eq!(gt.frequency(), 0.0);
        assert_eq!(gt.mean_duration_secs(), 0.0);
        assert_eq!(gt.std_duration_secs(), 0.0);
    }

    #[test]
    fn streaming_truth_is_available_mid_run() {
        let mut m = Monitor::default();
        m.record(t(0.10), TraceEvent::Drop, &pkt(0, false), 0.1);
        let early = m.ground_truth(0.5, GroundTruthConfig::default());
        assert_eq!(early.episodes.len(), 1);
        // Keep running; the early snapshot's horizon still excludes what
        // came later.
        m.record(t(0.60), TraceEvent::Depart, &pkt(0, false), 0.0);
        m.record(t(0.80), TraceEvent::Drop, &pkt(1, false), 0.1);
        let again = m.ground_truth(0.5, GroundTruthConfig::default());
        assert_eq!(again.episodes, early.episodes);
        let full = m.ground_truth(1.0, GroundTruthConfig::default());
        assert_eq!(full.episodes.len(), 2);
    }

    #[test]
    fn clear_records_releases_the_allocation() {
        let mut m = Monitor::with_trace();
        for i in 0..1000 {
            m.record(
                t(i as f64 * 0.001),
                TraceEvent::Enqueue,
                &pkt(i, false),
                0.01,
            );
        }
        let before = m.records_bytes();
        assert!(before >= 1000 * std::mem::size_of::<TraceRecord>());
        m.clear_records();
        assert_eq!(m.records_bytes(), 0, "clear must release the buffer");
        assert!(m.is_tracing(), "mode survives a clear");
        // Peak keeps the high-water mark.
        assert!(m.peak_bytes() >= before);
        // Counters and the streaming fold survive.
        assert_eq!(m.enqueues(), 1000);
        assert_eq!(m.stream_slots(), 200);
    }

    #[test]
    fn streaming_memory_tracks_slots_not_events() {
        // Many events inside few slots: the fold must not grow.
        let mut m = Monitor::default();
        for i in 0..10_000 {
            m.record(
                t(0.001 + (i % 7) as f64 * 1e-6),
                TraceEvent::Enqueue,
                &pkt(i, false),
                0.01,
            );
        }
        assert_eq!(m.stream_slots(), 1);
        assert_eq!(m.drop_points(), 0);
        assert!(
            m.streaming_bytes() < 4096,
            "10k events in one slot must stay tiny, got {}",
            m.streaming_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "enable_trace after events")]
    fn late_trace_enable_panics() {
        let mut m = Monitor::default();
        m.record(t(0.1), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        m.enable_trace();
    }

    #[test]
    #[should_panic(expected = "streaming monitor folds")]
    fn streaming_slot_width_mismatch_panics() {
        let mut m = Monitor::default();
        m.record(t(0.1), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        let cfg = GroundTruthConfig {
            slot_secs: 0.010,
            ..Default::default()
        };
        let _ = m.ground_truth(1.0, cfg);
    }

    #[test]
    fn stream_slot_width_is_configurable_before_the_run() {
        let mut m = Monitor::default();
        m.set_stream_slot_secs(0.010);
        m.record(t(0.015), TraceEvent::Enqueue, &pkt(0, false), 0.02);
        let cfg = GroundTruthConfig {
            slot_secs: 0.010,
            ..Default::default()
        };
        let gt = m.ground_truth(0.05, cfg);
        assert_eq!(gt.qdelay.len(), 5);
        assert!((gt.qdelay.values()[1] - 0.02).abs() < 1e-12);
    }
}
